"""Simulated Θ-network: protocol flow fidelity, metrics, experiments."""

import pytest

from repro.errors import SimulationError
from repro.sim.cluster import SimulatedThetaNetwork
from repro.sim.costs import calibrated_cost_model
from repro.sim.deployments import DEPLOYMENTS, Deployment, get_deployment
from repro.sim.experiments import capacity_test, payload_sweep, run_once, steady_state
from repro.sim.latency import Region
from repro.sim.metrics import (
    ExperimentMetrics,
    find_knee,
    latency_fairness_index,
    latency_percentile,
    residual_delay_factor,
    summarize,
    throughput_of,
)
from repro.sim.workload import Workload

TINY = Deployment("TINY-4-L", "tiny", 4, 1, (Region.FRA1,), 64)
TINY_G = Deployment(
    "TINY-4-G", "tiny", 4, 1,
    (Region.FRA1, Region.SYD1, Region.TOR1, Region.SFO3), 64,
)


class TestDeployments:
    def test_table2_rows_present(self):
        assert set(DEPLOYMENTS) == {
            "DO-7-L", "DO-7-G", "DO-31-L", "DO-31-G", "DO-127-L", "DO-127-G",
        }

    def test_bft_thresholds(self):
        # n = 3t+1 with quorum t+1: 3-of-7, 11-of-31, 43-of-127.
        assert get_deployment("DO-7-L").quorum == 3
        assert get_deployment("DO-31-G").quorum == 11
        assert get_deployment("DO-127-G").quorum == 43

    def test_rates_double_up_to_max(self):
        assert get_deployment("DO-127-L").rates() == [1, 2, 4, 8, 16, 32, 64]
        assert get_deployment("DO-7-L").rates()[-1] == 1024

    def test_region_assignment(self):
        regions = get_deployment("DO-31-G").node_regions()
        assert len(regions) == 31
        assert len(set(regions)) == 4

    def test_unknown_deployment(self):
        with pytest.raises(Exception):
            get_deployment("DO-9000-X")


class TestWorkload:
    def test_request_count(self):
        assert Workload(rate=10, duration=3).request_count == 30

    def test_cap(self):
        assert Workload(rate=100, duration=10, max_requests=50).request_count == 50

    def test_effective_duration(self):
        w = Workload(rate=100, duration=10, max_requests=50)
        assert w.effective_duration == pytest.approx(0.5)

    def test_arrival_times_sorted_and_bounded(self):
        w = Workload(rate=20, duration=2)
        times = w.arrival_times()
        assert len(times) == 40
        assert times == sorted(times)
        assert all(0 <= t <= 2.1 for t in times)

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            Workload(rate=0, duration=1)
        with pytest.raises(Exception):
            Workload(rate=1, duration=0)


class TestClusterSimulation:
    def test_all_requests_complete_at_low_load(self):
        net = SimulatedThetaNetwork(TINY, "sg02")
        result = net.run(Workload(rate=2, duration=2))
        assert len(result.request_first_finish) == 4
        finished = [s for s in result.samples if s.finished_at is not None]
        assert len(finished) == 4 * 4  # every node, every request

    def test_latency_bounded_below_by_crypto(self):
        net = SimulatedThetaNetwork(TINY, "sh00")
        result = net.run(Workload(rate=1, duration=2))
        costs = calibrated_cost_model().for_scheme("sh00")
        floor = costs.request(256) + costs.share_gen
        for s in result.samples:
            assert s.latency is not None and s.latency > floor

    def test_global_deployment_adds_network_latency(self):
        local = SimulatedThetaNetwork(TINY, "sg02").run(Workload(rate=1, duration=2))
        global_ = SimulatedThetaNetwork(TINY_G, "sg02").run(Workload(rate=1, duration=2))
        l_local = max(s.latency for s in local.samples)
        l_global = max(s.latency for s in global_.samples)
        assert l_global > l_local + 0.02  # ≥ one WAN hop

    def test_kg20_two_rounds_cost_two_network_trips(self):
        one_round = SimulatedThetaNetwork(TINY_G, "bls04").run(
            Workload(rate=1, duration=2)
        )
        two_rounds = SimulatedThetaNetwork(TINY_G, "kg20").run(
            Workload(rate=1, duration=2)
        )
        assert max(s.latency for s in two_rounds.samples) > max(
            s.latency for s in one_round.samples
        )

    def test_kg20_waits_for_all_nodes(self):
        # FROST's fixed signing group: per-request node finish times cluster.
        net = SimulatedThetaNetwork(TINY_G, "kg20")
        result = net.run(Workload(rate=1, duration=2))
        by_request = {}
        for s in result.samples:
            by_request.setdefault(s.request_id, []).append(s.finished_at)
        for finishes in by_request.values():
            spread = max(finishes) - min(finishes)
            assert spread < 0.12  # within one WAN delivery of each other

    def test_deterministic_given_seed(self):
        a = SimulatedThetaNetwork(TINY, "sg02").run(Workload(rate=4, duration=1, seed=3))
        b = SimulatedThetaNetwork(TINY, "sg02").run(Workload(rate=4, duration=1, seed=3))
        assert [s.finished_at for s in a.samples] == [s.finished_at for s in b.samples]

    def test_utilization_grows_with_rate(self):
        low = SimulatedThetaNetwork(TINY, "bls04").run(Workload(rate=1, duration=2))
        high = SimulatedThetaNetwork(TINY, "bls04").run(Workload(rate=16, duration=2))
        assert max(high.cpu_utilization.values()) > max(low.cpu_utilization.values())

    def test_kg20_over_tob_adds_sequencer_hop(self):
        direct = SimulatedThetaNetwork(TINY_G, "kg20").run(Workload(rate=1, duration=1))
        via_tob = SimulatedThetaNetwork(TINY_G, "kg20", kg20_over_tob=True).run(
            Workload(rate=1, duration=1)
        )
        assert max(s.latency for s in via_tob.samples) > max(
            s.latency for s in direct.samples
        )


class TestMetrics:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert latency_percentile(values, 50) == pytest.approx(2.5)
        assert latency_percentile(values, 100) == 4.0
        assert latency_percentile([7.0], 95) == 7.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(SimulationError):
            latency_percentile([], 50)

    def test_delta_res_and_eta_inverse_relation(self):
        # δ_res and η_θ are inversely related (§4.3).
        delta = residual_delay_factor(0.1, 0.3)
        eta = latency_fairness_index(0.1, 0.3)
        assert delta == pytest.approx(2.0)
        assert eta == pytest.approx(1 / 3)
        assert eta == pytest.approx(1.0 / (1.0 + delta))

    def test_equal_latencies_are_perfectly_fair(self):
        assert residual_delay_factor(0.2, 0.2) == 0.0
        assert latency_fairness_index(0.2, 0.2) == 1.0

    def test_summarize_fields(self):
        result = SimulatedThetaNetwork(TINY, "cks05").run(Workload(rate=2, duration=2))
        metrics = summarize(result, TINY.quorum, TINY.parties)
        assert metrics.completed == 4
        assert metrics.l50 <= metrics.l95
        assert 0 < metrics.eta_theta <= 1.0
        assert metrics.delta_res >= 0
        assert metrics.throughput > 0

    def test_throughput_counts_grace_window(self):
        result = SimulatedThetaNetwork(TINY, "sg02").run(Workload(rate=4, duration=2))
        tput, completed = throughput_of(result)
        assert completed == 8
        assert tput == pytest.approx(4, rel=0.6)

    def test_find_knee_prefers_best_ratio(self):
        def fake(rate, tput, l95):
            return ExperimentMetrics(
                "s", "d", rate, 256, 10, 10, tput, l95, l95,
                l95, l95, l95, 0.0, 1.0, 0.5, 0.5,
            )

        points = [fake(1, 1, 0.01), fake(2, 2, 0.011), fake(4, 3.0, 0.1)]
        assert find_knee(points).rate == 2

    def test_find_knee_empty_rejected(self):
        with pytest.raises(SimulationError):
            find_knee([])

    def test_saturation_returns_upper_bound_latency(self):
        # Drown a tiny deployment: nothing completes inside the grace window.
        result = SimulatedThetaNetwork(TINY, "sh00").run(
            Workload(rate=2000, duration=0.05, max_requests=100)
        )
        metrics = summarize(result, TINY.quorum, TINY.parties)
        assert metrics.completed == 0
        assert metrics.throughput == 0.0
        assert metrics.l95 == pytest.approx(
            result.workload.effective_duration * 1.1
        )


class TestExperiments:
    def test_capacity_curve_latency_explodes_past_knee(self):
        points = capacity_test(TINY, "bls04", rates=[1, 16, 64, 512], duration=2.0)
        assert len(points) == 4
        assert points[-1].l95 > 10 * points[0].l95

    def test_knee_is_interior_or_boundary(self):
        points = capacity_test(TINY, "sg02", rates=[1, 4, 16, 64], duration=2.0)
        knee = find_knee(points)
        assert knee.rate in (1, 4, 16, 64)
        assert knee.l95 < 0.2  # knees sit before the latency wall

    def test_payload_sweep_is_flat(self):
        """Fig. 5b: hybrid encryption makes latency payload-insensitive."""
        points = payload_sweep(
            TINY, "sg02", rate=4, payload_sizes=(256, 4096), duration=4.0
        )
        small, big = points[0], points[1]
        assert big.l_theta_net < small.l_theta_net * 1.15

    def test_steady_state_uses_more_samples(self):
        m = steady_state(TINY, "cks05", rate=8, duration=8.0, max_requests=64)
        assert m.offered == 64

    def test_run_once_kg20_over_tob_flag(self):
        base = run_once(TINY_G, "kg20", 1, 1.0)
        tob = run_once(TINY_G, "kg20", 1, 1.0, kg20_over_tob=True)
        assert tob.l95 > base.l95
