"""Chaum–Pedersen DLEQ proofs: soundness knobs and serialization."""

import pytest

from repro.errors import InvalidProofError
from repro.groups import get_group
from repro.schemes.dleq import DleqProof, dleq_prove, dleq_verify


@pytest.fixture(scope="module")
def setup():
    group = get_group("ed25519")
    g1 = group.generator()
    g2 = group.hash_to_element(b"second base")
    x = group.random_scalar()
    return group, g1, g2, x


def test_honest_proof_verifies(setup):
    group, g1, g2, x = setup
    proof = dleq_prove(group, g1, g2, x)
    dleq_verify(group, g1, g1**x, g2, g2**x, proof)


def test_context_binding(setup):
    group, g1, g2, x = setup
    proof = dleq_prove(group, g1, g2, x, context=b"ctx-a")
    dleq_verify(group, g1, g1**x, g2, g2**x, proof, context=b"ctx-a")
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1**x, g2, g2**x, proof, context=b"ctx-b")


def test_wrong_statement_rejected(setup):
    group, g1, g2, x = setup
    proof = dleq_prove(group, g1, g2, x)
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1 ** (x + 1), g2, g2**x, proof)


def test_unequal_exponents_rejected(setup):
    group, g1, g2, x = setup
    # h1 = g1^x but h2 = g2^(x+5): not a DLEQ statement.
    proof = dleq_prove(group, g1, g2, x)
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1**x, g2, g2 ** (x + 5), proof)


def test_tampered_challenge_rejected(setup):
    group, g1, g2, x = setup
    proof = dleq_prove(group, g1, g2, x)
    bad = DleqProof((proof.challenge + 1) % group.order, proof.response)
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1**x, g2, g2**x, bad)


def test_tampered_response_rejected(setup):
    group, g1, g2, x = setup
    proof = dleq_prove(group, g1, g2, x)
    bad = DleqProof(proof.challenge, (proof.response + 1) % group.order)
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1**x, g2, g2**x, bad)


def test_out_of_range_values_rejected(setup):
    group, g1, g2, x = setup
    bad = DleqProof(group.order, 0)
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1**x, g2, g2**x, bad)


def test_serialization_round_trip(setup):
    group, g1, g2, x = setup
    proof = dleq_prove(group, g1, g2, x)
    assert DleqProof.from_bytes(proof.to_bytes()) == proof


def test_proof_transfers_between_statements_fails(setup):
    group, g1, g2, x = setup
    y = group.random_scalar()
    proof_x = dleq_prove(group, g1, g2, x)
    with pytest.raises(InvalidProofError):
        dleq_verify(group, g1, g1**y, g2, g2**y, proof_x)
