"""Proxy modules: Thetacrypt riding a host platform's network stack.

Two "host platform" nodes (the blockchain side of Fig. 1) expose bridge
endpoints over their own transports; Thetacrypt-side proxies attach to them
and exchange P2P and TOB traffic without any network stack of their own.
"""

import asyncio

import pytest

from repro.network.local import LocalHub
from repro.network.proxy import HostPlatformBridge, P2PProxy, TobProxy
from repro.network.tob import SequencerTob


@pytest.mark.integration
def test_p2p_proxy_end_to_end():
    async def scenario():
        hub = LocalHub()
        bridges = {
            i: HostPlatformBridge("127.0.0.1", 19600 + i, hub.endpoint(i))
            for i in (1, 2)
        }
        for bridge in bridges.values():
            await bridge.start()
        proxies = {
            i: P2PProxy(i, "127.0.0.1", 19600 + i, peer_count=2) for i in (1, 2)
        }
        received = {i: [] for i in proxies}
        for i, proxy in proxies.items():
            async def handler(sender, data, i=i):
                received[i].append((sender, data))

            proxy.set_handler(handler)
            await proxy.start()
        try:
            await proxies[1].send(2, b"through the host")
            await proxies[2].broadcast(b"broadcast back")
            await asyncio.sleep(0.2)
            assert received[2] == [(1, b"through the host")]
            assert received[1] == [(2, b"broadcast back")]
            assert proxies[1].peer_ids() == [2]
        finally:
            for proxy in proxies.values():
                await proxy.stop()
            for bridge in bridges.values():
                await bridge.stop()

    asyncio.run(scenario())


@pytest.mark.integration
def test_tob_proxy_rides_host_ordering():
    async def scenario():
        hub = LocalHub()
        tob_hub = LocalHub()
        bridges = {}
        for i in (1, 2, 3):
            host_tob = SequencerTob(tob_hub.endpoint(i), sequencer_id=1)
            bridges[i] = HostPlatformBridge(
                "127.0.0.1", 19620 + i, hub.endpoint(i), tob=host_tob
            )
            await bridges[i].start()
        proxies = {i: TobProxy(i, "127.0.0.1", 19620 + i) for i in (1, 2, 3)}
        delivered = {i: [] for i in proxies}
        for i, proxy in proxies.items():
            async def handler(sender, data, i=i):
                delivered[i].append((sender, data))

            proxy.set_handler(handler)
            await proxy.start()
        try:
            await proxies[2].submit(b"first")
            await proxies[3].submit(b"second")
            await asyncio.sleep(0.3)
            assert delivered[1] == delivered[2] == delivered[3]
            assert len(delivered[1]) == 2
            origins = {sender for sender, _ in delivered[1]}
            assert origins == {2, 3}
        finally:
            for proxy in proxies.values():
                await proxy.stop()
            for bridge in bridges.values():
                await bridge.stop()

    asyncio.run(scenario())
