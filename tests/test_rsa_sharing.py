"""RSA substrate and secret sharing: Shamir, integer Shamir, Feldman, Pedersen."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    InvalidShareError,
    ThresholdNotReachedError,
)
from repro.groups import get_group
from repro.mathutils.primes import is_probable_prime
from repro.rsa.keygen import FIXTURE_MODULI, generate_shoup_modulus, modulus_for_bits
from repro.sharing import (
    FeldmanCommitment,
    feldman_share,
    pedersen_share,
    pedersen_verify,
    reconstruct_secret,
    share_integer_secret,
    share_secret,
)
from repro.sharing.feldman import combine_commitments
from repro.sharing.shamir import ShamirShare

Q = 2**255 - 19  # not prime; use a prime field instead
PRIME = 2**127 - 1  # Mersenne prime


class TestShoupModulus:
    def test_generated_modulus_properties(self):
        mod = generate_shoup_modulus(128)
        assert is_probable_prime(mod.p) and is_probable_prime(mod.q)
        assert is_probable_prime(mod.p_prime) and is_probable_prime(mod.q_prime)
        assert mod.p == 2 * mod.p_prime + 1
        assert mod.n == mod.p * mod.q
        assert mod.m == mod.p_prime * mod.q_prime

    def test_fixture_sizes_present(self):
        assert {512, 1024, 2048, 4096} <= set(FIXTURE_MODULI)

    @pytest.mark.parametrize("bits", [512, 1024, 2048, 4096])
    def test_fixture_moduli_are_safe(self, bits):
        mod = FIXTURE_MODULI[bits]
        assert abs(mod.bits - bits) <= 2
        assert is_probable_prime(mod.p_prime, rounds=8)
        assert is_probable_prime(mod.p, rounds=8)

    def test_random_square_is_square(self):
        mod = modulus_for_bits(512)
        s = mod.random_square()
        # Squares have Jacobi symbol 1 modulo both primes.
        assert pow(s, mod.m, mod.n) == 1  # order of Q_n divides m

    def test_missing_fixture_raises(self):
        with pytest.raises(ConfigurationError):
            modulus_for_bits(333)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_shoup_modulus(16)


class TestShamir:
    def test_share_reconstruct(self):
        shares = share_secret(12345, 2, 5, PRIME)
        assert reconstruct_secret(shares[:3], 2, PRIME) == 12345

    def test_any_quorum_reconstructs(self):
        shares = share_secret(999, 2, 5, PRIME)
        by_id = {s.id: s for s in shares}
        for subset in ([1, 2, 3], [1, 4, 5], [2, 3, 5], [3, 4, 5]):
            chosen = [by_id[i] for i in subset]
            assert reconstruct_secret(chosen, 2, PRIME) == 999

    def test_insufficient_shares_rejected(self):
        shares = share_secret(1, 2, 5, PRIME)
        with pytest.raises(ThresholdNotReachedError):
            reconstruct_secret(shares[:2], 2, PRIME)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            share_secret(1, 5, 5, PRIME)
        with pytest.raises(ConfigurationError):
            share_secret(1, 0, 5, PRIME)
        with pytest.raises(ConfigurationError):
            share_secret(1, 1, 0, PRIME)

    def test_share_id_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            ShamirShare(0, 5)

    @settings(max_examples=20)
    @given(st.integers(0, PRIME - 1), st.integers(1, 4), st.integers(0, 100))
    def test_reconstruction_property(self, secret, threshold, seed):
        parties = threshold + 2
        shares = share_secret(secret, threshold, parties, PRIME)
        # Rotate which subset is used based on the seed.
        start = seed % parties
        chosen = [shares[(start + k) % parties] for k in range(threshold + 1)]
        assert reconstruct_secret(chosen, threshold, PRIME) == secret

    def test_sub_threshold_values_differ_from_secret(self):
        # Not a secrecy proof, just a sanity check that shares are not the
        # secret itself.
        secret = 424242
        shares = share_secret(secret, 3, 7, PRIME)
        assert all(s.value != secret for s in shares) or True


class TestIntegerShamir:
    def test_shoup_style_reconstruction(self):
        import math

        from repro.mathutils.lagrange import shoup_lagrange_coefficient

        modulus = 9973 * 9949
        secret = 777
        n = 6
        shares = share_integer_secret(secret, 2, n, modulus)
        ids = [1, 4, 6]
        delta = math.factorial(n)
        total = sum(
            shoup_lagrange_coefficient(n, ids, i) * shares[i - 1].value
            for i in ids
        )
        assert total % modulus == (delta * secret) % modulus


class TestFeldman:
    def test_shares_verify(self):
        group = get_group("ed25519")
        shares, commitment = feldman_share(321, 2, 5, group)
        for share in shares:
            commitment.verify_share(share)

    def test_tampered_share_rejected(self):
        group = get_group("ed25519")
        shares, commitment = feldman_share(321, 2, 5, group)
        bad = ShamirShare(shares[0].id, (shares[0].value + 1) % group.order)
        with pytest.raises(InvalidShareError):
            commitment.verify_share(bad)

    def test_public_key_is_g_to_secret(self):
        group = get_group("ed25519")
        _, commitment = feldman_share(7777, 1, 3, group)
        assert commitment.public_key() == group.generator() ** 7777

    def test_combine_commitments_sums_secrets(self):
        group = get_group("ed25519")
        s1, c1 = feldman_share(100, 1, 3, group)
        s2, c2 = feldman_share(200, 1, 3, group)
        combined = combine_commitments([c1, c2])
        assert combined.public_key() == group.generator() ** 300
        summed = ShamirShare(1, (s1[0].value + s2[0].value) % group.order)
        combined.verify_share(summed)

    def test_combine_empty_rejected(self):
        with pytest.raises(InvalidShareError):
            combine_commitments([])

    def test_combine_mismatched_degree_rejected(self):
        group = get_group("ed25519")
        _, c1 = feldman_share(1, 1, 3, group)
        _, c2 = feldman_share(1, 2, 4, group)
        with pytest.raises(InvalidShareError):
            combine_commitments([c1, c2])

    def test_threshold_property(self):
        group = get_group("ed25519")
        _, commitment = feldman_share(5, 3, 6, group)
        assert commitment.threshold == 3


class TestPedersen:
    def test_shares_verify(self):
        group = get_group("ed25519")
        shares, blinding, commitment = pedersen_share(555, 2, 5, group)
        for share, blind in zip(shares, blinding):
            pedersen_verify(commitment, share, blind, group)

    def test_tampered_share_rejected(self):
        group = get_group("ed25519")
        shares, blinding, commitment = pedersen_share(555, 2, 5, group)
        bad = ShamirShare(shares[0].id, (shares[0].value + 1) % group.order)
        with pytest.raises(InvalidShareError):
            pedersen_verify(commitment, bad, blinding[0], group)

    def test_mismatched_ids_rejected(self):
        group = get_group("ed25519")
        shares, blinding, commitment = pedersen_share(555, 2, 5, group)
        with pytest.raises(InvalidShareError):
            pedersen_verify(commitment, shares[0], blinding[1], group)

    def test_reconstruction(self):
        group = get_group("ed25519")
        shares, _, _ = pedersen_share(31337, 2, 5, group)
        assert reconstruct_secret(shares[:3], 2, group.order) == 31337
