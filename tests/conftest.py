"""Shared fixtures: groups, small RSA moduli, and cached key material.

Key generation for the pairing and RSA schemes is expensive in pure Python,
so (threshold=1, parties=4) key material is dealt once per session and
shared by read-only tests.
"""

from __future__ import annotations

import pytest

from repro.groups import get_group
from repro.groups.bn254 import bn254_pairing
from repro.rsa.keygen import RsaModulus, generate_shoup_modulus
from repro.schemes import generate_keys


@pytest.fixture(scope="session")
def ed25519_group():
    return get_group("ed25519")


@pytest.fixture(scope="session")
def pairing():
    return bn254_pairing()


@pytest.fixture(scope="session")
def small_modulus() -> RsaModulus:
    """A fresh 256-bit Shoup modulus (fast to generate, fine for tests)."""
    return generate_shoup_modulus(256)


@pytest.fixture(scope="session")
def keys_sg02():
    return generate_keys("sg02", 1, 4)


@pytest.fixture(scope="session")
def keys_bz03():
    return generate_keys("bz03", 1, 4)


@pytest.fixture(scope="session")
def keys_sh00(small_modulus):
    return generate_keys("sh00", 1, 4, rsa_modulus=small_modulus)


@pytest.fixture(scope="session")
def keys_bls04():
    return generate_keys("bls04", 1, 4)


@pytest.fixture(scope="session")
def keys_kg20():
    return generate_keys("kg20", 1, 4)


@pytest.fixture(scope="session")
def keys_cks05():
    return generate_keys("cks05", 1, 4)


@pytest.fixture(scope="session")
def all_keys(keys_sg02, keys_bz03, keys_sh00, keys_bls04, keys_kg20, keys_cks05):
    return {
        "sg02": keys_sg02,
        "bz03": keys_bz03,
        "sh00": keys_sh00,
        "bls04": keys_bls04,
        "kg20": keys_kg20,
        "cks05": keys_cks05,
    }
