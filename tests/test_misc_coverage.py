"""Coverage for the corners: bounded simulation, precompute aborts,
fixture tooling, daemon loading, cross-group SG02, version metadata."""

import asyncio
import json
import pathlib
import subprocess
import sys

import pytest

from repro.core.protocols import FrostPrecomputationPool, FrostPrecomputeProtocol
from repro.errors import ProtocolAbortedError
from repro.sim.cluster import SimulatedThetaNetwork
from repro.sim.deployments import Deployment
from repro.sim.latency import Region
from repro.sim.workload import Workload

TINY = Deployment("TINY-4-L", "tiny", 4, 1, (Region.FRA1,), 64)


class TestBoundedSimulation:
    def test_until_bound_stops_early(self):
        net = SimulatedThetaNetwork(TINY, "sh00")
        full = net.run(Workload(rate=200, duration=0.5, max_requests=100))
        bounded = SimulatedThetaNetwork(TINY, "sh00").run(
            Workload(rate=200, duration=0.5, max_requests=100), until=0.8
        )
        assert bounded.events < full.events
        assert bounded.sim_time <= 0.8 + 1e-9

    def test_bound_beyond_completion_is_harmless(self):
        a = SimulatedThetaNetwork(TINY, "sg02").run(
            Workload(rate=1, duration=1, seed=5)
        )
        b = SimulatedThetaNetwork(TINY, "sg02").run(
            Workload(rate=1, duration=1, seed=5), until=1e9
        )
        assert len(a.request_first_finish) == len(b.request_first_finish)

    def test_metrics_identical_within_horizon(self):
        from repro.sim.metrics import summarize

        workload = Workload(rate=8, duration=2, seed=9)
        horizon = workload.effective_duration * 1.1
        full = SimulatedThetaNetwork(TINY, "bls04").run(workload)
        bounded = SimulatedThetaNetwork(TINY, "bls04").run(
            Workload(rate=8, duration=2, seed=9), until=horizon + 0.25
        )
        m_full = summarize(full, TINY.quorum, TINY.parties)
        m_bounded = summarize(bounded, TINY.quorum, TINY.parties)
        assert m_full.l95 == pytest.approx(m_bounded.l95)
        assert m_full.throughput == pytest.approx(m_bounded.throughput)


class TestFrostPrecomputeAborts:
    def test_wrong_batch_size_aborts(self, keys_kg20):
        from repro.core.messages import Channel, ProtocolMessage

        pool_a = FrostPrecomputationPool()
        pool_b = FrostPrecomputationPool()
        a = FrostPrecomputeProtocol("pre", keys_kg20.share_for(1), 3, pool_a)
        b = FrostPrecomputeProtocol("pre", keys_kg20.share_for(2), 2, pool_b)
        a.do_round()
        messages = b.do_round()  # batch of 2 while A expects 3
        with pytest.raises(ProtocolAbortedError):
            a.update(messages[0])


class TestFixtureTooling:
    @pytest.mark.integration
    def test_fixture_generator_produces_importable_module(self, tmp_path):
        root = pathlib.Path(__file__).parent.parent
        target = tmp_path / "src" / "repro" / "rsa"
        target.mkdir(parents=True)
        result = subprocess.run(
            [sys.executable, str(root / "tools" / "gen_rsa_fixtures.py"), "64"],
            capture_output=True,
            text=True,
            timeout=120,
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr
        text = (target / "fixtures.py").read_text()
        namespace: dict = {}
        exec(text, namespace)  # noqa: S102 - our own generated file
        pairs = namespace["SAFE_PRIME_PAIRS"]
        assert 64 in pairs
        p, q = pairs[64]
        from repro.mathutils.primes import is_probable_prime

        assert is_probable_prime(p) and is_probable_prime(q)


class TestDaemonLoading:
    def test_load_node_from_files(self, tmp_path, keys_cks05):
        from repro.schemes.keystore import node_keystore
        from repro.service.config import make_local_configs
        from repro.service.daemon import load_node

        config = make_local_configs(4, 1, base_port=19950, rpc_base_port=0)[0]
        (tmp_path / "config.json").write_text(config.to_json())
        (tmp_path / "keystore.json").write_text(
            node_keystore({"coin": keys_cks05}, node_id=1)
        )
        node = load_node(
            str(tmp_path / "config.json"), str(tmp_path / "keystore.json")
        )
        assert node.config.node_id == 1
        assert "coin" in node.keys
        assert node.keys.get("coin").key_share.id == 1


class TestCrossGroupSg02:
    def test_sg02_on_bn254_g1(self):
        """SG02 over the pairing curve's G1 — a third group for the cipher."""
        from repro.schemes import get_scheme, sg02

        public, shares = sg02.keygen(1, 4, group_name="bn254g1")
        cipher = get_scheme("sg02")
        ct = cipher.encrypt(public, b"bn254 sg02", b"l")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 2)]
        assert cipher.combine(public, ct, dec) == b"bn254 sg02"


class TestPackageMetadata:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_error_root_importable_from_top(self):
        from repro import ThetacryptError
        from repro.errors import RpcError

        assert issubclass(RpcError, ThetacryptError)
