"""Service layer: config, node wiring, both RPC endpoint families, faults."""

import asyncio

import pytest

from repro.errors import ConfigurationError, RpcError
from repro.network.local import LocalHub
from repro.service.client import ThetacryptClient
from repro.service.config import NodeConfig, PeerConfig, make_local_configs
from repro.service.node import ThetacryptNode, derive_instance_id


class TestConfig:
    def test_make_local_configs_consistent(self):
        configs = make_local_configs(4, 1)
        assert len(configs) == 4
        assert all(c.parties == 4 and c.threshold == 1 for c in configs)
        assert configs[0].peer_map() == {
            2: ("127.0.0.1", 17002),
            3: ("127.0.0.1", 17003),
            4: ("127.0.0.1", 17004),
        }

    def test_json_round_trip(self):
        config = make_local_configs(4, 1)[2]
        restored = NodeConfig.from_json(config.to_json())
        assert restored == config

    def test_invalid_node_id(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=5, parties=4, threshold=1)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=1, parties=4, threshold=4)

    def test_invalid_transport(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=1, parties=4, threshold=1, transport="carrier-pigeon")

    def test_peer_map_excludes_self(self):
        peers = (PeerConfig(1, "h", 1), PeerConfig(2, "h", 2))
        config = NodeConfig(node_id=1, parties=2, threshold=1, peers=peers)
        assert 1 not in config.peer_map()


class TestInstanceIdDerivation:
    def test_deterministic(self):
        a = derive_instance_id("sign", "k", b"data", b"l")
        b = derive_instance_id("sign", "k", b"data", b"l")
        assert a == b

    def test_distinct_inputs(self):
        base = derive_instance_id("sign", "k", b"data", b"l")
        assert derive_instance_id("sign", "k", b"data2", b"l") != base
        assert derive_instance_id("sign", "k2", b"data", b"l") != base
        assert derive_instance_id("decrypt", "k", b"data", b"l") != base
        assert derive_instance_id("sign", "k", b"data", b"l2") != base

    def test_no_length_extension_ambiguity(self):
        # (label="ab", data="c") must differ from (label="a", data="bc").
        assert derive_instance_id("sign", "k", b"c", b"ab") != derive_instance_id(
            "sign", "k", b"bc", b"a"
        )


async def _start_network(all_keys, parties=4, threshold=1, **overrides):
    configs = make_local_configs(
        parties, threshold, transport="local", rpc_base_port=0, **overrides
    )
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, km in all_keys.items():
            node.install_key(
                key_id, km.scheme, km.public_key, km.share_for(config.node_id)
            )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    return hub, nodes, client


async def _teardown(nodes, client):
    await client.close()
    for node in nodes:
        await node.stop()


@pytest.mark.integration
class TestServiceEndToEnd:
    def test_protocol_api_all_kinds(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                signature = await client.sign("bls04", b"service sign")
                assert await client.verify_signature("bls04", b"service sign", signature)

                ciphertext = await client.encrypt("sg02", b"service secret", b"lbl")
                plaintext = await client.decrypt("sg02", ciphertext, b"lbl")
                assert plaintext == b"service secret"

                coin_a = await client.flip_coin("cks05", b"round-9")
                coin_b = await client.flip_coin("cks05", b"round-9")
                assert coin_a == coin_b and len(coin_a) == 32
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_interactive_frost_and_precompute(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                sig = await client.sign("kg20", b"frost service")
                assert await client.verify_signature("kg20", b"frost service", sig)
                pre = await client.precompute("kg20", 3)
                assert all(r["available"] == 3 for r in pre.values())
                sig2 = await client.sign("kg20", b"frost precomputed")
                assert await client.verify_signature(
                    "kg20", b"frost precomputed", sig2
                )
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_rsa_and_pairing_cipher(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                sig = await client.sign("sh00", b"rsa service")
                assert await client.verify_signature("sh00", b"rsa service", sig)
                ct = await client.encrypt("bz03", b"pairing ct", b"l")
                assert await client.decrypt("bz03", ct, b"l") == b"pairing ct"
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_crash_fault_tolerance(self, all_keys):
        """n=4, t=1: one crashed node must not prevent results."""

        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                await nodes[3].stop()  # crash node 4
                survivors = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes[:3]}
                )
                signature = await survivors.sign("bls04", b"degraded mode")
                assert await survivors.verify_signature(
                    "bls04", b"degraded mode", signature
                )
                coin = await survivors.flip_coin("cks05", b"degraded coin")
                assert len(coin) == 32
                await survivors.close()
            finally:
                await _teardown(nodes[:3], client)

        asyncio.run(scenario())

    def test_status_and_list_keys(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                await client.sign("bls04", b"status probe")
                instance_id = derive_instance_id("sign", "bls04", b"status probe")
                status = await client.call(1, "status", {"instance_id": instance_id})
                assert status["status"] == "finished"
                assert status["latency"] > 0
                keys = await client.call(1, "list_keys", {})
                listed = {k["key_id"]: k for k in keys["keys"]}
                assert set(listed) == set(all_keys)
                assert listed["bls04"]["kind"] == "signature"
                assert listed["sg02"]["threshold"] == 1
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_error_paths(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                with pytest.raises(RpcError):
                    await client.call(1, "sign", {"key_id": "missing", "data": "00"})
                with pytest.raises(RpcError):
                    await client.call(1, "nonsense", {})
                with pytest.raises(RpcError):
                    # Signing with a cipher key is a category error.
                    await client.call(
                        1, "encrypt", {"key_id": "bls04", "data": "00", "label": ""}
                    )
                # Verification of garbage returns False, not an error.
                assert not await client.verify_signature("bls04", b"m", b"\x00\x01")
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_ping_identifies_nodes(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                for node_id in client.node_ids:
                    pong = await client.call(node_id, "ping", {})
                    assert pong["node_id"] == node_id
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_concurrent_requests(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                coins = await asyncio.gather(
                    *(client.flip_coin("cks05", b"c%d" % k) for k in range(6))
                )
                assert len({bytes(c) for c in coins}) == 6
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_dkg_over_rpc_then_use_key(self, all_keys):
        """Dealerless setup through the service API (§2.2's alternative)."""

        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                group_key = await client.run_dkg("fresh-coin", scheme="cks05")
                assert len(group_key) == 32  # an ed25519 element
                coin_a = await client.flip_coin("fresh-coin", b"dkg round")
                coin_b = await client.flip_coin("fresh-coin", b"dkg round")
                assert coin_a == coin_b and len(coin_a) == 32

                # DKG output also powers a cipher...
                await client.run_dkg("fresh-cipher", scheme="sg02")
                ct = await client.encrypt("fresh-cipher", b"dkg secret", b"l")
                assert await client.decrypt("fresh-cipher", ct, b"l") == b"dkg secret"

                # ...and a FROST signature key.
                await client.run_dkg("fresh-wallet", scheme="kg20")
                sig = await client.sign("fresh-wallet", b"dkg signed")
                assert await client.verify_signature("fresh-wallet", b"dkg signed", sig)
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_dkg_rejects_bad_targets(self, all_keys):
        async def scenario():
            hub, nodes, client = await _start_network(all_keys)
            try:
                with pytest.raises(RpcError):
                    await client.run_dkg("rsa-key", scheme="sh00")
                with pytest.raises(RpcError):
                    # Existing key id must not be overwritten.
                    await client.run_dkg("bls04", scheme="cks05")
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_gossip_deployment(self):
        from repro.schemes import generate_keys

        keys = {"bls04": generate_keys("bls04", 1, 5)}

        async def scenario():
            hub, nodes, client = await _start_network(
                keys, parties=5, threshold=1, gossip_fanout=2
            )
            try:
                signature = await client.sign("bls04", b"over gossip")
                assert await client.verify_signature("bls04", b"over gossip", signature)
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())
