"""Determinism contract of the fault-injection harness.

The whole point of a *seeded* FaultPlan is reproducible chaos: the same
seed must yield the same fault schedule (so a failing chaos run can be
replayed), and corrupted shares must be rejected by share verification
without ever poisoning the combined result.
"""

import asyncio
import random

import pytest

from repro.core.messages import Channel, ProtocolMessage
from repro.core.protocols import OperationRequest, make_operation
from repro.errors import InvalidShareError
from repro.network.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    FaultyNetwork,
    LinkFaults,
    Partition,
    corrupt_frame,
)
from repro.network.local import LocalHub
from repro.sim.cluster import SimulatedThetaNetwork
from repro.sim.deployments import Deployment
from repro.sim.latency import Region
from repro.sim.workload import Workload

from tests.test_faults_chaos import _chaos_network, _teardown

_BUSY = LinkFaults(
    drop=0.2, delay=0.005, jitter=0.01, duplicate=0.15, reorder=0.15, corrupt=0.1
)


class TestInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(seed=42, default=_BUSY)
        a, b = FaultInjector(plan), FaultInjector(plan)
        seq_a = [a.decide(1, 2) for _ in range(300)]
        seq_b = [b.decide(1, 2) for _ in range(300)]
        assert seq_a == seq_b
        # The schedule is non-trivial: every fault kind actually fires.
        assert any(d.drop for d in seq_a)
        assert any(d.duplicate for d in seq_a)
        assert any(d.reorder for d in seq_a)
        assert any(d.corrupt for d in seq_a)
        assert all(d.delay >= 0.005 for d in seq_a)

    def test_links_independent_of_interleaving(self):
        """Per-link streams do not bleed into each other: drawing links in a
        different global order yields the same per-link schedule."""
        plan = FaultPlan(seed=7, default=_BUSY)
        a, b = FaultInjector(plan), FaultInjector(plan)
        interleaved = {(1, 2): [], (1, 3): [], (2, 1): []}
        for _ in range(100):
            for link in interleaved:
                interleaved[link].append(a.decide(*link))
        sequential = {
            link: [b.decide(*link) for _ in range(100)] for link in interleaved
        }
        assert interleaved == sequential

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan(seed=1, default=_BUSY))
        b = FaultInjector(FaultPlan(seed=2, default=_BUSY))
        assert [a.decide(1, 2) for _ in range(100)] != [
            b.decide(1, 2) for _ in range(100)
        ]

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            seed=99,
            default=LinkFaults(drop=0.1),
            links={"1->2": LinkFaults(delay=0.5), "*->3": LinkFaults(corrupt=1.0)},
            partitions=(Partition(groups=((1, 2), (3, 4)), start=1.0, heal=2.0),),
            crashes=(Crash(node=4, at=0.5, recover=3.0),),
            byzantine=(2,),
            byzantine_rate=0.8,
            reorder_hold=0.1,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestCorruption:
    def test_corrupt_frame_preserves_envelope(self):
        message = ProtocolMessage("inst-7", 2, 1, Channel.P2P, b"share-payload")
        frame = b"\x01" + message.to_bytes()  # multiplexer-tagged, as on wire
        corrupted = corrupt_frame(frame, random.Random(5))
        assert corrupted != frame
        assert corrupted[:1] == b"\x01"
        parsed = ProtocolMessage.from_bytes(corrupted[1:])
        assert (parsed.instance_id, parsed.sender, parsed.round) == ("inst-7", 2, 1)
        assert parsed.payload != message.payload

    def test_corrupt_frame_is_deterministic(self):
        message = ProtocolMessage("inst", 1, 0, Channel.P2P, b"0123456789")
        frame = message.to_bytes()
        assert corrupt_frame(frame, random.Random(3)) == corrupt_frame(
            frame, random.Random(3)
        )

    def test_unparseable_frame_still_corrupted(self):
        assert corrupt_frame(b"not a protocol frame", random.Random(1)) != (
            b"not a protocol frame"
        )
        assert corrupt_frame(b"", random.Random(1)) == b""

    def test_corrupted_share_rejected_without_poisoning(self, keys_cks05):
        """A flipped payload byte is rejected by share verification; the
        combine over the remaining honest shares is unaffected."""
        keys = keys_cks05
        request = OperationRequest("coin", b"poison-check")
        ops = {
            share.id: make_operation(
                keys.scheme, keys.public_key, share, request
            )
            for share in keys.key_shares
        }
        payloads = {pid: op.create_own_share() for pid, op in ops.items()}

        clean = make_operation(
            keys.scheme, keys.public_key, keys.share_for(1), request
        )
        clean.create_own_share()
        clean.accept_share(payloads[2])
        reference = clean.combine()

        victim = ops[1]
        corrupted = bytearray(payloads[3])
        corrupted[len(corrupted) // 2] ^= 0xFF
        with pytest.raises(InvalidShareError):
            victim.accept_share(bytes(corrupted))
        assert victim.share_count == 1  # the bad share was never stored
        victim.accept_share(payloads[2])
        assert victim.combine() == reference


@pytest.mark.integration
class TestEndToEndDeterminism:
    def test_sim_chaos_identical_schedules_and_outcomes(self):
        """The discrete-event runtime is fully deterministic: same plan,
        same workload ⇒ identical fault schedule and completion set."""
        deployment = Deployment("LAN4", "small", 4, 1, (Region.FRA1,) * 4, 100)
        plan = FaultPlan(
            seed=7,
            default=LinkFaults(drop=0.2, delay=0.01, corrupt=0.1),
            crashes=(Crash(node=4, at=0.0),),
            byzantine=(3,),
        )
        workload = Workload(rate=5, duration=2.0, payload_bytes=64)
        network = SimulatedThetaNetwork(deployment, "sg02", fault_plan=plan)
        first = network.run(workload)
        second = network.run(workload)
        assert first.faults_injected  # the plan actually fired
        assert first.faults_injected == second.faults_injected
        assert set(first.request_first_finish) == set(
            second.request_first_finish
        )
        # 1 crashed + 1 byzantine of 4 at t=1: every request still finishes.
        assert len(first.request_first_finish) == len(workload.arrival_times())

    def test_sim_different_seeds_differ(self):
        deployment = Deployment("LAN4", "small", 4, 1, (Region.FRA1,) * 4, 100)
        workload = Workload(rate=5, duration=2.0, payload_bytes=64)
        runs = {}
        for seed in (1, 2):
            plan = FaultPlan(seed=seed, default=LinkFaults(drop=0.3))
            runs[seed] = SimulatedThetaNetwork(
                deployment, "cks05", fault_plan=plan
            ).run(workload)
        assert runs[1].faults_injected != runs[2].faults_injected

    def test_service_chaos_reproducible(self, all_keys):
        """Two fresh clusters under the same seeded plan both finalize and
        agree on the result, with corrupted shares visibly rejected."""
        plan = FaultPlan(seed=77, byzantine=(2,), default=LinkFaults(drop=0.1))

        async def one_run():
            hub, nodes, client = await _chaos_network(
                all_keys, plan, instance_timeout=10.0
            )
            try:
                ciphertext = await client.encrypt(
                    "sg02", b"same seed, same story", b"l", node_id=1
                )
                return await client.decrypt("sg02", ciphertext, b"l")
            finally:
                await _teardown(nodes, client)

        first = asyncio.run(one_run())
        second = asyncio.run(one_run())
        assert first == second == b"same seed, same story"

    def test_faulty_network_counts_faults(self, all_keys):
        """Injected faults surface on repro_faults_injected for the node."""
        plan = FaultPlan(seed=5, default=LinkFaults(drop=0.5))

        async def scenario():
            hub, nodes, client = await _chaos_network(
                all_keys, plan, instance_timeout=10.0
            )
            try:
                await client.flip_coin("cks05", b"count-faults")
                text = "\n".join(n.render_metrics() for n in nodes)
                assert 'repro_faults_injected{kind="drop"' in text or (
                    'kind="drop"' in text
                )
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())
