"""Every example must run to completion as a real subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_directory_has_the_promised_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3  # deliverable: at least three runnable examples


@pytest.mark.integration
@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    root = pathlib.Path(__file__).parent.parent
    result = subprocess.run(
        [sys.executable, str(root / "examples" / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=root,
    )
    assert result.returncode == 0, (
        f"{script} failed\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
