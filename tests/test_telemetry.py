"""Telemetry unit tests: registry semantics, exposition golden output,
quantile math, and trace contexts."""

import asyncio
import math

import pytest

from repro.telemetry import (
    MetricRegistry,
    TelemetryError,
    current_trace,
    parse_text,
    render_text,
    start_trace,
    summarize,
)
from repro.telemetry.registry import DEFAULT_BUCKETS, _quantile
from repro.telemetry.tracing import TraceContext, adopt_trace


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricRegistry()
        requests = registry.counter("requests_total", "Requests.")
        requests.inc()
        requests.inc(2.5)
        assert requests.value == 3.5

    def test_negative_increment_rejected(self):
        registry = MetricRegistry()
        c = registry.counter("c_total", "c")
        with pytest.raises(TelemetryError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        registry = MetricRegistry()
        c = registry.counter("hits_total", "h", ("method",))
        c.labels("sign").inc()
        c.labels("sign").inc()
        c.labels(method="decrypt").inc()
        assert c.labels("sign").value == 2
        assert c.labels("decrypt").value == 1

    def test_label_cardinality_enforced(self):
        registry = MetricRegistry()
        c = registry.counter("x_total", "x", ("a", "b"))
        with pytest.raises(TelemetryError):
            c.labels("only-one")
        with pytest.raises(TelemetryError):
            c.labels(a="1", wrong="2")

    def test_unlabeled_shortcut_rejected_on_labeled_family(self):
        registry = MetricRegistry()
        c = registry.counter("y_total", "y", ("a",))
        with pytest.raises(TelemetryError):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricRegistry()
        g = registry.gauge("inflight", "g")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4


class TestRegistry:
    def test_get_or_create_idempotent(self):
        registry = MetricRegistry()
        a = registry.counter("same_total", "s", ("l",))
        b = registry.counter("same_total", "ignored", ("l",))
        assert a is b

    def test_type_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("taken", "t")
        with pytest.raises(TelemetryError):
            registry.gauge("taken", "t")

    def test_label_conflict_rejected(self):
        registry = MetricRegistry()
        registry.counter("lbl_total", "t", ("a",))
        with pytest.raises(TelemetryError):
            registry.counter("lbl_total", "t", ("b",))

    def test_invalid_names_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(TelemetryError):
            registry.counter("1bad", "x")
        with pytest.raises(TelemetryError):
            registry.counter("ok_total", "x", ("bad-label",))
        with pytest.raises(TelemetryError):
            registry.counter("also_ok", "x", ("__reserved",))

    def test_collector_runs_at_collect_time(self):
        registry = MetricRegistry()
        g = registry.gauge("pulled", "p")
        registry.register_collector(lambda: g.set(42))
        families = registry.collect()
        assert g.value == 42
        assert [f.name for f in families] == ["pulled"]


class TestHistogram:
    def test_bucket_boundaries_cumulative(self):
        registry = MetricRegistry()
        h = registry.histogram("lat", "l", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 50.0):
            h.observe(v)
        child = h.labels()
        bounds = child.bucket_counts()
        # le=0.1 catches 0.05 and the boundary value 0.1 itself.
        assert bounds == [(0.1, 2), (1.0, 3), (10.0, 4), (math.inf, 5)]
        assert child.count == 5
        assert child.sum == pytest.approx(55.65)
        assert child.minimum == 0.05 and child.maximum == 50.0

    def test_default_buckets_are_exponential(self):
        ratios = {
            DEFAULT_BUCKETS[i + 1] / DEFAULT_BUCKETS[i]
            for i in range(len(DEFAULT_BUCKETS) - 1)
        }
        assert ratios == {2.0}
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.00025)

    def test_unsorted_buckets_rejected(self):
        registry = MetricRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("bad", "b", buckets=(1.0, 0.5))

    def test_quantiles_exact(self):
        registry = MetricRegistry()
        h = registry.histogram("q", "q")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        child = h.labels()
        assert child.quantile(0.5) == pytest.approx(50.5)
        assert child.quantile(0.95) == pytest.approx(95.05)
        assert child.quantile(0.99) == pytest.approx(99.01)
        assert child.quantile(0.0) == 1.0
        assert child.quantile(1.0) == 100.0

    def test_even_count_median_interpolates(self):
        # The bug the histogram replaces: latencies[len//2] returned the
        # *upper* neighbour for even counts (3 for [1,2,3,4]).
        registry = MetricRegistry()
        h = registry.histogram("m", "m")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.labels().quantile(0.5) == pytest.approx(2.5)

    def test_quantile_empty_and_invalid(self):
        assert _quantile([], 0.5) is None
        with pytest.raises(TelemetryError):
            _quantile([1.0], 1.5)

    def test_merged_quantile_pools_children(self):
        registry = MetricRegistry()
        h = registry.histogram("per_scheme", "p", ("scheme",))
        for v in (1.0, 2.0):
            h.labels("a").observe(v)
        for v in (3.0, 4.0):
            h.labels("b").observe(v)
        assert h.merged_quantile(0.5) == pytest.approx(2.5)
        assert h.total_count() == 4
        assert h.total_sum() == pytest.approx(10.0)
        assert h.merged_max() == 4.0

    def test_summarize_shape(self):
        registry = MetricRegistry()
        h = registry.histogram("s", "s", ("k",))
        assert summarize(h) == {}
        assert summarize(None) == {}
        h.labels("x").observe(2.0)
        digest = summarize(h)
        assert digest["count"] == 1
        assert digest["mean"] == digest["p50"] == digest["max"] == 2.0
        assert set(digest) == {"count", "mean", "p50", "p95", "p99", "max"}


GOLDEN = """\
# HELP demo_latency_seconds Demo latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{op="sign",le="0.1"} 1
demo_latency_seconds_bucket{op="sign",le="1"} 2
demo_latency_seconds_bucket{op="sign",le="+Inf"} 3
demo_latency_seconds_sum{op="sign"} 3.5625
demo_latency_seconds_count{op="sign"} 3
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{method="decrypt",ok="false"} 1
demo_requests_total{method="sign",ok="true"} 2
# HELP demo_up Node liveness.
# TYPE demo_up gauge
demo_up 1
"""


def _golden_registry() -> MetricRegistry:
    registry = MetricRegistry()
    c = registry.counter("demo_requests_total", "Requests served.", ("method", "ok"))
    c.labels("sign", "true").inc(2)
    c.labels("decrypt", "false").inc()
    registry.gauge("demo_up", "Node liveness.").set(1)
    h = registry.histogram("demo_latency_seconds", "Demo latency.", ("op",), buckets=(0.1, 1.0))
    # Dyadic values: the rendered _sum must be exact, not 3.599999….
    for v in (0.0625, 0.5, 3.0):
        h.labels("sign").observe(v)
    return registry


class TestExposition:
    def test_golden_text(self):
        assert render_text(_golden_registry()) == GOLDEN

    def test_parse_round_trip(self):
        parsed = parse_text(GOLDEN)
        assert parsed[("demo_up", ())] == 1
        assert parsed[("demo_requests_total", (("method", "sign"), ("ok", "true")))] == 2
        assert (
            parsed[("demo_latency_seconds_bucket", (("op", "sign"), ("le", "+Inf")))]
            == 3
        )
        assert parsed[("demo_latency_seconds_sum", (("op", "sign"),))] == 3.5625

    def test_label_escaping(self):
        registry = MetricRegistry()
        registry.counter("esc_total", "e", ("v",)).labels('a"b\\c\nd').inc()
        text = render_text(registry)
        assert r'v="a\"b\\c\nd"' in text

    def test_merge_prefers_first_registry(self):
        first, second = MetricRegistry(), MetricRegistry()
        first.gauge("shared", "s").set(1)
        second.gauge("shared", "s").set(2)
        second.gauge("extra", "e").set(3)
        parsed = parse_text(render_text(first, second))
        assert parsed[("shared", ())] == 1
        assert parsed[("extra", ())] == 3

    def test_empty_registry_renders_empty(self):
        assert render_text(MetricRegistry()) == ""


class TestTracing:
    def test_span_recording(self):
        trace = TraceContext("t")
        with trace.span("work", kind="demo"):
            pass
        trace.event("hop", sender=2)
        report = trace.report()
        assert report["name"] == "t"
        assert len(report["trace_id"]) == 16
        (span,) = report["spans"]
        assert span["name"] == "work"
        assert span["end"] >= span["start"]
        assert span["attributes"] == {"kind": "demo"}
        (event,) = report["events"]
        assert event["name"] == "hop" and event["attributes"] == {"sender": 2}

    def test_start_trace_sets_and_restores_context(self):
        assert current_trace() is None
        with start_trace("outer") as outer:
            assert current_trace() is outer
            assert adopt_trace("ignored") is outer
        assert current_trace() is None
        detached = adopt_trace("fresh")
        assert detached.name == "fresh"

    def test_tasks_inherit_trace_context(self):
        async def scenario():
            seen = {}

            async def child():
                trace = current_trace()
                seen["id"] = trace.trace_id if trace else None

            with start_trace("request") as trace:
                task = asyncio.get_running_loop().create_task(child())
            await task
            assert seen["id"] == trace.trace_id
            # A task created outside the block sees no trace.
            task2 = asyncio.get_running_loop().create_task(child())
            await task2
            assert seen["id"] is None

        asyncio.run(scenario())
