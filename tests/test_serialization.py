"""Canonical encoding: round-trips, canonicality, and malformed input."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.serialization import (
    Reader,
    encode_bytes,
    encode_int,
    encode_seq,
    encode_str,
    fixed_to_int,
    hexlify,
    int_to_fixed,
    unhexlify,
)


class TestEncodeBytes:
    def test_round_trip(self):
        reader = Reader(encode_bytes(b"hello"))
        assert reader.read_bytes() == b"hello"
        reader.finish()

    def test_empty(self):
        reader = Reader(encode_bytes(b""))
        assert reader.read_bytes() == b""
        reader.finish()

    def test_truncated_header(self):
        with pytest.raises(SerializationError):
            Reader(b"\x00\x00").read_bytes()

    def test_truncated_body(self):
        with pytest.raises(SerializationError):
            Reader(b"\x00\x00\x00\x05ab").read_bytes()

    def test_trailing_garbage_rejected(self):
        reader = Reader(encode_bytes(b"x") + b"junk")
        reader.read_bytes()
        with pytest.raises(SerializationError):
            reader.finish()

    @given(st.binary(max_size=4096))
    def test_round_trip_property(self, data):
        reader = Reader(encode_bytes(data))
        assert reader.read_bytes() == data
        reader.finish()


class TestEncodeInt:
    def test_round_trip(self):
        reader = Reader(encode_int(123456789))
        assert reader.read_int() == 123456789
        reader.finish()

    def test_zero(self):
        reader = Reader(encode_int(0))
        assert reader.read_int() == 0
        reader.finish()

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_int(-1)

    def test_non_minimal_rejected(self):
        # A leading zero byte is a second encoding of the same value.
        padded = encode_bytes(b"\x00\x01")
        with pytest.raises(SerializationError):
            Reader(padded).read_int()

    @given(st.integers(min_value=0, max_value=2**4096))
    def test_round_trip_property(self, value):
        reader = Reader(encode_int(value))
        assert reader.read_int() == value
        reader.finish()


class TestEncodeStr:
    def test_round_trip(self):
        reader = Reader(encode_str("θ-network"))
        assert reader.read_str() == "θ-network"
        reader.finish()

    def test_invalid_utf8(self):
        with pytest.raises(SerializationError):
            Reader(encode_bytes(b"\xff\xfe")).read_str()


class TestSequences:
    def test_seq_count(self):
        data = encode_seq([encode_int(1), encode_int(2), encode_int(3)])
        reader = Reader(data)
        values = [reader.read_int() for _ in reader.iter_seq()]
        assert values == [1, 2, 3]
        reader.finish()

    def test_empty_seq(self):
        reader = Reader(encode_seq([]))
        assert list(reader.iter_seq()) == []
        reader.finish()


class TestFixedWidth:
    def test_round_trip(self):
        assert fixed_to_int(int_to_fixed(0xDEAD, 4), 4) == 0xDEAD

    def test_overflow(self):
        with pytest.raises(SerializationError):
            int_to_fixed(256, 1)

    def test_wrong_width(self):
        with pytest.raises(SerializationError):
            fixed_to_int(b"\x00\x01", 4)


class TestHex:
    def test_round_trip(self):
        assert unhexlify(hexlify(b"\x00\xffA")) == b"\x00\xffA"

    def test_invalid(self):
        with pytest.raises(SerializationError):
            unhexlify("zz")


def test_mixed_struct_round_trip():
    blob = encode_str("sg02") + encode_int(7) + encode_bytes(b"payload")
    reader = Reader(blob)
    assert reader.read_str() == "sg02"
    assert reader.read_int() == 7
    assert reader.read_bytes() == b"payload"
    reader.finish()
