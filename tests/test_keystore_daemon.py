"""Keystore serialization and the standalone-daemon deployment path."""

import asyncio
import json
import subprocess
import sys

import pytest

from repro.errors import SerializationError
from repro.schemes import generate_keys, get_scheme
from repro.schemes.keystore import (
    export_key_share,
    export_public_key,
    import_key_share,
    import_public_key,
    keystore_from_json,
    keystore_to_json,
    node_keystore,
)


class TestKeyShareSerialization:
    @pytest.mark.parametrize("scheme", ["sg02", "bls04", "kg20", "cks05", "bz03"])
    def test_round_trip(self, scheme):
        km = generate_keys(scheme, 1, 4)
        blob = export_key_share(scheme, km.share_for(2))
        restored_scheme, share = import_key_share(blob)
        assert restored_scheme == scheme
        assert share.id == 2
        assert share.value == km.share_for(2).value
        assert share.public.to_bytes() == km.public_key.to_bytes()

    def test_sh00_round_trip(self, keys_sh00):
        blob = export_key_share("sh00", keys_sh00.share_for(1))
        scheme, share = import_key_share(blob)
        assert scheme == "sh00"
        assert share.public.n == keys_sh00.public_key.n

    def test_restored_share_is_usable(self, keys_bls04):
        blob = export_key_share("bls04", keys_bls04.share_for(1))
        _, share = import_key_share(blob)
        scheme = get_scheme("bls04")
        partial = scheme.partial_sign(share, b"from restored share")
        scheme.verify_signature_share(keys_bls04.public_key, b"from restored share", partial)

    def test_public_key_round_trip(self, keys_sg02):
        blob = export_public_key("sg02", keys_sg02.public_key)
        scheme, public = import_public_key(blob)
        assert scheme == "sg02"
        # A client holding only the public part can encrypt.
        cipher = get_scheme("sg02")
        ct = cipher.encrypt(public, b"client-side", b"l")
        cipher.verify_ciphertext(keys_sg02.public_key, ct)

    def test_unknown_scheme_rejected(self, keys_bls04):
        from repro.errors import KeyManagementError

        with pytest.raises(KeyManagementError):
            export_key_share("nope", keys_bls04.share_for(1))

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            import_key_share(b"\x00\x01\x02")


class TestKeystoreDocument:
    def test_round_trip(self, keys_bls04, keys_cks05):
        doc = keystore_to_json(
            {
                "sig": ("bls04", keys_bls04.share_for(3)),
                "coin": ("cks05", keys_cks05.share_for(3)),
            }
        )
        restored = keystore_from_json(doc)
        assert set(restored) == {"sig", "coin"}
        assert restored["sig"][0] == "bls04"
        assert restored["sig"][1].id == 3

    def test_node_keystore_selects_right_share(self, keys_bls04):
        doc = node_keystore({"sig": keys_bls04}, node_id=2)
        restored = keystore_from_json(doc)
        assert restored["sig"][1].id == 2

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            keystore_from_json("{not json")

    def test_wrong_version_rejected(self):
        with pytest.raises(SerializationError):
            keystore_from_json(json.dumps({"version": 9, "keys": {}}))


@pytest.mark.integration
def test_daemon_deployment_end_to_end(tmp_path):
    """Deal keys with the CLI, start real daemon processes, sign over TCP."""
    deal = subprocess.run(
        [
            sys.executable,
            "tools/deal_keys.py",
            "--parties", "4",
            "--threshold", "1",
            "--schemes", "bls04,cks05",
            "--base-port", "19700",
            "--rpc-base-port", "19800",
            "--out", str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert deal.returncode == 0, deal.stderr
    assert (tmp_path / "public_keys.json").exists()

    daemons = []
    try:
        for node_id in range(1, 5):
            daemons.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.service.daemon",
                        "--config", str(tmp_path / f"node{node_id}" / "config.json"),
                        "--keystore", str(tmp_path / f"node{node_id}" / "keystore.json"),
                    ],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )

        async def drive():
            from repro.errors import RpcError
            from repro.service.client import ThetacryptClient

            client = ThetacryptClient(
                {i: ("127.0.0.1", 19800 + i) for i in range(1, 5)}
            )
            # Daemons need a moment to bind their sockets (longer when the
            # machine is busy running other suites).
            for node_id in range(1, 5):
                for attempt in range(150):
                    try:
                        await client.call(node_id, "ping", {})
                        break
                    except (OSError, RpcError):
                        await asyncio.sleep(0.2)
                else:
                    raise AssertionError(f"daemon {node_id} never came up")
            signature = await client.sign("bls04", b"daemon-signed")
            assert await client.verify_signature("bls04", b"daemon-signed", signature)
            coin = await client.flip_coin("cks05", b"daemon-coin")
            assert len(coin) == 32
            await client.close()

        asyncio.run(drive())
    finally:
        for daemon in daemons:
            daemon.terminate()
        for daemon in daemons:
            daemon.wait(timeout=10)
