"""BN254 tower fields: algebraic laws, Frobenius maps, square roots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError
from repro.groups.bn254.fp import (
    FROB12_C1,
    FROB6_C1,
    Fp2,
    Fp6,
    Fp12,
    P,
    XI,
)

fp_ints = st.integers(min_value=0, max_value=P - 1)


def rand_fp2(a, b):
    return Fp2(a, b)


def rand_fp6(vals):
    return Fp6(Fp2(vals[0], vals[1]), Fp2(vals[2], vals[3]), Fp2(vals[4], vals[5]))


def rand_fp12(vals):
    return Fp12(rand_fp6(vals[:6]), rand_fp6(vals[6:]))


fp6_strategy = st.lists(fp_ints, min_size=6, max_size=6).map(rand_fp6)
fp12_strategy = st.lists(fp_ints, min_size=12, max_size=12).map(rand_fp12)


class TestFp2:
    def test_u_squared_is_minus_one(self):
        u = Fp2(0, 1)
        assert u * u == Fp2(P - 1, 0)

    def test_mul_matches_schoolbook(self):
        a, b = Fp2(3, 5), Fp2(7, 11)
        # (3+5u)(7+11u) = 21 + 33u + 35u + 55u² = (21-55) + 68u.
        assert a * b == Fp2(21 - 55, 68)

    def test_square_matches_mul(self):
        a = Fp2(123456, 789012)
        assert a.square() == a * a

    @settings(max_examples=20)
    @given(fp_ints, fp_ints)
    def test_inverse(self, c0, c1):
        a = Fp2(c0, c1)
        if a.is_zero():
            return
        assert a * a.inverse() == Fp2.one()

    def test_zero_inverse_raises(self):
        with pytest.raises(CryptoError):
            Fp2.zero().inverse()

    def test_conjugate_is_frobenius(self):
        a = Fp2(17, 19)
        assert a.conjugate() == a**P

    def test_mul_xi(self):
        a = Fp2(2, 3)
        assert a.mul_xi() == a * XI

    def test_pow_negative(self):
        a = Fp2(5, 7)
        assert a**-2 == (a * a).inverse()

    def test_sqrt_round_trip(self):
        for c0, c1 in ((4, 0), (123, 456), (0, 1), (P - 2, 99)):
            a = Fp2(c0, c1).square()
            root = a.sqrt()
            assert root.square() == a

    def test_sqrt_of_zero(self):
        assert Fp2.zero().sqrt() == Fp2.zero()

    def test_non_square_detected(self):
        # ξ = 9 + u is the Fp6 non-residue, hence not a square in Fp2.
        assert not XI.is_square()
        with pytest.raises(CryptoError):
            XI.sqrt()

    def test_is_square_on_squares(self):
        assert Fp2(123, 456).square().is_square()


class TestFp6:
    def test_v_cubed_is_xi(self):
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        v3 = v * v * v
        assert v3 == Fp6(XI, Fp2.zero(), Fp2.zero())

    def test_mul_by_v_matches_mul(self):
        a = rand_fp6([1, 2, 3, 4, 5, 6])
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        assert a.mul_by_v() == a * v

    @settings(max_examples=10)
    @given(fp6_strategy)
    def test_inverse(self, a):
        if a.is_zero():
            return
        assert a * a.inverse() == Fp6.one()

    @settings(max_examples=10)
    @given(fp6_strategy, fp6_strategy)
    def test_commutative(self, a, b):
        assert a * b == b * a

    def test_distributive(self):
        a = rand_fp6([1, 2, 3, 4, 5, 6])
        b = rand_fp6([7, 8, 9, 10, 11, 12])
        c = rand_fp6([13, 14, 15, 16, 17, 18])
        assert a * (b + c) == a * b + a * c

    def test_frobenius_constants(self):
        assert FROB6_C1 == XI ** ((P - 1) // 3)

    def test_frobenius_is_p_power(self):
        # π(a) computed with γ-constants must equal a^p computed naively.
        a = rand_fp6([3, 1, 4, 1, 5, 9])
        v = Fp6(Fp2.zero(), Fp2.one(), Fp2.zero())
        naive = Fp12(a, Fp6.zero()) ** P  # embed in Fp12 and exponentiate
        assert Fp12(a.frobenius(), Fp6.zero()) == naive


class TestFp12:
    def test_w_squared_is_v(self):
        w = Fp12(Fp6.zero(), Fp6.one())
        v = Fp12(Fp6(Fp2.zero(), Fp2.one(), Fp2.zero()), Fp6.zero())
        assert w * w == v

    @settings(max_examples=5)
    @given(fp12_strategy)
    def test_inverse(self, a):
        if a.is_zero():
            return
        assert a * a.inverse() == Fp12.one()

    def test_square_matches_mul(self):
        a = rand_fp12(list(range(2, 14)))
        assert a.square() == a * a

    def test_frobenius_matches_p_power(self):
        a = rand_fp12([5, 4, 3, 2, 1, 9, 8, 7, 6, 5, 4, 3])
        assert a.frobenius() == a**P

    def test_frobenius2_matches(self):
        a = rand_fp12(list(range(1, 13)))
        assert a.frobenius2() == a.frobenius().frobenius()

    def test_frobenius_constant(self):
        assert FROB12_C1 == XI ** ((P - 1) // 6)

    def test_conjugate_inverts_cyclotomic(self):
        # After the easy part of the final exponentiation, elements lie in
        # the cyclotomic subgroup where conjugation equals inversion.
        a = rand_fp12(list(range(3, 15)))
        easy = a.conjugate() * a.inverse()
        easy = easy.frobenius2() * easy
        assert easy * easy.conjugate() == Fp12.one()

    def test_pow_laws(self):
        a = rand_fp12([2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5])
        assert a**5 == a * a * a * a * a
        assert a**0 == Fp12.one()

    def test_to_bytes_stable(self):
        a = rand_fp12(list(range(12)))
        assert len(a.to_bytes()) == 384
        assert a.to_bytes() == a.to_bytes()

    def test_from_int(self):
        assert Fp12.from_int(1) == Fp12.one()
        assert Fp12.from_int(0).is_zero()
