"""DES engine, latency model, cost model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.costs import calibrated_cost_model, measured_cost_model
from repro.sim.events import FifoCpu, Simulator
from repro.sim.latency import LatencyModel, Region, assign_regions, rtt


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.3, lambda: order.append("c"))
        sim.schedule(0.1, lambda: order.append("a"))
        sim.schedule(0.2, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == pytest.approx(0.3)

    def test_ties_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.1, lambda: order.append(1))
        sim.schedule(0.1, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(0.5, lambda: seen.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 1.5)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run(until=1.5)
        assert seen == [1]
        assert sim.pending == 1

    def test_event_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestFifoCpu:
    def test_sequential_execution(self):
        sim = Simulator()
        cpu = FifoCpu(sim)
        finishes = []
        cpu.submit(lambda: 1.0, lambda: finishes.append(sim.now))
        cpu.submit(lambda: 2.0, lambda: finishes.append(sim.now))
        sim.run()
        assert finishes == [1.0, 3.0]
        assert cpu.busy_time == pytest.approx(3.0)
        assert cpu.jobs_executed == 2

    def test_cost_fn_sees_latest_state(self):
        # The second job's cost is decided when it STARTS, after job one
        # mutated the flag — the residual-message drop pattern.
        sim = Simulator()
        cpu = FifoCpu(sim)
        state = {"finished": False}

        def finish_first():
            state["finished"] = True

        cpu.submit(lambda: 1.0, finish_first)
        costs = []

        def second_cost():
            cost = 0.1 if state["finished"] else 5.0
            costs.append(cost)
            return cost

        cpu.submit(second_cost, None)
        sim.run()
        assert costs == [0.1]

    def test_idle_cpu_starts_immediately(self):
        sim = Simulator()
        cpu = FifoCpu(sim)
        done = []
        sim.schedule(5.0, lambda: cpu.submit(lambda: 1.0, lambda: done.append(sim.now)))
        sim.run()
        assert done == [6.0]

    def test_negative_cost_rejected(self):
        sim = Simulator()
        cpu = FifoCpu(sim)
        # The CPU is idle, so the job starts (and its cost is checked) at
        # submission time.
        with pytest.raises(SimulationError):
            cpu.submit(lambda: -1.0, None)

    def test_utilization(self):
        sim = Simulator()
        cpu = FifoCpu(sim)
        cpu.submit(lambda: 2.0, None)
        sim.run()
        assert cpu.utilization(4.0) == pytest.approx(0.5)
        assert cpu.utilization(0.0) == 0.0


class TestLatencyModel:
    def test_rtt_symmetric(self):
        assert rtt(Region.FRA1, Region.SYD1) == rtt(Region.SYD1, Region.FRA1)

    def test_intra_region_is_local(self):
        assert rtt(Region.FRA1, Region.FRA1) == pytest.approx(0.00065)

    def test_table2_values(self):
        # ≈100ms and ≈43ms are the two representative global figures.
        assert rtt(Region.FRA1, Region.SYD1) == pytest.approx(0.100)
        assert rtt(Region.TOR1, Region.SFO3) == pytest.approx(0.043)

    def test_one_way_is_half_rtt_with_jitter(self):
        model = LatencyModel(jitter_fraction=0.05, seed=1)
        samples = [model.one_way(Region.FRA1, Region.SYD1) for _ in range(100)]
        base = 0.05
        assert all(0.7 * base < s < 1.4 * base for s in samples)
        assert len(set(samples)) > 1

    def test_zero_jitter_is_deterministic(self):
        model = LatencyModel(jitter_fraction=0.0)
        assert model.one_way(Region.FRA1, Region.TOR1) == pytest.approx(0.05)

    def test_average_rtt(self):
        model = LatencyModel()
        local = model.average_rtt([Region.FRA1, Region.FRA1])
        assert local == pytest.approx(0.00065)

    def test_assign_regions_round_robin(self):
        regions = assign_regions(6, [Region.FRA1, Region.SYD1])
        assert regions == [
            Region.FRA1, Region.SYD1, Region.FRA1,
            Region.SYD1, Region.FRA1, Region.SYD1,
        ]

    def test_assign_regions_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_regions(3, [])


class TestCostModel:
    def test_hardness_ordering(self):
        """The paper's central cost hierarchy: ECDH < pairings < RSA."""
        model = calibrated_cost_model()
        ecdh = model.for_scheme("sg02")
        pairing = model.for_scheme("bls04")
        rsa = model.for_scheme("sh00")
        assert ecdh.share_verify < pairing.share_verify < rsa.share_verify
        assert ecdh.share_gen < rsa.share_gen

    def test_cipher_request_includes_validity_check(self):
        model = calibrated_cost_model()
        # Ciphers verify the ciphertext on admission; signatures do not.
        assert (
            model.for_scheme("bz03").request_fixed
            > model.for_scheme("bls04").request_fixed
        )

    def test_rsa_bits_scaling(self):
        small = calibrated_cost_model(rsa_bits=1024).for_scheme("sh00")
        large = calibrated_cost_model(rsa_bits=4096).for_scheme("sh00")
        assert large.share_gen > 8 * small.share_gen  # ~cubic in modulus bits

    def test_message_cost_grows_with_parties_then_caps(self):
        costs = calibrated_cost_model().for_scheme("sg02")
        assert costs.message(7) < costs.message(31)
        assert costs.message(127) == costs.message(costs.per_party_cap)

    def test_combine_grows_with_quorum(self):
        costs = calibrated_cost_model().for_scheme("sg02")
        assert costs.combine(11) > costs.combine(3)

    def test_payload_effect_is_negligible(self):
        # Hybrid encryption: 4 KiB adds well under a microsecond.
        costs = calibrated_cost_model().for_scheme("sg02")
        assert costs.request(4096) - costs.request(256) < 1e-5

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            calibrated_cost_model().for_scheme("rot13")

    def test_kg20_has_interactive_costs(self):
        costs = calibrated_cost_model().for_scheme("kg20")
        assert costs.commit_gen > 0
        assert costs.round2_per_party > 0

    def test_schemes_listing(self):
        assert calibrated_cost_model().schemes() == [
            "bls04", "bz03", "cks05", "kg20", "sg02", "sh00",
        ]

    @pytest.mark.slow
    def test_measured_model_preserves_ordering(self):
        model = measured_cost_model()
        assert (
            model.for_scheme("sg02").share_verify
            < model.for_scheme("bls04").share_verify
        )
