"""Telemetry integration: the metrics RPC/HTTP endpoints of a live Θ-network
and trace-context propagation across a full multi-node request."""

import asyncio
from dataclasses import replace

import pytest

from repro.network.local import LocalHub
from repro.service.client import ThetacryptClient
from repro.service.config import make_local_configs
from repro.service.node import ThetacryptNode, derive_instance_id
from repro.telemetry import parse_text


async def _start_network(keys, key_id, *, metrics_port=None, parties=4):
    configs = make_local_configs(parties, 1, transport="local", rpc_base_port=0)
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        if metrics_port is not None:
            config = replace(config, metrics_port=metrics_port)
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            key_id, keys.scheme, keys.public_key, keys.share_for(config.node_id)
        )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    return nodes, client


async def _teardown(nodes, client):
    await client.close()
    for node in nodes:
        await node.stop()


def _metric(parsed, name, **labels):
    """Look a sample up by name and a *subset* of its labels."""
    wanted = set(labels.items())
    matches = [
        value
        for (sample_name, sample_labels), value in parsed.items()
        if sample_name == name and wanted <= set(sample_labels)
    ]
    assert matches, f"no sample {name} with labels {labels}"
    return sum(matches)


@pytest.mark.integration
class TestMetricsEndpoints:
    def test_multi_node_sign_exposes_metrics(self, keys_bls04):
        async def scenario():
            nodes, client = await _start_network(keys_bls04, "sig")
            try:
                signature = await client.sign("sig", b"observable")
                assert await client.verify_signature("sig", b"observable", signature)

                text = await client.metrics(1)
                parsed = parse_text(text)

                # Per-method RPC latency histogram with consistent count/sum.
                rpc_count = _metric(
                    parsed, "repro_rpc_latency_seconds_count", method="sign"
                )
                assert rpc_count >= 1
                assert _metric(
                    parsed, "repro_rpc_latency_seconds_sum", method="sign"
                ) > 0
                assert _metric(
                    parsed,
                    "repro_rpc_latency_seconds_bucket",
                    method="sign",
                    le="+Inf",
                ) == rpc_count

                # Per-round TRI durations for the instance.
                assert _metric(
                    parsed,
                    "repro_tri_round_seconds_count",
                    scheme="bls04",
                    round="0",
                ) >= 1
                assert _metric(
                    parsed, "repro_tri_messages_total", scheme="bls04",
                    outcome="accepted",
                ) >= 1
                assert _metric(
                    parsed, "repro_instances_total", scheme="bls04",
                    status="finished",
                ) >= 1

                # Network bytes/message counters per channel (local transport).
                for direction in ("sent", "received"):
                    assert _metric(
                        parsed,
                        "repro_network_bytes_total",
                        node="1",
                        channel="local",
                        direction=direction,
                    ) > 0
                    assert _metric(
                        parsed,
                        "repro_network_messages_total",
                        node="1",
                        channel="local",
                        direction=direction,
                    ) > 0
                assert _metric(
                    parsed, "repro_network_dispatch_total", node="1"
                ) >= 1

                # The PR-1 crypto cache counters, now registry gauges.
                assert ("repro_crypto_cache", (("cache", "fixed_base"), ("stat", "hits"))) in parsed
                assert ("repro_crypto_cache", (("cache", "lagrange"), ("stat", "hits"))) in parsed
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_metrics_isolated_per_node(self, keys_cks05):
        """Requests handled only at node 1 never appear in node 2's RPC
        metrics (each node owns a private registry)."""

        async def scenario():
            nodes, client = await _start_network(keys_cks05, "coin")
            try:
                await client.call(1, "list_keys", {})
                parsed_two = parse_text(await client.metrics(2))
                samples = [
                    labels
                    for (name, labels) in parsed_two
                    if name == "repro_rpc_requests_total"
                    and ("method", "list_keys") in labels
                ]
                assert samples == []
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_http_scrape_endpoint(self, keys_cks05):
        async def scenario():
            nodes, client = await _start_network(
                keys_cks05, "coin", metrics_port=0
            )
            try:
                await client.flip_coin("coin", b"scrape-me")
                host, port = nodes[0].metrics_address
                assert port != 0  # ephemeral port was bound

                async def get(path):
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    head, _, body = raw.partition(b"\r\n\r\n")
                    return head.decode("latin-1"), body.decode()

                head, body = await get("/metrics")
                assert head.startswith("HTTP/1.1 200 OK")
                assert "text/plain; version=0.0.4" in head
                parsed = parse_text(body)
                assert _metric(
                    parsed, "repro_rpc_latency_seconds_count", method="flip_coin"
                ) >= 1

                head, _ = await get("/nope")
                assert head.startswith("HTTP/1.1 404")
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_stats_percentiles_from_histogram(self, keys_cks05):
        async def scenario():
            nodes, client = await _start_network(keys_cks05, "coin")
            try:
                for i in range(4):
                    await client.flip_coin("coin", b"p%d" % i)
                stats = await client.node_stats(1)
                summary = stats["latency"]
                assert summary["count"] == 4
                for key in ("mean", "p50", "p95", "p99", "max"):
                    assert summary[key] > 0
                assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
                # Exact interpolated median over the four recorded samples.
                child = nodes[0].registry.get("repro_instance_seconds").labels("cks05")
                ordered = sorted(child.samples())
                assert summary["p50"] == pytest.approx(
                    (ordered[1] + ordered[2]) / 2
                )
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())


@pytest.mark.integration
class TestTracePropagation:
    def test_sign_trace_spans_rounds_and_hops(self, keys_bls04):
        async def scenario():
            nodes, client = await _start_network(keys_bls04, "sig")
            try:
                await client.sign("sig", b"traced")
                instance_id = derive_instance_id("sign", "sig", b"traced", b"")

                statuses = {
                    n: await client.status(instance_id, n)
                    for n in client.node_ids
                }
                trace_ids = {
                    n: status["trace"]["trace_id"]
                    for n, status in statuses.items()
                }
                assert len(set(trace_ids.values())) == len(trace_ids)

                for node_id, status in statuses.items():
                    trace = status["trace"]
                    span_names = [s["name"] for s in trace["spans"]]
                    assert "round-0" in span_names
                    # The RPC entry span wraps the executor's rounds.
                    assert "rpc:sign" in span_names or trace["name"].startswith(
                        "instance:"
                    )
                    hops = [
                        e for e in trace["events"] if e["name"] == "hop"
                    ]
                    assert hops, f"node {node_id} saw no hops"
                    peer_traces = {
                        t for n, t in trace_ids.items() if n != node_id
                    }
                    for hop in hops:
                        attrs = hop["attributes"]
                        assert attrs["outcome"] == "accepted"
                        # Every hop is attributed to the trace id the
                        # sending peer stamped into the envelope.
                        assert attrs["origin_trace"] in peer_traces
                        assert attrs["sender"] in client.node_ids
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())


@pytest.mark.integration
class TestServerShutdownSemantics:
    def test_stop_awaits_inflight_handlers(self, keys_cks05):
        """stop() must gather the cancelled handler tasks, not abandon them."""

        async def scenario():
            nodes, client = await _start_network(keys_cks05, "coin", parties=4)
            node = nodes[0]
            # Park a request that will never finish (unknown peers only get
            # one share) so a handler task is in flight during stop().
            asyncio.get_running_loop().create_task(
                client.call(1, "status", {"instance_id": "missing"})
            )
            await asyncio.sleep(0.05)
            await client.close()
            for n in nodes:
                await n.stop()
            assert not node.rpc._tasks  # gathered, not leaked

        asyncio.run(scenario())

    def test_abrupt_client_disconnect_closes_writer(self, keys_cks05):
        async def scenario():
            nodes, client = await _start_network(keys_cks05, "coin", parties=4)
            try:
                host, port = nodes[0].rpc_address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"id": 1, "method": "ping", "params": {}}\n')
                await writer.drain()
                await reader.readline()
                # Abort without a clean shutdown; the server must close its
                # side rather than leak the writer.
                writer.transport.abort()
                await asyncio.sleep(0.05)
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())
