"""KG20 (FROST): two-round threshold Schnorr signatures."""

import pytest

from repro.errors import InvalidShareError, InvalidSignatureError
from repro.schemes import kg20
from repro.schemes.kg20 import (
    Kg20Signature,
    Kg20SignatureScheme,
    Kg20SignatureShare,
    NonceCommitment,
)


@pytest.fixture(scope="module")
def scheme():
    return Kg20SignatureScheme()


@pytest.fixture(scope="module")
def material():
    return kg20.keygen(2, 5)


def run_signing(scheme, material, ids, msg):
    public, shares = material
    nonces = {i: scheme.commit(shares[i - 1]) for i in ids}
    commitments = [nonces[i][1] for i in ids]
    z_shares = [
        scheme.sign_round(shares[i - 1], msg, nonces[i][0], commitments)
        for i in ids
    ]
    return commitments, z_shares


class TestHappyPath:
    def test_two_round_flow(self, scheme, material):
        public, _ = material
        msg = b"frost message"
        commitments, z_shares = run_signing(scheme, material, [1, 3, 5], msg)
        for z in z_shares:
            scheme.verify_signature_share(public, msg, z, commitments)
        signature = scheme.combine(public, msg, z_shares, commitments)
        scheme.verify(public, msg, signature)

    def test_different_signing_groups(self, scheme, material):
        public, _ = material
        for ids in ([1, 2, 3], [2, 4, 5], [1, 2, 3, 4, 5]):
            commitments, z_shares = run_signing(scheme, material, ids, b"g")
            scheme.verify(
                public, b"g", scheme.combine(public, b"g", z_shares, commitments)
            )

    def test_signature_is_plain_schnorr(self, scheme, material):
        # g^z == R · Y^c — verifiable by any Schnorr verifier.
        public, _ = material
        msg = b"schnorr"
        commitments, z_shares = run_signing(scheme, material, [1, 2, 4], msg)
        signature = scheme.combine(public, msg, z_shares, commitments)
        group = public.group
        c = scheme.challenge(group, signature.r, public.y, msg)
        assert group.generator() ** signature.z == signature.r * public.y**c

    def test_precompute_batch(self, scheme, material):
        public, shares = material
        batch = scheme.precompute(shares[0], 5)
        assert len(batch) == 5
        nonces = {n.d for pair, n in [(p, p[0]) for p in batch]}
        assert len(nonces) == 5  # single-use nonces must be distinct

    def test_precomputed_signing(self, scheme, material):
        # Round 1 done in advance: sign with stored nonces + commitments.
        public, shares = material
        ids = [1, 2, 3]
        batches = {i: scheme.precompute(shares[i - 1], 2) for i in ids}
        for index in range(2):
            commitments = [batches[i][index][1] for i in ids]
            msg = b"batch msg %d" % index
            z_shares = [
                scheme.sign_round(
                    shares[i - 1], msg, batches[i][index][0], commitments
                )
                for i in ids
            ]
            scheme.verify(
                public, msg, scheme.combine(public, msg, z_shares, commitments)
            )

    def test_metadata(self, scheme):
        assert scheme.info.rounds == 2
        assert scheme.info.communication_complexity == "O(n^2)"


class TestNegativePaths:
    def test_partial_sign_is_blocked(self, scheme, material):
        _, shares = material
        with pytest.raises(InvalidSignatureError):
            scheme.partial_sign(shares[0], b"not like this")

    def test_forged_z_share_rejected(self, scheme, material):
        public, _ = material
        msg = b"forged"
        commitments, z_shares = run_signing(scheme, material, [1, 2, 3], msg)
        forged = Kg20SignatureShare(z_shares[0].id, (z_shares[0].z + 1))
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, msg, forged, commitments)

    def test_share_without_commitment_rejected(self, scheme, material):
        public, _ = material
        msg = b"missing"
        commitments, z_shares = run_signing(scheme, material, [1, 2, 3], msg)
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(
                public, msg, Kg20SignatureShare(4, 123), commitments
            )

    def test_combine_requires_whole_group(self, scheme, material):
        # The signing group is fixed a priori: missing members abort (§4.5).
        public, _ = material
        msg = b"incomplete"
        commitments, z_shares = run_signing(scheme, material, [1, 2, 3], msg)
        with pytest.raises(InvalidSignatureError):
            scheme.combine(public, msg, z_shares[:2], commitments)

    def test_combine_needs_commitments(self, scheme, material):
        public, _ = material
        _, z_shares = run_signing(scheme, material, [1, 2, 3], b"m")
        with pytest.raises(InvalidSignatureError):
            scheme.combine(public, b"m", z_shares, None)

    def test_signing_outside_group_rejected(self, scheme, material):
        public, shares = material
        ids = [1, 2, 3]
        nonces = {i: scheme.commit(shares[i - 1]) for i in ids}
        commitments = [nonces[i][1] for i in ids]
        with pytest.raises(InvalidShareError):
            scheme.sign_round(shares[4 - 1], b"m", nonces[1][0], commitments)

    def test_duplicate_commitments_rejected(self, scheme, material):
        public, shares = material
        _, commitment = scheme.commit(shares[0])
        with pytest.raises(InvalidShareError):
            scheme.group_commitment(
                public.group, b"m", [commitment, commitment]
            )

    def test_binding_factor_depends_on_message(self, scheme, material):
        public, shares = material
        _, commitment = scheme.commit(shares[0])
        rho_a = scheme.binding_factor(public.group, 1, b"a", [commitment])
        rho_b = scheme.binding_factor(public.group, 1, b"b", [commitment])
        assert rho_a != rho_b

    def test_nonce_reuse_across_messages_changes_signature(self, scheme, material):
        # Binding factors make the share message-specific even with the same
        # nonce commitment set.
        public, shares = material
        ids = [1, 2, 3]
        nonces = {i: scheme.commit(shares[i - 1]) for i in ids}
        commitments = [nonces[i][1] for i in ids]
        z_a = scheme.sign_round(shares[0], b"a", nonces[1][0], commitments)
        z_b = scheme.sign_round(shares[0], b"b", nonces[1][0], commitments)
        assert z_a.z != z_b.z

    def test_wrong_message_verification_fails(self, scheme, material):
        public, _ = material
        commitments, z_shares = run_signing(scheme, material, [1, 2, 3], b"x")
        signature = scheme.combine(public, b"x", z_shares, commitments)
        with pytest.raises(InvalidSignatureError):
            scheme.verify(public, b"y", signature)


class TestSerialization:
    def test_commitment_round_trip(self, scheme, material):
        public, shares = material
        _, commitment = scheme.commit(shares[0])
        restored = NonceCommitment.from_bytes(commitment.to_bytes(), public.group)
        assert restored == commitment

    def test_share_round_trip(self, scheme, material):
        public, _ = material
        commitments, z_shares = run_signing(scheme, material, [1, 2, 3], b"s")
        restored = Kg20SignatureShare.from_bytes(z_shares[0].to_bytes())
        scheme.verify_signature_share(public, b"s", restored, commitments)

    def test_signature_round_trip(self, scheme, material):
        public, _ = material
        commitments, z_shares = run_signing(scheme, material, [1, 2, 3], b"s")
        signature = scheme.combine(public, b"s", z_shares, commitments)
        restored = Kg20Signature.from_bytes(signature.to_bytes(), public.group)
        scheme.verify(public, b"s", restored)

    def test_public_key_round_trip(self, material):
        public, _ = material
        restored = kg20.Kg20PublicKey.from_bytes(public.to_bytes())
        assert restored.y == public.y
