"""Math backends: selection, error contracts, and cross-backend bit-identity.

The registry's whole contract is that backend choice is a performance
decision, never a correctness one — every backend must produce the same
bits as the pure-Python reference on every primitive and through every
scheme.  Tests parametrize over ``available_backends()``, so the gmpy2
column of the matrix runs automatically on hosts that have the library
and is skipped (not silently passed) elsewhere.
"""

import random
import secrets

import pytest

from repro.errors import ConfigurationError, CryptoError
from repro.mathutils import backends
from repro.mathutils.backends import (
    available_backends,
    backend_info,
    gmpy2_available,
    set_backend,
    use_backend,
)
from repro.mathutils.backends.batched import (
    FUSE_MIN_BITS,
    FUSE_MIN_EXPONENTS,
    BatchedBackend,
)
from repro.mathutils.modular import (
    batch_inverse,
    inverse_mod,
    jacobi_symbol,
    modexp,
    modexp_many,
    multiexp_mod,
    sqrt_mod_prime,
)

ALL_BACKENDS = available_backends()

P256 = 2**256 - 189  # 256-bit prime (below every fuse threshold)
M1279 = 2**1279 - 1  # Mersenne prime (above FUSE_MIN_BITS)
P_3MOD4 = 10007
P_1MOD4 = 10009


# ---------------------------------------------------------------------------
# Selection and error contracts
# ---------------------------------------------------------------------------


class TestSelection:
    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            set_backend("vedic")

    def test_python_and_batched_always_available(self):
        assert "python" in ALL_BACKENDS
        assert "batched" in ALL_BACKENDS

    @pytest.mark.skipif(gmpy2_available(), reason="gmpy2 present on this host")
    def test_explicit_gmpy2_fails_loud_when_absent(self):
        with pytest.raises(ConfigurationError):
            set_backend("gmpy2")

    @pytest.mark.skipif(gmpy2_available(), reason="gmpy2 present on this host")
    def test_auto_without_gmpy2_picks_batched(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        with use_backend("auto"):
            info = backend_info()
            assert info["name"] == "batched"
            assert info["selected_via"] == "auto"
            assert info["gmpy2_available"] is False

    def test_env_override_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "python")
        with use_backend("auto"):
            info = backend_info()
            assert info["name"] == "python"
            assert info["selected_via"] == "env"

    def test_bogus_env_value_ignored(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "abacus")
        with use_backend("auto"):
            assert backend_info()["name"] in ("batched", "gmpy2")

    def test_use_backend_restores_previous(self):
        before = backends.active_backend()
        with use_backend("python"):
            assert backends.active_backend().name == "python"
        assert backends.active_backend() is before

    def test_explicit_selection_reported(self):
        with use_backend("python"):
            assert backend_info()["selected_via"] == "explicit"

    def test_node_config_validates_backend_name(self):
        from repro.service.config import NodeConfig

        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=1, parties=4, threshold=1, math_backend="slide-rule")

    def test_node_config_accepts_all_names(self):
        from repro.service.config import NodeConfig

        for name in ("auto", "python", "batched", "gmpy2"):
            NodeConfig(node_id=1, parties=4, threshold=1, math_backend=name)


# ---------------------------------------------------------------------------
# Primitive-level equivalence matrix
# ---------------------------------------------------------------------------


def _reference(op, *args):
    with use_backend("python"):
        return op(*args)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestPrimitiveEquivalence:
    def test_modexp(self, backend):
        rng = random.Random(101)
        for modulus in (P256, M1279, 2**2048 - 1, 97):
            cases = [
                (rng.randrange(1, modulus), rng.randrange(0, modulus))
                for _ in range(4)
            ] + [(1, 0), (modulus - 1, 2)]
            for base, exponent in cases:
                expected = _reference(modexp, base, exponent, modulus)
                with use_backend(backend):
                    assert modexp(base, exponent, modulus) == expected

    def test_modexp_negative_exponent(self, backend):
        expected = _reference(modexp, 7, -3, P256)
        with use_backend(backend):
            assert modexp(7, -3, P256) == expected
        with use_backend(backend):
            with pytest.raises(CryptoError):
                modexp(6, -1, 9)  # not invertible

    def test_inverse_and_batch_inverse(self, backend):
        rng = random.Random(102)
        values = [rng.randrange(1, P256) for _ in range(9)] + [7, 7]
        expected_each = [_reference(inverse_mod, v, P256) for v in values]
        expected_batch = _reference(batch_inverse, values, P256)
        with use_backend(backend):
            assert [inverse_mod(v, P256) for v in values] == expected_each
            assert batch_inverse(values, P256) == expected_batch
            with pytest.raises(CryptoError):
                inverse_mod(6, 9)
            with pytest.raises(CryptoError):
                batch_inverse([5, 6, 7], 9)

    def test_modexp_many(self, backend):
        rng = random.Random(103)
        for modulus, count in ((P256, 8), (M1279, FUSE_MIN_EXPONENTS + 3)):
            base = rng.randrange(2, modulus)
            exps = [rng.randrange(0, modulus) for _ in range(count)] + [0, 1]
            expected = _reference(modexp_many, base, exps, modulus)
            with use_backend(backend):
                assert modexp_many(base, exps, modulus) == expected

    def test_multiexp(self, backend):
        rng = random.Random(104)
        for modulus in (P256, M1279):
            pairs = [
                (rng.randrange(2, modulus), rng.randrange(-modulus, modulus))
                for _ in range(5)
            ]
            expected = _reference(multiexp_mod, pairs, modulus)
            with use_backend(backend):
                assert multiexp_mod(pairs, modulus) == expected
        with use_backend(backend):
            assert multiexp_mod([], P256) == 1

    def test_jacobi(self, backend):
        cases = [(a, n) for n in (9, 15, P_3MOD4, 225) for a in (0, 1, 2, 7, n - 1)]
        expected = [_reference(jacobi_symbol, a, n) for a, n in cases]
        with use_backend(backend):
            assert [jacobi_symbol(a, n) for a, n in cases] == expected
            with pytest.raises(CryptoError):
                jacobi_symbol(3, 8)

    def test_sqrt_mod(self, backend):
        for p in (P_3MOD4, P_1MOD4, P256):
            for x in (2, 3, 1234):
                a = x * x % p
                expected = _reference(sqrt_mod_prime, a, p)
                with use_backend(backend):
                    root = sqrt_mod_prime(a, p)
                assert root == expected and root * root % p == a
        non_residue = next(
            a for a in range(2, 100) if pow(a, (P_3MOD4 - 1) // 2, P_3MOD4) != 1
        )
        with use_backend(backend):
            with pytest.raises(CryptoError):
                sqrt_mod_prime(non_residue, P_3MOD4)


class TestBatchedFusion:
    """The batched backend's fused paths engage exactly where advertised."""

    def test_small_modulus_delegates(self):
        # Below FUSE_MIN_BITS the answers must still match (delegation).
        b = BatchedBackend()
        assert P256.bit_length() < FUSE_MIN_BITS
        exps = list(range(20))
        assert b.modexp_many(3, exps, P256) == [pow(3, e, P256) for e in exps]

    def test_fused_path_engages_and_matches(self):
        b = BatchedBackend()
        rng = random.Random(105)
        exps = [rng.randrange(M1279) for _ in range(FUSE_MIN_EXPONENTS + 4)]
        assert b.modexp_many(5, exps, M1279) == [pow(5, e, M1279) for e in exps]

    def test_multiexp_negative_exponents_normalized(self):
        b = BatchedBackend()
        pairs = [(3, -(2**800)), (5, 2**900), (7, 0)]
        expected = 1
        for base, exp in pairs:
            expected = expected * pow(base, exp, M1279) % M1279
        assert b.multiexp(pairs, M1279) == expected


# ---------------------------------------------------------------------------
# Scheme-level bit-identity: full deterministic transcripts per backend
# ---------------------------------------------------------------------------


def _seed_secrets(monkeypatch, seed=20260809):
    """Replace the ``secrets`` entropy taps with a seeded stream.

    Every scheme draws randomness through ``secrets.randbelow`` /
    ``token_bytes`` / ``randbits`` (directly or via ``random_scalar``),
    so pinning those makes a whole keygen→sign/encrypt→combine transcript
    a deterministic function of the math backend alone.
    """
    rng = random.Random(seed)
    monkeypatch.setattr(secrets, "randbelow", rng.randrange)
    monkeypatch.setattr(secrets, "token_bytes", lambda n=32: rng.randbytes(n))
    monkeypatch.setattr(secrets, "randbits", rng.getrandbits)


def _sg02_transcript() -> bytes:
    from repro.schemes import sg02

    public, shares = sg02.keygen(2, 4)
    cipher = sg02.Sg02Cipher()
    ct = cipher.encrypt(public, b"backend matrix plaintext", b"label")
    dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 1, 3)]
    for d in dec:
        cipher.verify_decryption_share(public, ct, d)
    plaintext = cipher.combine(public, ct, dec)
    return b"".join(
        [public.to_bytes(), ct.to_bytes(), *[d.to_bytes() for d in dec], plaintext]
    )


def _bls04_transcript() -> bytes:
    from repro.schemes import bls04

    public, shares = bls04.keygen(2, 4)
    scheme = bls04.Bls04SignatureScheme()
    msg = b"backend matrix message"
    sig_shares = [scheme.partial_sign(shares[i], msg) for i in (0, 2, 3)]
    for s in sig_shares:
        scheme.verify_signature_share(public, msg, s)
    signature = scheme.combine(public, msg, sig_shares)
    scheme.verify(public, msg, signature)
    return b"".join(
        [public.to_bytes(), *[s.to_bytes() for s in sig_shares], signature.to_bytes()]
    )


def _cks05_transcript() -> bytes:
    from repro.schemes import cks05

    public, shares = cks05.keygen(2, 4)
    scheme = cks05.Cks05Coin()
    name = b"backend matrix coin"
    coin_shares = [scheme.create_coin_share(shares[i], name) for i in (1, 2, 3)]
    scheme.verify_coin_shares(public, name, coin_shares)
    value = scheme.combine(public, name, coin_shares)
    return b"".join(
        [public.to_bytes(), *[s.to_bytes() for s in coin_shares], value]
    )


def _kg20_transcript() -> bytes:
    from repro.schemes import kg20

    public, shares = kg20.keygen(2, 4)
    scheme = kg20.Kg20SignatureScheme()
    msg = b"backend matrix frost"
    ids = [1, 3, 4]
    nonces = {i: scheme.commit(shares[i - 1]) for i in ids}
    commitments = [nonces[i][1] for i in ids]
    z_shares = [
        scheme.sign_round(shares[i - 1], msg, nonces[i][0], commitments)
        for i in ids
    ]
    for z in z_shares:
        scheme.verify_signature_share(public, msg, z, commitments)
    signature = scheme.combine(public, msg, z_shares, commitments)
    scheme.verify(public, msg, signature)
    return b"".join(
        [
            public.to_bytes(),
            *[c.to_bytes() for c in commitments],
            *[z.to_bytes() for z in z_shares],
            signature.to_bytes(),
        ]
    )


_TRANSCRIPTS = {
    "sg02": _sg02_transcript,
    "bls04": _bls04_transcript,
    "cks05": _cks05_transcript,
    "kg20": _kg20_transcript,
}


@pytest.mark.parametrize("scheme_name", sorted(_TRANSCRIPTS))
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_scheme_transcript_bit_identical(monkeypatch, scheme_name, backend):
    transcript = _TRANSCRIPTS[scheme_name]
    _seed_secrets(monkeypatch)
    with use_backend("python"):
        reference = transcript()
    _seed_secrets(monkeypatch)
    with use_backend(backend):
        assert transcript() == reference


def test_sh00_verify_and_combine_consistent_across_backends(monkeypatch):
    """SH00's RSA hot path (the multiexp_mod call sites) is backend-stable.

    Keygen needs safe primes, so run it once and replay the signing flow
    under each backend against the same key material.
    """
    from repro.schemes import sh00

    _seed_secrets(monkeypatch)
    public, shares = sh00.keygen(1, 3, bits=512)
    scheme = sh00.Sh00SignatureScheme()
    msg = b"sh00 backend check"
    results = {}
    for backend in ALL_BACKENDS:
        _seed_secrets(monkeypatch)
        with use_backend(backend):
            sig_shares = [scheme.partial_sign(shares[i], msg) for i in (0, 2)]
            for s in sig_shares:
                scheme.verify_signature_share(public, msg, s)
            signature = scheme.combine(public, msg, sig_shares)
            scheme.verify(public, msg, signature)
            results[backend] = b"".join(
                [*[s.to_bytes() for s in sig_shares], signature.to_bytes()]
            )
    assert len(set(results.values())) == 1
