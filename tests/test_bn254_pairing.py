"""Optimal ate pairing: bilinearity, non-degeneracy, batch checks."""

import pytest

from repro.groups.bn254 import bn254_pairing, pairing, pairing_check
from repro.groups.bn254.fp import Fp12, P, R
from repro.groups.bn254.pairing import ATE_LOOP_COUNT, BN_X, _final_exponentiation, _miller_loop


@pytest.fixture(scope="module")
def ctx():
    bilinear = bn254_pairing()
    e = bilinear.pair(bilinear.g1.generator(), bilinear.g2.generator())
    return bilinear, e


class TestPairing:
    def test_loop_count(self):
        assert ATE_LOOP_COUNT == 6 * BN_X + 2

    def test_non_degenerate(self, ctx):
        _, e = ctx
        assert not e.is_one()
        assert not e.is_zero()

    def test_output_in_order_r_subgroup(self, ctx):
        _, e = ctx
        assert (e**R).is_one()

    def test_bilinear_in_g1(self, ctx):
        bilinear, e = ctx
        p2 = bilinear.g1.generator() ** 2
        assert bilinear.pair(p2, bilinear.g2.generator()) == e * e

    def test_bilinear_in_g2(self, ctx):
        bilinear, e = ctx
        q3 = bilinear.g2.generator() ** 3
        assert bilinear.pair(bilinear.g1.generator(), q3) == e**3

    def test_full_bilinearity(self, ctx):
        bilinear, e = ctx
        a, b = 1234567, 7654321
        lhs = bilinear.pair(
            bilinear.g1.generator() ** a, bilinear.g2.generator() ** b
        )
        assert lhs == e ** ((a * b) % R)

    def test_inverse_relation(self, ctx):
        bilinear, e = ctx
        inv = bilinear.pair(
            bilinear.g1.generator().inverse(), bilinear.g2.generator()
        )
        assert (e * inv).is_one()

    def test_identity_inputs(self, ctx):
        bilinear, _ = ctx
        assert bilinear.pair(
            bilinear.g1.identity(), bilinear.g2.generator()
        ).is_one()
        assert bilinear.pair(
            bilinear.g1.generator(), bilinear.g2.identity()
        ).is_one()

    def test_deterministic(self, ctx):
        bilinear, e = ctx
        assert bilinear.pair(bilinear.g1.generator(), bilinear.g2.generator()) == e


class TestPairingCheck:
    def test_cancelling_product(self, ctx):
        bilinear, _ = ctx
        p = bilinear.g1.generator() ** 5
        q = bilinear.g2.generator() ** 9
        assert pairing_check([(p, q), (p.inverse(), q)])

    def test_non_cancelling_product(self, ctx):
        bilinear, _ = ctx
        p = bilinear.g1.generator()
        q = bilinear.g2.generator()
        assert not pairing_check([(p, q), (p, q)])

    def test_empty_product_is_one(self):
        assert pairing_check([])

    def test_bls_style_equation(self, ctx):
        # e(σ, g2) == e(H, y) with σ = H^x, y = g2^x.
        bilinear, _ = ctx
        x = 0xDEADBEEF
        h = bilinear.g1.hash_to_element(b"msg")
        sigma = h**x
        y = bilinear.g2.generator() ** x
        assert pairing_check(
            [(sigma, bilinear.g2.generator()), (h.inverse(), y)]
        )


class TestFinalExponentiation:
    def test_matches_naive_exponent(self, ctx):
        """The DSD addition chain equals the plain (p¹²−1)/r power (slow)."""
        bilinear, _ = ctx
        f = _miller_loop(bilinear.g2.generator(), bilinear.g1.generator())
        fast = _final_exponentiation(f)
        naive = f ** ((P**12 - 1) // R)
        assert fast == naive

    def test_one_maps_to_one(self):
        assert _final_exponentiation(Fp12.one()).is_one()
