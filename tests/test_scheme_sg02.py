"""SG02 (TDH2): CCA threshold encryption end to end and under attack."""

import pytest

from repro.errors import (
    DuplicateShareError,
    InvalidCiphertextError,
    InvalidShareError,
    ThresholdNotReachedError,
)
from repro.schemes import sg02
from repro.schemes.sg02 import Sg02Cipher, Sg02Ciphertext, Sg02DecryptionShare


@pytest.fixture(scope="module")
def cipher():
    return Sg02Cipher()


@pytest.fixture(scope="module")
def material():
    return sg02.keygen(2, 5)


def _decrypt(cipher, public, shares, ciphertext):
    return cipher.combine(public, ciphertext, shares)


class TestHappyPath:
    def test_encrypt_decrypt(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"the plaintext", b"label")
        cipher.verify_ciphertext(public, ct)
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 2, 4)]
        for d in dec:
            cipher.verify_decryption_share(public, ct, d)
        assert _decrypt(cipher, public, dec, ct) == b"the plaintext"

    def test_any_quorum_works(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"msg", b"")
        for ids in ((0, 1, 2), (1, 3, 4), (0, 2, 3)):
            dec = [cipher.create_decryption_share(shares[i], ct) for i in ids]
            assert _decrypt(cipher, public, dec, ct) == b"msg"

    def test_extra_shares_are_fine(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"msg", b"")
        dec = [cipher.create_decryption_share(s, ct) for s in shares]
        assert _decrypt(cipher, public, dec, ct) == b"msg"

    def test_empty_plaintext(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"", b"l")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 1, 2)]
        assert _decrypt(cipher, public, dec, ct) == b""

    def test_large_plaintext(self, cipher, material):
        public, shares = material
        payload = bytes(range(256)) * 64  # 16 KiB
        ct = cipher.encrypt(public, payload, b"l")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 1, 2)]
        assert _decrypt(cipher, public, dec, ct) == payload

    def test_metadata(self, cipher):
        assert cipher.info.hardness == "DL"
        assert cipher.info.verification == "ZKP"
        assert cipher.info.rounds == 1


class TestCcaGuards:
    def test_tampered_u_rejected(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        group = public.group
        bad = Sg02Ciphertext(
            ct.label, ct.masked_key, ct.u * group.generator(), ct.u_bar,
            ct.e, ct.f, ct.nonce, ct.payload,
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.verify_ciphertext(public, bad)

    def test_tampered_masked_key_rejected(self, cipher, material):
        public, _ = material
        ct = cipher.encrypt(public, b"x", b"l")
        bad = Sg02Ciphertext(
            ct.label, bytes(32), ct.u, ct.u_bar, ct.e, ct.f, ct.nonce, ct.payload
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.verify_ciphertext(public, bad)

    def test_tampered_label_rejected(self, cipher, material):
        public, _ = material
        ct = cipher.encrypt(public, b"x", b"original")
        bad = Sg02Ciphertext(
            b"swapped", ct.masked_key, ct.u, ct.u_bar, ct.e, ct.f, ct.nonce, ct.payload
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.verify_ciphertext(public, bad)

    def test_nodes_refuse_invalid_ciphertext(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        bad = Sg02Ciphertext(
            ct.label, ct.masked_key, ct.u, ct.u_bar,
            (ct.e + 1) % public.group.order, ct.f, ct.nonce, ct.payload,
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.create_decryption_share(shares[0], bad)


class TestShareValidation:
    def test_forged_share_rejected(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        good = cipher.create_decryption_share(shares[0], ct)
        forged = Sg02DecryptionShare(
            good.id, good.u_i * public.group.generator(), good.proof
        )
        with pytest.raises(InvalidShareError):
            cipher.verify_decryption_share(public, ct, forged)

    def test_share_for_other_ciphertext_rejected(self, cipher, material):
        public, shares = material
        ct1 = cipher.encrypt(public, b"one", b"l")
        ct2 = cipher.encrypt(public, b"two", b"l")
        share = cipher.create_decryption_share(shares[0], ct1)
        with pytest.raises(InvalidShareError):
            cipher.verify_decryption_share(public, ct2, share)

    def test_share_id_out_of_range(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        good = cipher.create_decryption_share(shares[0], ct)
        bad = Sg02DecryptionShare(99, good.u_i, good.proof)
        with pytest.raises(InvalidShareError):
            cipher.verify_decryption_share(public, ct, bad)

    def test_combine_with_forged_share_fails_loudly(self, cipher, material):
        # Combining unverified garbage must not produce wrong plaintext: the
        # AEAD layer catches a bad symmetric key.
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 1)]
        forged = Sg02DecryptionShare(
            5, dec[0].u_i * public.group.generator(), dec[0].proof
        )
        with pytest.raises(InvalidShareError):
            cipher.combine(public, ct, [*dec, forged])

    def test_threshold_enforced(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 1)]
        with pytest.raises(ThresholdNotReachedError):
            cipher.combine(public, ct, dec)

    def test_duplicate_shares_rejected(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        d = cipher.create_decryption_share(shares[0], ct)
        with pytest.raises(DuplicateShareError):
            cipher.combine(public, ct, [d, d, d])


class TestSerialization:
    def test_ciphertext_round_trip(self, cipher, material):
        public, _ = material
        ct = cipher.encrypt(public, b"round trip", b"lbl")
        restored = Sg02Ciphertext.from_bytes(ct.to_bytes(), public.group)
        assert restored.to_bytes() == ct.to_bytes()
        cipher.verify_ciphertext(public, restored)

    def test_share_round_trip(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        share = cipher.create_decryption_share(shares[0], ct)
        restored = Sg02DecryptionShare.from_bytes(share.to_bytes(), public.group)
        cipher.verify_decryption_share(public, ct, restored)

    def test_public_key_round_trip(self, material):
        public, _ = material
        restored = sg02.Sg02PublicKey.from_bytes(public.to_bytes())
        assert restored.h == public.h
        assert restored.verification_keys == public.verification_keys
        assert restored.threshold == public.threshold


def test_randomized_encryption(cipher, material):
    public, _ = material
    a = cipher.encrypt(public, b"same", b"l")
    b = cipher.encrypt(public, b"same", b"l")
    assert a.to_bytes() != b.to_bytes()
