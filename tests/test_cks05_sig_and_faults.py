"""Extensions: signature-based coin (CKS05 construction 1), fault injection."""

import pytest

from repro.errors import ConfigurationError, InvalidShareError
from repro.schemes.cks05_sig import SignatureCoin
from repro.sim.cluster import SimulatedThetaNetwork
from repro.sim.deployments import Deployment
from repro.sim.latency import Region
from repro.sim.workload import Workload

TINY = Deployment("TINY-4-L", "tiny", 4, 1, (Region.FRA1,), 64)


class TestSignatureCoin:
    def test_rsa_coin_flow(self, keys_sh00):
        coin = SignatureCoin("sh00")
        name = b"sig-coin-1"
        shares = [coin.create_coin_share(keys_sh00.share_for(i), name) for i in (1, 3)]
        for share in shares:
            coin.verify_coin_share(keys_sh00.public_key, name, share)
        value = coin.combine(keys_sh00.public_key, name, shares)
        assert len(value) == 32

    def test_uniqueness_across_quorums(self, keys_sh00):
        coin = SignatureCoin("sh00")
        name = b"sig-coin-2"
        value_a = coin.combine(
            keys_sh00.public_key,
            name,
            [coin.create_coin_share(keys_sh00.share_for(i), name) for i in (1, 2)],
        )
        value_b = coin.combine(
            keys_sh00.public_key,
            name,
            [coin.create_coin_share(keys_sh00.share_for(i), name) for i in (3, 4)],
        )
        assert value_a == value_b

    def test_bls_variant(self, keys_bls04):
        coin = SignatureCoin("bls04")
        name = b"bls-coin"
        value_a = coin.combine(
            keys_bls04.public_key,
            name,
            [coin.create_coin_share(keys_bls04.share_for(i), name) for i in (1, 2)],
        )
        value_b = coin.combine(
            keys_bls04.public_key,
            name,
            [coin.create_coin_share(keys_bls04.share_for(i), name) for i in (2, 4)],
        )
        assert value_a == value_b

    def test_different_names_differ(self, keys_sh00):
        coin = SignatureCoin("sh00")
        values = set()
        for name in (b"a", b"b", b"c"):
            shares = [
                coin.create_coin_share(keys_sh00.share_for(i), name) for i in (1, 2)
            ]
            values.add(coin.combine(keys_sh00.public_key, name, shares))
        assert len(values) == 3

    def test_bad_share_rejected(self, keys_sh00):
        coin = SignatureCoin("sh00")
        share = coin.create_coin_share(keys_sh00.share_for(1), b"n1")
        with pytest.raises(InvalidShareError):
            coin.verify_coin_share(keys_sh00.public_key, b"n2", share)

    def test_schnorr_base_rejected(self):
        # FROST signatures are randomized, hence not unique, hence unusable.
        with pytest.raises(ValueError):
            SignatureCoin("kg20")

    def test_metadata(self):
        coin = SignatureCoin("sh00")
        assert coin.info.kind.value == "randomness"
        assert coin.info.hardness == "RSA"

    def test_coin_bit(self):
        assert SignatureCoin.coin_bit(b"\x03" + bytes(31)) == 1


class TestSimulatedCrashFaults:
    def test_noninteractive_tolerates_t_crashes(self):
        # n=4, t=1: one dead node, every live node still reaches quorum 2.
        net = SimulatedThetaNetwork(TINY, "sg02", crashed_nodes={4})
        result = net.run(Workload(rate=2, duration=2))
        live_samples = [s for s in result.samples if s is not None]
        assert all(s.node_id != 4 for s in live_samples)
        assert all(s.finished_at is not None for s in live_samples)
        assert len(result.request_first_finish) == 4  # all requests done

    def test_crash_beyond_threshold_stalls_everything(self):
        # 3 of 4 dead < quorum 2 live... 1 live node has only its own share.
        net = SimulatedThetaNetwork(TINY, "sg02", crashed_nodes={2, 3, 4})
        result = net.run(Workload(rate=2, duration=1))
        assert result.request_first_finish == {}
        assert all(s.finished_at is None for s in result.samples)

    def test_kg20_stalls_on_any_crash(self):
        # FROST's fixed signing group waits for all n members (§4.5); a
        # single crash blocks termination — the scheme is not robust.
        net = SimulatedThetaNetwork(TINY, "kg20", crashed_nodes={3})
        result = net.run(Workload(rate=1, duration=1))
        assert result.request_first_finish == {}

    def test_crash_reduces_load_on_survivors(self):
        healthy = SimulatedThetaNetwork(TINY, "bls04").run(Workload(rate=8, duration=2))
        degraded = SimulatedThetaNetwork(TINY, "bls04", crashed_nodes={4}).run(
            Workload(rate=8, duration=2)
        )
        # Fewer peers → fewer shares to verify → lower CPU utilization.
        assert degraded.cpu_utilization[1] < healthy.cpu_utilization[1]

    def test_invalid_crash_id_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedThetaNetwork(TINY, "sg02", crashed_nodes={9})
