"""Orchestration: key manager, instance records, executor, instance manager."""

import asyncio

import pytest

from repro.core.messages import Channel, ProtocolMessage
from repro.core.orchestration import (
    InstanceManager,
    InstanceStatus,
    KeyManager,
)
from repro.core.orchestration.instance import InstanceRecord
from repro.core.protocols import NonInteractiveProtocol, OperationRequest, make_operation
from repro.errors import KeyManagementError, ProtocolAbortedError, ProtocolError


class TestKeyManager:
    def test_register_and_get(self, keys_bls04):
        km = KeyManager()
        km.register("k1", "bls04", keys_bls04.public_key, keys_bls04.key_shares[0])
        entry = km.get("k1")
        assert entry.scheme == "bls04"
        assert entry.kind == "signature"
        assert "k1" in km and len(km) == 1

    def test_duplicate_rejected(self, keys_bls04):
        km = KeyManager()
        km.register("k1", "bls04", keys_bls04.public_key, keys_bls04.key_shares[0])
        with pytest.raises(KeyManagementError):
            km.register("k1", "bls04", keys_bls04.public_key, keys_bls04.key_shares[0])

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyManagementError):
            KeyManager().get("missing")

    def test_unknown_scheme_rejected(self, keys_bls04):
        with pytest.raises(KeyManagementError):
            KeyManager().register("k", "bogus", keys_bls04.public_key, None)

    def test_list_and_filter(self, keys_bls04, keys_cks05):
        km = KeyManager()
        km.register("sig", "bls04", keys_bls04.public_key, keys_bls04.key_shares[0])
        km.register("coin", "cks05", keys_cks05.public_key, keys_cks05.key_shares[0])
        assert [e.key_id for e in km.list_keys()] == ["coin", "sig"]
        assert [e.key_id for e in km.list_keys("bls04")] == ["sig"]
        assert km.first_for_scheme("cks05").key_id == "coin"

    def test_first_for_scheme_missing(self):
        with pytest.raises(KeyManagementError):
            KeyManager().first_for_scheme("bls04")

    def test_remove(self, keys_bls04):
        km = KeyManager()
        km.register("k1", "bls04", keys_bls04.public_key, keys_bls04.key_shares[0])
        km.remove("k1")
        assert "k1" not in km
        with pytest.raises(KeyManagementError):
            km.remove("k1")


class TestInstanceRecord:
    def test_lifecycle(self):
        record = InstanceRecord("i1", "bls04")
        assert record.status is InstanceStatus.CREATED
        record.mark_running()
        assert record.status is InstanceStatus.RUNNING
        record.mark_finished(b"result")
        assert record.status is InstanceStatus.FINISHED
        assert record.result == b"result"
        assert record.latency is not None and record.latency >= 0

    def test_double_termination_rejected(self):
        record = InstanceRecord("i1", "bls04")
        record.mark_finished(b"x")
        with pytest.raises(ProtocolError):
            record.mark_failed("nope")
        with pytest.raises(ProtocolError):
            record.mark_finished(b"y")

    def test_failed_has_error(self):
        record = InstanceRecord("i1", "bls04")
        record.mark_failed("boom")
        assert record.status is InstanceStatus.FAILED
        assert record.error == "boom"

    def test_latency_none_while_running(self):
        assert InstanceRecord("i1", "bls04").latency is None


def _protocols_for(keys, kind, data, instance_id="inst"):
    protocols = {}
    for share in keys.key_shares:
        operation = make_operation(
            keys.scheme, keys.public_key, share, OperationRequest(kind, data)
        )
        protocols[share.id] = NonInteractiveProtocol(instance_id, share.id, operation)
    return protocols


def _wire_managers(protocols, timeout=5.0):
    """Create one InstanceManager per party, all connected in memory."""
    managers = {}

    def make_send(sender_id):
        async def send(message: ProtocolMessage) -> None:
            for party_id, manager in managers.items():
                if party_id == sender_id:
                    continue
                if message.recipient and message.recipient != party_id:
                    continue
                await manager.handle_network_message(message)

        return send

    for party_id in protocols:
        managers[party_id] = InstanceManager(
            party_id, make_send(party_id), default_timeout=timeout
        )
    return managers


class TestInstanceManager:
    def test_full_run_across_managers(self, keys_cks05):
        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"orchestrated")
            managers = _wire_managers(protocols)
            for party_id, protocol in protocols.items():
                managers[party_id].start_instance(protocol, "cks05")
            results = await asyncio.gather(
                *(m.result("inst") for m in managers.values())
            )
            assert len(set(results)) == 1

        asyncio.run(scenario())

    def test_idempotent_start(self, keys_cks05):
        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"idem")
            managers = _wire_managers(protocols)
            manager = managers[1]
            record_a = manager.start_instance(protocols[1], "cks05")
            record_b = manager.start_instance(protocols[1], "cks05")
            assert record_a is record_b
            await manager.shutdown()

        asyncio.run(scenario())

    def test_backlog_buffers_early_messages(self, keys_cks05):
        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"early")
            managers = _wire_managers(protocols)
            # Parties 2..4 start first; their shares land in party 1's
            # backlog before party 1 creates the instance.
            for party_id in (2, 3, 4):
                managers[party_id].start_instance(protocols[party_id], "cks05")
            await asyncio.sleep(0.05)
            managers[1].start_instance(protocols[1], "cks05")
            result = await managers[1].result("inst")
            assert result
            record = managers[1].record("inst")
            assert record.status is InstanceStatus.FINISHED

        asyncio.run(scenario())

    def test_timeout_marks_failed(self, keys_cks05):
        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"timeout")
            manager = InstanceManager(
                1, lambda m: asyncio.sleep(0), default_timeout=0.1
            )

            async def send(message):
                return None

            manager._send = send
            manager.start_instance(protocols[1], "cks05")
            with pytest.raises(ProtocolAbortedError):
                await manager.result("inst")
            assert manager.record("inst").status is InstanceStatus.FAILED

        asyncio.run(scenario())

    def test_bad_share_is_dropped_and_protocol_still_finishes(self, keys_cks05):
        """Robustness: one byzantine share must not stall the quorum."""

        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"byzantine")
            managers = _wire_managers(protocols)
            # Party 1 receives a garbage share from "party 2" first.
            managers[1].start_instance(protocols[1], "cks05")
            garbage = ProtocolMessage("inst", 2, 0, Channel.P2P, b"\x00garbage")
            await managers[1].handle_network_message(garbage)
            for party_id in (2, 3, 4):
                managers[party_id].start_instance(protocols[party_id], "cks05")
            result = await managers[1].result("inst")
            assert result

        asyncio.run(scenario())

    def test_unknown_instance_result_rejected(self):
        async def scenario():
            async def send(message):
                return None

            manager = InstanceManager(1, send)
            with pytest.raises(ProtocolError):
                await manager.result("missing")
            with pytest.raises(ProtocolError):
                manager.record("missing")

        asyncio.run(scenario())

    def test_residual_messages_after_finish_are_dropped(self, keys_cks05):
        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"residual")
            managers = _wire_managers(protocols)
            for party_id, protocol in protocols.items():
                managers[party_id].start_instance(protocol, "cks05")
            await managers[1].result("inst")
            # A late share for the finished instance must be ignored.
            late = ProtocolMessage("inst", 4, 0, Channel.P2P, b"\x00late")
            await managers[1].handle_network_message(late)
            assert managers[1].record("inst").status is InstanceStatus.FINISHED

        asyncio.run(scenario())

    def test_active_count(self, keys_cks05):
        async def scenario():
            protocols = _protocols_for(keys_cks05, "coin", b"count")
            managers = _wire_managers(protocols)
            assert managers[1].active_count == 0
            for party_id, protocol in protocols.items():
                managers[party_id].start_instance(protocol, "cks05")
            await managers[1].result("inst")
            assert managers[1].active_count == 0

        asyncio.run(scenario())
