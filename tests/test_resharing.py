"""Resharing / proactive refresh: key preserved, old shares retired."""

import pytest

from repro.errors import ConfigurationError, InvalidShareError
from repro.groups import get_group
from repro.mathutils.lagrange import lagrange_coefficients_at_zero
from repro.schemes import cks05, generate_keys, get_scheme
from repro.schemes.resharing import (
    ReshareDeal,
    reshare_all,
    reshare_deal,
    reshare_finalize,
)
from repro.sharing.shamir import ShamirShare


@pytest.fixture()
def old_key():
    return generate_keys("cks05", 1, 4)


def _old_share_map(material):
    return {share.id: share.value for share in material.key_shares}


class TestResharing:
    def test_group_key_preserved(self, old_key):
        group = get_group("ed25519")
        results = reshare_all(_old_share_map(old_key), [1, 3], 2, 7, group)
        assert len(results) == 7
        for result in results:
            assert result.group_key == old_key.public_key.h

    def test_new_structure_is_functional(self, old_key):
        """Reshare 2-of-4 → 3-of-7, then flip a coin with the new quorum."""
        group = get_group("ed25519")
        results = reshare_all(_old_share_map(old_key), [2, 4], 2, 7, group)
        public = cks05.Cks05PublicKey(
            "ed25519", 2, 7, results[0].group_key, results[0].verification_keys
        )
        shares = [
            cks05.Cks05KeyShare(r.party_id, r.share_value, public) for r in results
        ]
        coin = get_scheme("cks05")
        name = b"post-reshare"
        cs = [coin.create_coin_share(shares[i], name) for i in (0, 3, 6)]
        for share in cs:
            coin.verify_coin_share(public, name, share)
        value = coin.combine(public, name, cs)

        # The coin from the OLD shares is identical: same secret, same key.
        old_coin_shares = [
            coin.create_coin_share(old_key.share_for(i), name) for i in (1, 2)
        ]
        assert coin.combine(old_key.public_key, name, old_coin_shares) == value

    def test_new_shares_interpolate_to_same_secret(self, old_key):
        group = get_group("ed25519")
        old = _old_share_map(old_key)
        # Recover x from the old sharing.
        lam = lagrange_coefficients_at_zero([1, 2], group.order)
        x = (old[1] * lam[1] + old[2] * lam[2]) % group.order
        results = reshare_all(old, [1, 2], 3, 8, group)
        ids = [2, 4, 6, 8]
        lam_new = lagrange_coefficients_at_zero(ids, group.order)
        x_again = (
            sum(results[i - 1].share_value * lam_new[i] for i in ids) % group.order
        )
        assert x_again == x

    def test_refresh_changes_shares_but_not_key(self, old_key):
        """Proactive refresh: same (t, n), brand-new shares."""
        group = get_group("ed25519")
        old = _old_share_map(old_key)
        results = reshare_all(old, [1, 2], 1, 4, group)
        assert results[0].group_key == old_key.public_key.h
        changed = [r for r in results if r.share_value != old[r.party_id]]
        assert len(changed) == 4  # new polynomial with overwhelming probability

    def test_old_and_new_shares_do_not_mix(self, old_key):
        # Shares from different sharings interpolate to garbage.
        group = get_group("ed25519")
        old = _old_share_map(old_key)
        results = reshare_all(old, [1, 2], 1, 4, group)
        lam = lagrange_coefficients_at_zero([1, 2], group.order)
        mixed = (old[1] * lam[1] + results[1].share_value * lam[2]) % group.order
        assert group.generator() ** mixed != old_key.public_key.h

    def test_tampered_deal_identifies_culprit(self, old_key):
        group = get_group("ed25519")
        old = _old_share_map(old_key)
        deals = {
            i: reshare_deal(i, old[i], [1, 2], 1, 4, group) for i in (1, 2)
        }
        bad = deals[2]
        corrupted = dict(bad.sub_shares)
        corrupted[3] = ShamirShare(3, (corrupted[3].value + 1) % group.order)
        deals[2] = ReshareDeal(2, bad.commitment, corrupted)
        with pytest.raises(InvalidShareError, match="dealer 2"):
            reshare_finalize(3, deals, [1, 2], 4, group)
        # Other new parties are unaffected.
        reshare_finalize(1, deals, [1, 2], 4, group)

    def test_missing_deal_rejected(self, old_key):
        group = get_group("ed25519")
        old = _old_share_map(old_key)
        deals = {1: reshare_deal(1, old[1], [1, 2], 1, 4, group)}
        with pytest.raises(ConfigurationError, match="missing"):
            reshare_finalize(1, deals, [1, 2], 4, group)

    def test_dealer_outside_quorum_rejected(self, old_key):
        group = get_group("ed25519")
        with pytest.raises(ConfigurationError):
            reshare_deal(4, 123, [1, 2], 1, 4, group)

    def test_invalid_new_structure_rejected(self, old_key):
        group = get_group("ed25519")
        with pytest.raises(ConfigurationError):
            reshare_deal(1, 123, [1, 2], 4, 4, group)

    def test_works_on_secp256k1(self):
        material = generate_keys("cks05", 1, 4, group_name="secp256k1")
        group = get_group("secp256k1")
        results = reshare_all(_old_share_map(material), [1, 4], 1, 5, group)
        assert all(r.group_key == material.public_key.h for r in results)
