"""ChaCha20-Poly1305: RFC 8439 vectors, tampering, property round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError
from repro.symmetric import (
    AeadError,
    ChaCha20Poly1305,
    chacha20_block,
    chacha20_encrypt,
    poly1305_mac,
)
from repro.symmetric.poly1305 import constant_time_equal

SUNSCREEN = (
    b"Ladies and Gentlemen of the class of '99: If I could offer you "
    b"only one tip for the future, sunscreen would be it."
)


class TestChaCha20Rfc8439:
    def test_block_function_vector(self):
        """RFC 8439 §2.3.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000090000004a00000000")
        block = chacha20_block(key, 1, nonce)
        assert block.hex() == (
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        )

    def test_encryption_vector(self):
        """RFC 8439 §2.4.2."""
        key = bytes(range(32))
        nonce = bytes.fromhex("000000000000004a00000000")
        ciphertext = chacha20_encrypt(key, 1, nonce, SUNSCREEN)
        assert ciphertext.hex().startswith(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        )

    def test_stream_is_involution(self):
        key = b"k" * 32
        nonce = b"n" * 12
        data = b"some plaintext of arbitrary length.."
        assert chacha20_encrypt(key, 7, nonce, chacha20_encrypt(key, 7, nonce, data)) == data

    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            chacha20_block(b"short", 0, bytes(12))

    def test_bad_nonce_length(self):
        with pytest.raises(CryptoError):
            chacha20_block(bytes(32), 0, b"short")

    def test_counter_advances_keystream(self):
        key, nonce = bytes(32), bytes(12)
        assert chacha20_block(key, 0, nonce) != chacha20_block(key, 1, nonce)


class TestPoly1305:
    def test_rfc8439_vector(self):
        """RFC 8439 §2.5.2."""
        key = bytes.fromhex(
            "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
        )
        tag = poly1305_mac(key, b"Cryptographic Forum Research Group")
        assert tag.hex() == "a8061dc1305136c6c22b8baf0c0127a9"

    def test_bad_key_length(self):
        with pytest.raises(CryptoError):
            poly1305_mac(b"short", b"data")

    def test_different_messages_differ(self):
        key = bytes(range(32))
        assert poly1305_mac(key, b"a") != poly1305_mac(key, b"b")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")


class TestAead:
    KEY = bytes.fromhex(
        "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
    )
    NONCE = bytes.fromhex("070000004041424344454647")
    AAD = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")

    def test_rfc8439_aead_vector(self):
        """RFC 8439 §2.8.2."""
        out = ChaCha20Poly1305(self.KEY).encrypt(self.NONCE, SUNSCREEN, self.AAD)
        assert out[-16:].hex() == "1ae10b594f09e26a7e902ecbd0600691"
        assert out[:16].hex() == "d31a8d34648e60db7b86afbc53ef7ec2"

    def test_round_trip(self):
        aead = ChaCha20Poly1305(self.KEY)
        out = aead.encrypt(self.NONCE, b"payload", b"aad")
        assert aead.decrypt(self.NONCE, out, b"aad") == b"payload"

    def test_tampered_ciphertext_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        out = bytearray(aead.encrypt(self.NONCE, b"payload"))
        out[0] ^= 1
        with pytest.raises(AeadError):
            aead.decrypt(self.NONCE, bytes(out))

    def test_tampered_tag_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        out = bytearray(aead.encrypt(self.NONCE, b"payload"))
        out[-1] ^= 1
        with pytest.raises(AeadError):
            aead.decrypt(self.NONCE, bytes(out))

    def test_wrong_aad_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        out = aead.encrypt(self.NONCE, b"payload", b"right")
        with pytest.raises(AeadError):
            aead.decrypt(self.NONCE, out, b"wrong")

    def test_wrong_nonce_rejected(self):
        aead = ChaCha20Poly1305(self.KEY)
        out = aead.encrypt(self.NONCE, b"payload")
        with pytest.raises(AeadError):
            aead.decrypt(bytes(12), out)

    def test_wrong_key_rejected(self):
        out = ChaCha20Poly1305(self.KEY).encrypt(self.NONCE, b"payload")
        with pytest.raises(AeadError):
            ChaCha20Poly1305(bytes(32)).decrypt(self.NONCE, out)

    def test_short_input_rejected(self):
        with pytest.raises(AeadError):
            ChaCha20Poly1305(self.KEY).decrypt(self.NONCE, b"short")

    def test_bad_key_size(self):
        with pytest.raises(AeadError):
            ChaCha20Poly1305(b"short")

    def test_bad_nonce_size(self):
        with pytest.raises(AeadError):
            ChaCha20Poly1305(self.KEY).encrypt(b"short", b"data")

    def test_empty_plaintext(self):
        aead = ChaCha20Poly1305(self.KEY)
        out = aead.encrypt(self.NONCE, b"")
        assert aead.decrypt(self.NONCE, out) == b""

    def test_generate_key_length_and_uniqueness(self):
        k1 = ChaCha20Poly1305.generate_key()
        k2 = ChaCha20Poly1305.generate_key()
        assert len(k1) == 32 and k1 != k2

    @settings(max_examples=25)
    @given(st.binary(max_size=2048), st.binary(max_size=64))
    def test_round_trip_property(self, plaintext, aad):
        aead = ChaCha20Poly1305(self.KEY)
        out = aead.encrypt(self.NONCE, plaintext, aad)
        assert aead.decrypt(self.NONCE, out, aad) == plaintext
