"""Text-mode plot rendering."""

from repro.sim.plotting import bar_chart, scatter_plot


class TestScatterPlot:
    def test_renders_all_series_markers(self):
        plot = scatter_plot(
            {"sg02": [(1, 0.01), (10, 0.02)], "sh00": [(1, 0.1), (2, 0.5)]}
        )
        assert "o=sg02" in plot
        assert "x=sh00" in plot
        assert plot.count("o") >= 2

    def test_empty_series(self):
        assert scatter_plot({}) == "(no data)"
        assert scatter_plot({"a": []}) == "(no data)"

    def test_non_positive_points_skipped(self):
        plot = scatter_plot({"a": [(0, 1), (1, 0), (2, 0.5)]})
        assert "(log scale" in plot

    def test_axis_ranges_in_output(self):
        plot = scatter_plot({"a": [(1, 0.001), (100, 1.0)]})
        assert "0.001" in plot and "100" in plot

    def test_monotone_series_slopes_upward(self):
        # Higher y must land on an earlier (upper) grid line.
        plot = scatter_plot({"a": [(1, 0.01), (100, 10.0)]}, width=20, height=10)
        lines = [l for l in plot.splitlines() if l.startswith("  |")]
        first_marker_rows = [i for i, l in enumerate(lines) if "o" in l]
        # The low-latency point is on a later row than the high-latency one.
        assert first_marker_rows[0] < first_marker_rows[-1]

    def test_single_point(self):
        assert "o" in scatter_plot({"only": [(5, 5)]})


class TestBarChart:
    def test_bars_proportional(self):
        chart = bar_chart({"fast": 10.0, "slow": 100.0})
        fast_line = next(l for l in chart.splitlines() if "fast" in l)
        slow_line = next(l for l in chart.splitlines() if "slow" in l)
        assert slow_line.count("█") > fast_line.count("█")

    def test_values_printed(self):
        chart = bar_chart({"x": 42.0}, unit="ms")
        assert "42.0 ms" in chart

    def test_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart
