"""Proactive refresh: the TRI protocol and the service RPC end to end."""

import asyncio

import pytest

from repro.errors import RpcError
from repro.groups import get_group
from repro.network.local import LocalHub
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs


async def _network(all_keys, parties=4, threshold=1):
    configs = make_local_configs(parties, threshold, transport="local", rpc_base_port=0)
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, km in all_keys.items():
            node.install_key(
                key_id, km.scheme, km.public_key, km.share_for(config.node_id)
            )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    return nodes, client


async def _teardown(nodes, client):
    await client.close()
    for node in nodes:
        await node.stop()


@pytest.mark.integration
class TestRefreshRpc:
    def test_refresh_preserves_key_and_function(self, keys_cks05):
        async def scenario():
            nodes, client = await _network({"coin": keys_cks05})
            try:
                value_before = await client.flip_coin("coin", b"epoch-test")
                old_shares = {
                    n.config.node_id: n.keys.get("coin").key_share.value
                    for n in nodes
                }
                group_key = await client.refresh_key("coin")
                assert group_key == keys_cks05.public_key.h.to_bytes()
                new_shares = {
                    n.config.node_id: n.keys.get("coin").key_share.value
                    for n in nodes
                }
                # Every share changed...
                assert all(
                    new_shares[i] != old_shares[i] for i in new_shares
                )
                # ...but the coin (a deterministic function of the secret)
                # is identical — same key, new shares.
                value_after = await client.flip_coin("coin", b"epoch-test")
                assert value_after == value_before
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_repeated_refreshes(self, keys_cks05):
        async def scenario():
            nodes, client = await _network({"coin": keys_cks05})
            try:
                for _ in range(3):
                    await client.refresh_key("coin")
                value = await client.flip_coin("coin", b"after-three")
                assert len(value) == 32
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_refresh_sg02_key_keeps_old_ciphertexts_decryptable(self, keys_sg02):
        async def scenario():
            nodes, client = await _network({"enc": keys_sg02})
            try:
                ciphertext = await client.encrypt("enc", b"pre-refresh secret", b"l")
                await client.refresh_key("enc")
                # Ciphertexts made before the refresh still decrypt: the
                # public key never changed.
                plaintext = await client.decrypt("enc", ciphertext, b"l")
                assert plaintext == b"pre-refresh secret"
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_refresh_kg20_key(self, keys_kg20):
        async def scenario():
            nodes, client = await _network({"wallet": keys_kg20})
            try:
                await client.refresh_key("wallet")
                signature = await client.sign("wallet", b"post-refresh")
                assert await client.verify_signature(
                    "wallet", b"post-refresh", signature
                )
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_refresh_rejects_non_dl_schemes(self, keys_bls04):
        async def scenario():
            nodes, client = await _network({"sig": keys_bls04})
            try:
                with pytest.raises(RpcError):
                    await client.refresh_key("sig")
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())


class TestReshareProtocolUnit:
    def test_non_dealers_send_nothing(self):
        from repro.core.protocols import ReshareProtocol

        group = get_group("ed25519")
        protocol = ReshareProtocol("ref", 4, 1, 4, group, current_share_value=5)
        assert not protocol.is_dealer
        assert protocol.do_round() == []

    def test_dealer_sends_directed_deals(self):
        from repro.core.protocols import ReshareProtocol

        group = get_group("ed25519")
        protocol = ReshareProtocol("ref", 1, 1, 4, group, current_share_value=5)
        assert protocol.is_dealer
        messages = protocol.do_round()
        assert sorted(m.recipient for m in messages) == [2, 3, 4]

    def test_deal_from_non_dealer_rejected(self):
        # A rogue non-dealer (party 3 in a t=1 refresh, dealers = {1, 2})
        # forges a deal; the receiver must reject it.
        from repro.core.protocols import ReshareProtocol
        from repro.errors import ProtocolError

        group = get_group("ed25519")
        receiver = ReshareProtocol("ref", 1, 1, 4, group, 5)
        receiver.do_round()
        rogue = ReshareProtocol("ref", 3, 1, 4, group, 7)
        rogue._dealers = (1, 3)  # pretends dealership it does not have
        forged = next(m for m in rogue.do_round() if m.recipient == 1)
        with pytest.raises(ProtocolError, match="not a refresh dealer"):
            receiver.update(forged)

    def test_mismatched_sender_rejected(self):
        from repro.core.messages import ProtocolMessage
        from repro.core.protocols import ReshareProtocol
        from repro.errors import ProtocolError

        group = get_group("ed25519")
        receiver = ReshareProtocol("ref", 3, 1, 4, group, 5)
        receiver.do_round()
        dealer = ReshareProtocol("ref", 1, 1, 4, group, 9)
        message = next(m for m in dealer.do_round() if m.recipient == 3)
        spoofed = ProtocolMessage(
            message.instance_id, 2, 0, message.channel, message.payload, 3
        )
        with pytest.raises(ProtocolError, match="sender"):
            receiver.update(spoofed)
