"""BZ03 (Baek–Zheng): pairing-based CCA threshold encryption."""

import pytest

from repro.errors import (
    InvalidCiphertextError,
    InvalidShareError,
    ThresholdNotReachedError,
)
from repro.schemes import bz03
from repro.schemes.bz03 import Bz03Cipher, Bz03Ciphertext, Bz03DecryptionShare


@pytest.fixture(scope="module")
def cipher():
    return Bz03Cipher()


@pytest.fixture(scope="module")
def material():
    return bz03.keygen(1, 4)


class TestHappyPath:
    def test_encrypt_decrypt(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"pairing secret", b"lbl")
        cipher.verify_ciphertext(public, ct)
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 2)]
        for d in dec:
            cipher.verify_decryption_share(public, ct, d)
        assert cipher.combine(public, ct, dec) == b"pairing secret"

    def test_different_quorum(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"q", b"")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (1, 3)]
        assert cipher.combine(public, ct, dec) == b"q"

    def test_shares_carry_no_proof(self, cipher, material):
        # The point of BZ03: pairings check validity, no ZKP attached.
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"")
        share = cipher.create_decryption_share(shares[0], ct)
        assert not hasattr(share, "proof")

    def test_metadata(self, cipher):
        assert cipher.info.verification == "Pairings"
        assert cipher.info.hardness == "DL"


class TestCcaGuards:
    def test_tampered_w_rejected(self, cipher, material):
        public, _ = material
        ct = cipher.encrypt(public, b"x", b"l")
        bad = Bz03Ciphertext(
            ct.label, ct.u, ct.masked_key,
            ct.w * public.pairing.g1.generator(), ct.nonce, ct.payload,
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.verify_ciphertext(public, bad)

    def test_tampered_masked_key_rejected(self, cipher, material):
        public, _ = material
        ct = cipher.encrypt(public, b"x", b"l")
        bad = Bz03Ciphertext(
            ct.label, ct.u, bytes(32), ct.w, ct.nonce, ct.payload
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.verify_ciphertext(public, bad)

    def test_nodes_refuse_invalid_ciphertext(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        bad = Bz03Ciphertext(
            ct.label, ct.u ** 2, ct.masked_key, ct.w, ct.nonce, ct.payload
        )
        with pytest.raises(InvalidCiphertextError):
            cipher.create_decryption_share(shares[0], bad)

    def test_label_binds_kem(self, cipher, material):
        # Same u but a different label changes ĥ = H1(label, u), so shares
        # from one label cannot decrypt another.
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"label-A")
        share = cipher.create_decryption_share(shares[0], ct)
        relabeled = Bz03Ciphertext(
            b"label-B", ct.u, ct.masked_key, ct.w, ct.nonce, ct.payload
        )
        with pytest.raises((InvalidShareError, InvalidCiphertextError)):
            cipher.verify_decryption_share(public, relabeled, share)


class TestShareValidation:
    def test_forged_share_rejected(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        good = cipher.create_decryption_share(shares[0], ct)
        forged = Bz03DecryptionShare(
            good.id, good.delta * public.pairing.g1.generator()
        )
        with pytest.raises(InvalidShareError):
            cipher.verify_decryption_share(public, ct, forged)

    def test_wrong_party_share_rejected(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        good = cipher.create_decryption_share(shares[0], ct)
        misattributed = Bz03DecryptionShare(2, good.delta)
        with pytest.raises(InvalidShareError):
            cipher.verify_decryption_share(public, ct, misattributed)

    def test_share_id_out_of_range(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        good = cipher.create_decryption_share(shares[0], ct)
        with pytest.raises(InvalidShareError):
            cipher.verify_decryption_share(
                public, ct, Bz03DecryptionShare(9, good.delta)
            )

    def test_threshold_enforced(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        dec = [cipher.create_decryption_share(shares[0], ct)]
        with pytest.raises(ThresholdNotReachedError):
            cipher.combine(public, ct, dec)

    def test_combine_with_forged_share_fails_loudly(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        good = cipher.create_decryption_share(shares[0], ct)
        forged = Bz03DecryptionShare(
            2, good.delta * public.pairing.g1.generator()
        )
        with pytest.raises(InvalidShareError):
            cipher.combine(public, ct, [good, forged])


class TestSerialization:
    def test_ciphertext_round_trip(self, cipher, material):
        public, _ = material
        ct = cipher.encrypt(public, b"round trip", b"lbl")
        restored = Bz03Ciphertext.from_bytes(ct.to_bytes())
        cipher.verify_ciphertext(public, restored)
        assert restored.to_bytes() == ct.to_bytes()

    def test_share_round_trip(self, cipher, material):
        public, shares = material
        ct = cipher.encrypt(public, b"x", b"l")
        share = cipher.create_decryption_share(shares[0], ct)
        restored = Bz03DecryptionShare.from_bytes(share.to_bytes())
        cipher.verify_decryption_share(public, ct, restored)

    def test_public_key_round_trip(self, material):
        public, _ = material
        restored = bz03.Bz03PublicKey.from_bytes(public.to_bytes())
        assert restored.y == public.y
        assert restored.verification_keys == public.verification_keys
