"""Durability subsystem tests: atomic snapshots, WAL crash semantics,
keystore/result persistence across simulated ``kill -9``, overload
shedding, and client-side retry.

The WAL cases pin down the crash-safety contract of docs/robustness.md:
a torn *final* record (crash mid-append) is tolerated and truncated away,
while a CRC-failing record anywhere — or a truncated segment with later
segments after it — is corruption and must raise, never be skipped.
"""

import asyncio
import json

import pytest

from repro.errors import (
    KeyManagementError,
    RpcError,
    StorageError,
    WalCorruptionError,
)
from repro.schemes.keystore import export_key_share
from repro.serialization import hexlify
from repro.storage import (
    DurableKeystore,
    DurableResultCache,
    WriteAheadLog,
    atomic_write_bytes,
    pack_record,
    read_versioned,
    unpack_record,
    write_versioned,
)


class TestAtomicContainer:
    def test_pack_unpack_round_trip(self):
        version, payload = unpack_record(pack_record(b"hello", version=7))
        assert (version, payload) == (7, b"hello")

    def test_bad_magic_rejected(self):
        data = bytearray(pack_record(b"hello"))
        data[:4] = b"XXXX"
        with pytest.raises(StorageError, match="bad magic"):
            unpack_record(bytes(data))

    def test_truncated_container_rejected(self):
        data = pack_record(b"hello world")
        with pytest.raises(StorageError, match="truncated"):
            unpack_record(data[:-3])
        with pytest.raises(StorageError, match="truncated"):
            unpack_record(data[:6])

    def test_crc_mismatch_rejected(self):
        data = bytearray(pack_record(b"hello world"))
        data[-1] ^= 0xFF  # flip one payload byte
        with pytest.raises(StorageError, match="CRC32"):
            unpack_record(bytes(data))

    def test_versioned_file_round_trip(self, tmp_path):
        path = tmp_path / "snap.bin"
        write_versioned(path, b"state", version=3)
        assert read_versioned(path) == (3, b"state")
        with pytest.raises(StorageError, match="version"):
            read_versioned(path, expected_version=4)

    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "file.bin"
        atomic_write_bytes(path, b"one")
        atomic_write_bytes(path, b"two")
        assert path.read_bytes() == b"two"
        assert [p.name for p in tmp_path.iterdir()] == ["file.bin"]


class TestWriteAheadLog:
    def test_empty_journal_replays_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        assert list(wal.replay()) == []
        wal.close()

    def test_append_replay_round_trip_across_reopen(self, tmp_path):
        records = [{"event": "submitted", "n": i} for i in range(20)]
        wal = WriteAheadLog(tmp_path / "wal")
        for record in records:
            wal.append(record)
        assert list(wal.replay()) == records
        wal.close()
        # A fresh handle over the same directory sees the same history.
        assert list(WriteAheadLog(tmp_path / "wal").replay()) == records

    def test_segments_roll_and_replay_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=64)
        records = [{"n": i, "pad": "x" * 20} for i in range(12)]
        for record in records:
            wal.append(record)
        assert len(wal.segments()) > 1
        assert list(wal.replay()) == records
        wal.close()

    def test_torn_final_record_tolerated_and_repaired(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        records = [{"n": i} for i in range(5)]
        for record in records:
            wal.append(record)
        wal.close()
        # Crash mid-append: the tail of the last segment is cut short.
        segment = wal.segments()[-1]
        data = segment.read_bytes()
        segment.write_bytes(data[:-4])
        # Replay stops silently at the tear ...
        assert list(WriteAheadLog(tmp_path / "wal").replay()) == records[:-1]
        # ... and the next append first truncates the torn tail away.
        wal2 = WriteAheadLog(tmp_path / "wal")
        wal2.append({"n": 99})
        assert list(wal2.replay()) == records[:-1] + [{"n": 99}]
        wal2.close()

    def test_partial_header_at_tail_is_torn(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"n": 0})
        wal.close()
        segment = wal.segments()[-1]
        segment.write_bytes(segment.read_bytes() + b"\x00\x00\x01")
        assert list(WriteAheadLog(tmp_path / "wal").replay()) == [{"n": 0}]

    def test_corrupt_crc_mid_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        for i in range(5):
            wal.append({"n": i})
        wal.close()
        segment = wal.segments()[-1]
        data = bytearray(segment.read_bytes())
        data[10] ^= 0xFF  # damage the first record's payload, CRC intact
        segment.write_bytes(bytes(data))
        with pytest.raises(WalCorruptionError, match="corrupt record"):
            list(WriteAheadLog(tmp_path / "wal").replay())

    def test_torn_non_final_segment_is_corruption(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=64)
        for i in range(12):
            wal.append({"n": i, "pad": "x" * 20})
        wal.close()
        segments = wal.segments()
        assert len(segments) > 1
        first = segments[0]
        first.write_bytes(first.read_bytes()[:-4])
        with pytest.raises(WalCorruptionError, match="later segments"):
            list(WriteAheadLog(tmp_path / "wal").replay())

    def test_reset_drops_history(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"n": 1})
        wal.reset()
        assert list(wal.replay()) == []
        wal.append({"n": 2})
        assert list(wal.replay()) == [{"n": 2}]
        wal.close()


class TestDurableKeystore:
    def test_round_trip_across_simulated_kill(self, tmp_path, keys_bls04):
        path = tmp_path / "keystore.bin"
        store = DurableKeystore(path)
        share = keys_bls04.share_for(2)
        store.put("bls04", "bls04", share)
        assert "bls04" in store and len(store) == 1
        # kill -9: no close/flush call — a fresh instance over the same
        # path must see the complete snapshot (every put is atomic).
        revived = DurableKeystore(path)
        items = revived.items()
        assert len(items) == 1
        key_id, scheme, loaded = items[0]
        assert (key_id, scheme) == ("bls04", "bls04")
        assert export_key_share("bls04", loaded) == export_key_share(
            "bls04", share
        )

    def test_remove_persists(self, tmp_path, keys_bls04):
        path = tmp_path / "keystore.bin"
        store = DurableKeystore(path)
        store.put("a", "bls04", keys_bls04.share_for(1))
        store.put("b", "bls04", keys_bls04.share_for(1))
        store.remove("a")
        assert [key_id for key_id, _, _ in DurableKeystore(path).items()] == ["b"]
        with pytest.raises(KeyManagementError):
            store.remove("a")

    def test_corrupt_snapshot_rejected(self, tmp_path, keys_bls04):
        path = tmp_path / "keystore.bin"
        store = DurableKeystore(path)
        store.put("bls04", "bls04", keys_bls04.share_for(1))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            DurableKeystore(path)


class TestDurableResultCache:
    def test_persistence_across_reopen(self, tmp_path):
        cache = DurableResultCache(tmp_path / "results")
        cache.put("sign-aa", "bls04", b"\x01\x02")
        cache.put("coin-bb", "cks05", b"\x03")
        revived = DurableResultCache(tmp_path / "results")
        assert revived.get("sign-aa") == ("bls04", b"\x01\x02")
        assert revived.get("coin-bb") == ("cks05", b"\x03")
        assert "sign-aa" in revived and len(revived) == 2
        cache.close()
        revived.close()

    def test_trim_keeps_newest(self, tmp_path):
        cache = DurableResultCache(tmp_path / "results", max_entries=3)
        for i in range(6):
            cache.put(f"id-{i}", "bls04", bytes([i]))
        assert len(cache) == 3
        assert cache.get("id-2") is None
        assert cache.get("id-5") == ("bls04", bytes([5]))
        cache.close()

    def test_compaction_bounds_the_log(self, tmp_path):
        directory = tmp_path / "results"
        cache = DurableResultCache(directory, max_entries=4)
        for i in range(12):  # 12 appended records, 4 live entries
            cache.put(f"id-{i}", "bls04", bytes([i]))
        cache.close()
        # Reopening sees 12 > 2 * 4 replayed records and compacts.
        revived = DurableResultCache(directory, max_entries=4)
        assert len(revived) == 4
        assert revived.get("id-11") == ("bls04", bytes([11]))
        revived.close()
        assert len(list(WriteAheadLog(directory).replay())) == 4


@pytest.mark.integration
class TestOverloadShedding:
    def test_excess_submissions_rejected_with_hint(self, all_keys):
        from dataclasses import replace

        from repro.network.local import LocalHub
        from repro.service.config import make_local_configs
        from repro.service.node import ThetacryptNode

        async def scenario():
            # A lone node (its peers never start): every submission stays
            # pending, so the third one must be shed.
            config = replace(
                make_local_configs(4, 1, transport="local", rpc_base_port=0)[0],
                max_pending_instances=2,
                overload_retry_after=0.125,
                instance_timeout=30.0,
            )
            hub = LocalHub()
            node = ThetacryptNode(config, transport=hub.endpoint(1))
            km = all_keys["bls04"]
            node.install_key("bls04", km.scheme, km.public_key, km.share_for(1))
            await node.start()
            try:
                node.submit_request("sign", "bls04", b"pending-1")
                node.submit_request("sign", "bls04", b"pending-2")
                with pytest.raises(RpcError) as err:
                    node.submit_request("sign", "bls04", b"one too many")
                assert err.value.reason == "overloaded"
                assert err.value.retry_after == 0.125
                rejected = node.registry.get("repro_instance_rejected_total")
                assert rejected.labels("overloaded").value == 1
                # Duplicate of an *admitted* request is not shed: it maps
                # onto the existing instance.
                node.submit_request("sign", "bls04", b"pending-1")
                assert rejected.labels("overloaded").value == 1
            finally:
                await node.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestClientRetry:
    def test_retries_after_overloaded_then_succeeds(self):
        from repro.service.client import ThetacryptClient

        async def scenario():
            calls = {"count": 0}

            async def on_client(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        writer.close()
                        return
                    request = json.loads(line)
                    calls["count"] += 1
                    if calls["count"] == 1:
                        response = {
                            "id": request["id"],
                            "error": "node overloaded",
                            "error_reason": "overloaded",
                            "retry_after": 0.01,
                        }
                    else:
                        response = {
                            "id": request["id"],
                            "result": {"result": hexlify(b"ok")},
                        }
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()

            server = await asyncio.start_server(on_client, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ThetacryptClient(
                {1: ("127.0.0.1", port)}, retry_base=0.005, retry_cap=0.02
            )
            try:
                result = await client.call(1, "sign", {"key_id": "k", "data": ""})
                assert result == {"result": hexlify(b"ok")}
                assert calls["count"] == 2
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_non_idempotent_methods_never_retried(self):
        from repro.service.client import ThetacryptClient

        async def scenario():
            calls = {"count": 0}

            async def on_client(reader, writer):
                while True:
                    line = await reader.readline()
                    if not line:
                        writer.close()
                        return
                    request = json.loads(line)
                    calls["count"] += 1
                    writer.write(
                        json.dumps(
                            {
                                "id": request["id"],
                                "error": "node overloaded",
                                "error_reason": "overloaded",
                                "retry_after": 0.01,
                            }
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()

            server = await asyncio.start_server(on_client, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ThetacryptClient({1: ("127.0.0.1", port)})
            try:
                with pytest.raises(RpcError):
                    await client.call(1, "run_dkg", {"key_id": "k"})
                assert calls["count"] == 1
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
