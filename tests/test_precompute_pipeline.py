"""The precomputed-share pipeline: pools, journal, TRI hooks, service wiring.

The pipeline (docs/performance.md, "Precompute pipeline") hides threshold
latency for *announced* requests: every node stages its own share — and,
eagerly, the whole protocol instance — ahead of demand, keyed by the same
deterministic instance id the real request derives.  These tests pin the
three load-bearing invariants:

* **bit identity** — a pooled share is byte-identical to the share the
  on-demand path would have produced (deterministic schemes), so pooling
  can never change a protocol outcome;
* **consume-once** — a staged entry is served at most once, ever, across
  crash-and-restart (the consumption is journaled before the payload is
  handed out);
* **graceful exhaustion** — unannounced requests and drained pools fall
  back to the on-demand path, visibly (``source="inline"`` counters).
"""

import asyncio

import pytest

from repro.core.orchestration.precompute import (
    PrecomputeConfig,
    PrecomputeJob,
    PrecomputeService,
    derive_instance_id,
)
from repro.core.protocols import (
    FrostPrecomputeProtocol,
    FrostProtocol,
    NonInteractiveProtocol,
    OperationRequest,
    make_operation,
)
from repro.core.protocols.frost import FrostPrecomputationPool
from repro.errors import ConfigurationError, ProtocolError, RpcError
from repro.network.local import LocalHub
from repro.schemes.kg20 import Kg20SignatureScheme
from repro.serialization import hexlify
from repro.service.client import ThetacryptClient
from repro.service.config import NodeConfig, make_local_configs
from repro.service.node import ThetacryptNode
from repro.storage.pool_journal import PoolJournal
from repro.telemetry import MetricRegistry


def _operation(km, party_id, kind, data, label=b""):
    return make_operation(
        km.scheme,
        km.public_key,
        km.share_for(party_id),
        OperationRequest(kind, data, label),
    )


def _job(km, party_id, kind, data, label=b"", key_id="k"):
    return PrecomputeJob(
        instance_id=derive_instance_id(kind, key_id, data, label),
        key_id=key_id,
        kind=kind,
        data=data,
        label=label,
        operation_factory=lambda: _operation(km, party_id, kind, data, label),
        scheme=km.scheme,
    )


# ---------------------------------------------------------------------------
# Pool journal: durable consume-once ledger
# ---------------------------------------------------------------------------


class TestPoolJournal:
    def test_stage_then_replay_restores_unconsumed(self, tmp_path):
        journal = PoolJournal(tmp_path / "pool")
        seq_a = journal.stage("ins-a", "k", "decrypt", b"share-a")
        seq_b = journal.stage("ins-b", "k", "decrypt", b"share-b")
        journal.stage("ins-c", "k", "decrypt", b"share-c")
        journal.consume(seq_b)
        journal.close()

        reopened = PoolJournal(tmp_path / "pool")
        survivors = reopened.survivors
        assert [s.instance_id for s in survivors] == ["ins-a", "ins-c"]
        assert survivors[0].payload == b"share-a"
        assert survivors[0].seq == seq_a
        reopened.close()

    def test_consumed_entry_never_comes_back(self, tmp_path):
        journal = PoolJournal(tmp_path / "pool")
        seq = journal.stage("ins", "k", "sign", b"payload")
        journal.consume(seq)
        journal.close()
        # Two process lives later the entry must still be gone (the reload
        # compacts, so the second reopen reads the rewritten log).
        for _ in range(2):
            reopened = PoolJournal(tmp_path / "pool")
            assert reopened.survivors == []
            reopened.close()

    def test_volatile_entries_are_not_restored(self, tmp_path):
        journal = PoolJournal(tmp_path / "pool")
        journal.stage("nonce-batch", "k", "kg20-nonce", None)
        journal.stage("ins", "k", "decrypt", b"durable")
        journal.close()
        reopened = PoolJournal(tmp_path / "pool")
        assert [s.instance_id for s in reopened.survivors] == ["ins"]
        reopened.close()

    def test_sequence_numbers_stay_monotonic_across_restart(self, tmp_path):
        journal = PoolJournal(tmp_path / "pool")
        first = journal.stage("a", "k", "decrypt", b"a")
        journal.close()
        reopened = PoolJournal(tmp_path / "pool")
        second = reopened.stage("b", "k", "decrypt", b"b")
        assert second > first
        # Consuming the restored entry by its original seq still works.
        reopened.consume(first)
        reopened.close()
        final = PoolJournal(tmp_path / "pool")
        assert [s.instance_id for s in final.survivors] == ["b"]
        final.close()


# ---------------------------------------------------------------------------
# TRI precompute hooks
# ---------------------------------------------------------------------------


class TestTriHooks:
    def test_default_hooks_decline(self, keys_kg20):
        """Protocols without precompute support inherit safe defaults."""
        protocol = FrostPrecomputeProtocol(
            "pre-x", keys_kg20.share_for(1), 2, FrostPrecomputationPool()
        )
        assert protocol.supports_precompute is False
        assert protocol.consume_precomputed() is None
        with pytest.raises(ProtocolError):
            protocol.stage_precomputed(b"anything")

    def test_noninteractive_stage_and_consume_once(self, keys_cks05):
        op = _operation(keys_cks05, 1, "coin", b"hook probe")
        payload = _operation(keys_cks05, 1, "coin", b"hook probe").create_own_share()
        protocol = NonInteractiveProtocol("coin-x", 1, op)
        assert protocol.supports_precompute is True
        protocol.stage_precomputed(payload)
        first = protocol.consume_precomputed()
        assert first is not None and len(first) == 1
        assert first[0].payload == payload
        # Strict consume-once at the protocol layer too.
        assert protocol.consume_precomputed() is None

    def test_noninteractive_rejects_staging_after_start(self, keys_cks05):
        op = _operation(keys_cks05, 1, "coin", b"late stage")
        protocol = NonInteractiveProtocol("coin-y", 1, op)
        protocol.do_round()
        with pytest.raises(ProtocolError):
            protocol.stage_precomputed(b"too late")
        assert protocol.consume_precomputed() is None

    def test_frost_nonce_staging_skips_round_zero(self, keys_kg20):
        scheme = Kg20SignatureScheme()
        shares = [keys_kg20.share_for(i) for i in range(1, 5)]
        batch = [scheme.commit(share) for share in shares]
        commitments = [commitment for _, commitment in batch]
        protocol = FrostProtocol("frost-x", shares[0], b"staged msg")
        assert protocol.supports_precompute is True
        protocol.stage_precomputed((batch[0][0], commitments))
        assert protocol.round == 1
        messages = protocol.consume_precomputed()
        assert messages is not None and messages[0].round == 1
        assert protocol.consume_precomputed() is None
        # Staging again after the signing round ran is rejected.
        with pytest.raises(ProtocolError):
            protocol.stage_precomputed((batch[0][0], commitments))

    def test_frost_ctor_pool_routes_through_staging(self, keys_kg20):
        scheme = Kg20SignatureScheme()
        shares = [keys_kg20.share_for(i) for i in range(1, 5)]
        per_party = [scheme.precompute(share, 1) for share in shares]
        pool = FrostPrecomputationPool()
        pool.add_batch(
            [per_party[0][0][0]],
            [[pairs[0][1] for pairs in per_party]],
        )
        protocol = FrostProtocol("frost-y", shares[0], b"ctor msg", pool=pool)
        assert protocol.round == 1
        assert pool.available == 0


# ---------------------------------------------------------------------------
# Standalone service: refill, bit identity, consume-once across restart
# ---------------------------------------------------------------------------


async def _drained_service(config, jobs, journal_dir=None):
    service = PrecomputeService(
        config, MetricRegistry(), journal_dir=journal_dir
    )
    service.start()
    report = await service.warm(jobs)
    return service, report


class TestStandaloneService:
    def test_depth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PrecomputeConfig(depth=0)

    def test_pooled_share_is_bit_identical_to_inline(self, keys_bls04):
        """Satellite: BLS04 share creation is deterministic, so the staged
        payload must match the on-demand path byte for byte."""

        async def scenario():
            data = b"bit identity probe"
            job = _job(keys_bls04, 1, "sign", data)
            service, report = await _drained_service(
                PrecomputeConfig(depth=4, eager=False), [job]
            )
            try:
                assert report["staged"] == 1
                pooled = service.take(job.instance_id)
            finally:
                await service.stop()
            inline = _operation(keys_bls04, 1, "sign", data).create_own_share()
            assert pooled == inline

        asyncio.run(scenario())

    def test_take_is_consume_once(self, keys_cks05):
        async def scenario():
            job = _job(keys_cks05, 1, "coin", b"once")
            service, report = await _drained_service(
                PrecomputeConfig(depth=2, eager=False), [job]
            )
            try:
                assert report["staged"] == 1
                assert service.take(job.instance_id) is not None
                assert service.take(job.instance_id) is None
                assert service.take("never-announced") is None
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_depth_limit_defers_excess_announces(self, keys_cks05):
        async def scenario():
            jobs = [
                _job(keys_cks05, 1, "coin", f"burst {i}".encode())
                for i in range(5)
            ]
            service, report = await _drained_service(
                PrecomputeConfig(depth=2, eager=False), jobs
            )
            try:
                assert report["staged"] == 2
                assert report["deferred"] == 3
                assert service.staged_count("k", "coin") == 2
                # A duplicate announce of a staged instance is refused too.
                again = await service.warm([jobs[0]])
                assert again["duplicate"] == 1
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_restart_never_reserves_consumed_entries(self, keys_cks05, tmp_path):
        """Satellite: SIGKILL between take() and the response must not
        resurrect the entry — consumption is journaled before serving."""

        async def scenario():
            consumed = _job(keys_cks05, 1, "coin", b"consumed before crash")
            survivor = _job(keys_cks05, 1, "coin", b"still pooled at crash")
            config = PrecomputeConfig(depth=4, eager=False)
            service, report = await _drained_service(
                config, [consumed, survivor], journal_dir=tmp_path / "pool"
            )
            assert report["staged"] == 2
            payload = service.take(consumed.instance_id)
            assert payload is not None
            # "kill -9": no clean stop, no journal close — the WAL on disk
            # is all the next life gets.
            service._task.cancel()  # noqa: SLF001 - simulate abrupt death
            await asyncio.gather(service._task, return_exceptions=True)

            reborn = PrecomputeService(
                config, MetricRegistry(), journal_dir=tmp_path / "pool"
            )
            try:
                assert reborn.stats()["restored"] == 1
                assert reborn.take(consumed.instance_id) is None
                restored = reborn.take(survivor.instance_id)
                assert restored is not None
                # The restored share is the exact bytes staged pre-crash.
                assert reborn.take(survivor.instance_id) is None
            finally:
                await reborn.stop()
            return payload, restored

        payload, restored = asyncio.run(scenario())
        assert payload != restored  # distinct requests, distinct shares


# ---------------------------------------------------------------------------
# Full service cluster: announce over RPC, pool/inline accounting, eager mode
# ---------------------------------------------------------------------------


async def _pipeline_network(all_keys, precompute, **overrides):
    configs = make_local_configs(
        4,
        1,
        transport="local",
        rpc_base_port=0,
        precompute=precompute,
        **overrides,
    )
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, km in all_keys.items():
            node.install_key(
                key_id, km.scheme, km.public_key, km.share_for(config.node_id)
            )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    return hub, nodes, client


async def _teardown(nodes, client):
    await client.close()
    for node in nodes:
        await node.stop()


@pytest.mark.integration
class TestPipelineService:
    def test_warm_pool_serves_from_pool(self, all_keys):
        """Announced request: staged share consumed, source=pool, result
        identical to what the on-demand path produces."""

        async def scenario():
            hub, nodes, client = await _pipeline_network(
                all_keys, PrecomputeConfig(depth=4, eager=False)
            )
            try:
                secret = b"announced secret"
                ciphertext = await client.encrypt("sg02", secret, b"lbl")
                reports = await client.precompute("sg02", items=[ciphertext], label=b"lbl")
                assert all(r["staged"] == 1 for r in reports.values())
                assert all(
                    r["depth"].get("sg02/decrypt") == 1 for r in reports.values()
                )

                assert await client.decrypt("sg02", ciphertext, b"lbl") == secret
                for node in nodes:
                    served = node.stats()["precompute"]["served"]
                    assert served.get("decrypt/pool", 0) == 1
                    # The staged entry was consumed: the pool is empty again.
                    assert node.stats()["precompute"]["staged"] == {}
                # The pool depth gauge and served counter are in the node's
                # Prometheus exposition.
                text = nodes[0].render_metrics()
                assert "repro_precompute_pool_depth" in text
                assert 'repro_precompute_served_total{op="decrypt",source="pool"}' in text
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_exhausted_pool_falls_back_inline(self, all_keys):
        """Satellite: draining faster than refill degrades to the on-demand
        path with visible source=inline accounting, never an error."""

        async def scenario():
            hub, nodes, client = await _pipeline_network(
                all_keys, PrecomputeConfig(depth=4, eager=False)
            )
            try:
                announced = await client.encrypt("sg02", b"pooled one", b"")
                cold_a = await client.encrypt("sg02", b"cold one", b"")
                cold_b = await client.encrypt("sg02", b"cold two", b"")
                await client.precompute("sg02", items=[announced])

                assert await client.decrypt("sg02", announced) == b"pooled one"
                assert await client.decrypt("sg02", cold_a) == b"cold one"
                assert await client.decrypt("sg02", cold_b) == b"cold two"

                served = nodes[0].stats()["precompute"]["served"]
                assert served.get("decrypt/pool", 0) == 1
                assert served.get("decrypt/inline", 0) == 2
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_eager_pipelining_runs_ahead_of_demand(self, all_keys):
        async def scenario():
            hub, nodes, client = await _pipeline_network(
                all_keys, PrecomputeConfig(depth=4, eager=True)
            )
            try:
                secret = b"eagerly pipelined"
                ciphertext = await client.encrypt("sg02", secret, b"")
                await client.precompute("sg02", items=[ciphertext])
                instance_id = derive_instance_id("decrypt", "sg02", ciphertext, b"")
                # The announce alone drives the instance to completion.
                for _ in range(400):
                    record = nodes[0].instances._records.get(instance_id)
                    if record is not None and record.status.value == "finished":
                        break
                    await asyncio.sleep(0.01)
                assert nodes[0].instances.record(instance_id).status.value == "finished"

                assert await client.decrypt("sg02", ciphertext) == secret
                served = nodes[0].stats()["precompute"]["served"]
                assert served.get("decrypt/pool", 0) == 1
                # The eager submission itself is not client-visible traffic.
                assert sum(served.values()) == 1
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_kg20_announce_is_rejected_with_reason(self, all_keys):
        async def scenario():
            hub, nodes, client = await _pipeline_network(
                all_keys, PrecomputeConfig(depth=4, eager=False)
            )
            try:
                results = await client.precompute("kg20", items=[b"message"])
                for result in results.values():
                    assert isinstance(result, RpcError)
                    assert getattr(result, "reason", None) == "precompute_kind"
                # The count-based kg20 preprocessing still works alongside.
                pre = await client.precompute("kg20", 2)
                assert all(r["available"] == 2 for r in pre.values())
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_disabled_pipeline_keeps_on_demand_semantics(self, all_keys):
        async def scenario():
            hub, nodes, client = await _pipeline_network(all_keys, None)
            try:
                results = await client.precompute("sg02", items=[b"x"])
                for result in results.values():
                    assert isinstance(result, RpcError)
                    assert getattr(result, "reason", None) == "precompute_disabled"
                # kg20 nonce pools live in the service even when the
                # announce pipeline is off.
                pre = await client.precompute("kg20", 2)
                assert all(r["available"] == 2 for r in pre.values())
                sig = await client.sign("kg20", b"pooled while disabled")
                assert await client.verify_signature(
                    "kg20", b"pooled while disabled", sig
                )
                assert nodes[0].stats()["precompute"]["enabled"] is False
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_client_rejects_ambiguous_precompute_call(self, all_keys):
        async def scenario():
            hub, nodes, client = await _pipeline_network(
                all_keys, PrecomputeConfig(depth=4, eager=False)
            )
            try:
                with pytest.raises(RpcError):
                    await client.precompute("sg02")
                with pytest.raises(RpcError):
                    await client.precompute("sg02", count=2, items=[b"x"])
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())


class TestConfigPlumbing:
    def test_node_config_round_trips_precompute(self):
        config = make_local_configs(
            4, 1, precompute=PrecomputeConfig(depth=3, eager=False)
        )[0]
        clone = NodeConfig.from_json(config.to_json())
        assert clone.precompute == PrecomputeConfig(depth=3, eager=False)

    def test_daemon_flag_overrides_config(self, tmp_path):
        from repro.service.daemon import load_node
        from repro.schemes.keystore import keystore_to_json

        # A 1-of-2 config parses standalone; transport stays tcp (unstarted).
        node_config = NodeConfig(node_id=1, parties=2, threshold=0)
        config_path = tmp_path / "config.json"
        config_path.write_text(node_config.to_json())
        keystore_path = tmp_path / "keystore.json"
        keystore_path.write_text(keystore_to_json({}))

        node = load_node(str(config_path), str(keystore_path), precompute_depth=5)
        assert node.config.precompute == PrecomputeConfig(depth=5)
        disabled = load_node(str(config_path), str(keystore_path), precompute_depth=0)
        assert disabled.config.precompute is None
