"""TRI protocols driven by a synchronous message pump (no network)."""

import pytest

from repro.core.messages import Channel, ProtocolMessage
from repro.core.protocols import (
    DkgProtocol,
    FrostPrecomputationPool,
    FrostPrecomputeProtocol,
    FrostProtocol,
    NonInteractiveProtocol,
    OperationRequest,
    make_operation,
)
from repro.errors import (
    ConfigurationError,
    ProtocolAbortedError,
    ProtocolError,
)
from repro.groups import get_group
from repro.schemes import get_scheme


def pump(protocols):
    """Run a set of per-party protocols to completion, routing messages."""
    inboxes = {p.party_id: [] for p in protocols}
    for protocol in protocols:
        for message in protocol.do_round():
            _route(message, inboxes, protocol.party_id)
    results = {}
    progress = True
    while progress and len(results) < len(protocols):
        progress = False
        for protocol in protocols:
            if protocol.instance_id in () or protocol.party_id in results:
                continue
            queue, inboxes[protocol.party_id] = inboxes[protocol.party_id], []
            for message in queue:
                protocol.update(message)
                progress = True
            if protocol.is_ready_for_next_round():
                protocol.advance_round()
                for message in protocol.do_round():
                    _route(message, inboxes, protocol.party_id)
                progress = True
            if protocol.is_ready_to_finalize() and protocol.party_id not in results:
                results[protocol.party_id] = protocol.finalize()
                progress = True
    return results


def _route(message, inboxes, sender):
    for party_id, inbox in inboxes.items():
        if party_id == sender:
            continue
        if message.recipient and message.recipient != party_id:
            continue
        inbox.append(message)


def make_noninteractive(keys, kind, data, label=b""):
    protocols = []
    for share in keys.key_shares:
        operation = make_operation(
            keys.scheme,
            keys.public_key,
            share,
            OperationRequest(kind, data, label),
        )
        protocols.append(
            NonInteractiveProtocol("inst-1", share.id, operation)
        )
    return protocols


class TestNonInteractiveProtocol:
    def test_bls_signing_all_parties_finalize(self, keys_bls04):
        protocols = make_noninteractive(keys_bls04, "sign", b"pump msg")
        results = pump(protocols)
        assert len(results) == 4
        scheme = get_scheme("bls04")
        from repro.schemes.bls04 import Bls04Signature

        for blob in results.values():
            scheme.verify(
                keys_bls04.public_key, b"pump msg", Bls04Signature.from_bytes(blob)
            )

    def test_coin_all_parties_agree(self, keys_cks05):
        protocols = make_noninteractive(keys_cks05, "coin", b"coin-name")
        results = pump(protocols)
        assert len(set(results.values())) == 1

    def test_sg02_decrypt_via_protocol(self, keys_sg02):
        cipher = get_scheme("sg02")
        ct = cipher.encrypt(keys_sg02.public_key, b"plain", b"lbl")
        protocols = make_noninteractive(keys_sg02, "decrypt", ct.to_bytes(), b"lbl")
        results = pump(protocols)
        assert set(results.values()) == {b"plain"}

    def test_single_round_protocol_rejects_second_round(self, keys_bls04):
        protocols = make_noninteractive(keys_bls04, "sign", b"x")
        protocols[0].do_round()
        with pytest.raises(ProtocolError):
            protocols[0].do_round()
        assert not protocols[0].is_ready_for_next_round()

    def test_premature_finalize_rejected(self, keys_bls04):
        protocols = make_noninteractive(keys_bls04, "sign", b"x")
        protocols[0].do_round()
        with pytest.raises(ProtocolError):
            protocols[0].finalize()

    def test_own_echo_is_ignored(self, keys_bls04):
        protocols = make_noninteractive(keys_bls04, "sign", b"x")
        messages = protocols[0].do_round()
        protocols[0].update(messages[0])  # own broadcast echoed back
        assert not protocols[0].is_ready_to_finalize()

    def test_double_finalize_rejected(self, keys_cks05):
        protocols = make_noninteractive(keys_cks05, "coin", b"n")
        results_inboxes = {}
        msgs = []
        for p in protocols:
            msgs.extend(p.do_round())
        target = protocols[0]
        for m in msgs:
            if m.sender != target.party_id:
                target.update(m)
        assert target.is_ready_to_finalize()
        target.finalize()
        with pytest.raises(ProtocolError):
            target.finalize()

    def test_wrong_kind_rejected(self, keys_bls04):
        with pytest.raises(ConfigurationError):
            make_operation(
                "bls04",
                keys_bls04.public_key,
                keys_bls04.key_shares[0],
                OperationRequest("decrypt", b"x"),
            )

    def test_coin_kind_on_cipher_rejected(self, keys_sg02):
        with pytest.raises(ConfigurationError):
            make_operation(
                "sg02",
                keys_sg02.public_key,
                keys_sg02.key_shares[0],
                OperationRequest("coin", b"x"),
            )


class TestFrostProtocol:
    def test_two_round_signing(self, keys_kg20):
        protocols = [
            FrostProtocol("frost-1", share, b"frost pump")
            for share in keys_kg20.key_shares
        ]
        results = pump(protocols)
        assert len(results) == 4
        from repro.schemes.kg20 import Kg20Signature, Kg20SignatureScheme

        scheme = Kg20SignatureScheme()
        for blob in results.values():
            scheme.verify(
                keys_kg20.public_key,
                b"frost pump",
                Kg20Signature.from_bytes(blob, keys_kg20.public_key.group),
            )

    def test_precompute_then_single_round(self, keys_kg20):
        pools = {s.id: FrostPrecomputationPool() for s in keys_kg20.key_shares}
        pre = [
            FrostPrecomputeProtocol("pre-1", share, 3, pools[share.id])
            for share in keys_kg20.key_shares
        ]
        pump(pre)
        assert all(pool.available == 3 for pool in pools.values())
        for index in range(2):
            protocols = [
                FrostProtocol(
                    f"frost-pre-{index}",
                    share,
                    b"msg %d" % index,
                    pool=pools[share.id],
                )
                for share in keys_kg20.key_shares
            ]
            # Precomputed mode starts in round 1 directly.
            assert all(p.round == 1 for p in protocols)
            results = pump(protocols)
            assert len(results) == 4

    def test_pool_exhaustion(self):
        pool = FrostPrecomputationPool()
        with pytest.raises(ProtocolError):
            pool.pop()

    def test_rogue_share_aborts_with_culprit(self, keys_kg20):
        protocols = [
            FrostProtocol("frost-abort", share, b"abort me")
            for share in keys_kg20.key_shares
        ]
        inboxes = {p.party_id: [] for p in protocols}
        for p in protocols:
            for m in p.do_round():
                _route(m, inboxes, p.party_id)
        # Deliver all commitments, advance everyone to round 1.
        for p in protocols:
            for m in inboxes[p.party_id]:
                p.update(m)
            inboxes[p.party_id] = []
            assert p.is_ready_for_next_round()
            p.advance_round()
        round1 = {p.party_id: p.do_round() for p in protocols}
        # Tamper with party 2's z-share before delivery to party 1.
        from repro.schemes.kg20 import Kg20SignatureShare

        target = protocols[0]
        for sender, messages in round1.items():
            for m in messages:
                if sender == 2:
                    bad_share = Kg20SignatureShare(2, 12345)
                    m = ProtocolMessage(
                        m.instance_id, 2, 1, m.channel, bad_share.to_bytes()
                    )
                if sender != target.party_id:
                    target.update(m)
        assert target.is_ready_to_finalize()
        with pytest.raises(Exception) as excinfo:
            target.finalize()
        assert "2" in str(excinfo.value)

    def test_mismatched_sender_commitment_aborts(self, keys_kg20):
        protocol = FrostProtocol("frost-bad", keys_kg20.key_shares[0], b"m")
        protocol.do_round()
        from repro.schemes.kg20 import Kg20SignatureScheme

        scheme = Kg20SignatureScheme()
        _, commitment = scheme.commit(keys_kg20.key_shares[2])
        message = ProtocolMessage(
            "frost-bad", 2, 0, Channel.P2P, commitment.to_bytes()
        )
        with pytest.raises(ProtocolAbortedError):
            protocol.update(message)


class TestDkgProtocol:
    def test_full_dkg_run(self):
        group = get_group("ed25519")
        protocols = [
            DkgProtocol(f"dkg-1", i, 1, 4, group) for i in range(1, 5)
        ]
        results = pump(protocols)
        assert len(set(results.values())) == 1  # same group key everywhere
        shares = {p.party_id: p.result for p in protocols}
        ids = [1, 2]
        from repro.mathutils.lagrange import lagrange_coefficients_at_zero

        lam = lagrange_coefficients_at_zero(ids, group.order)
        x = sum(shares[i].key_share * lam[i] for i in ids) % group.order
        assert group.generator() ** x == shares[1].group_key

    def test_directed_messages_have_recipients(self):
        group = get_group("ed25519")
        protocol = DkgProtocol("dkg-2", 1, 1, 4, group)
        messages = protocol.do_round()
        assert sorted(m.recipient for m in messages) == [2, 3, 4]

    def test_misaddressed_share_rejected(self):
        group = get_group("ed25519")
        p1 = DkgProtocol("dkg-3", 1, 1, 4, group)
        p2 = DkgProtocol("dkg-3", 2, 1, 4, group)
        p1.do_round()
        messages = p2.do_round()
        to_party_3 = next(m for m in messages if m.recipient == 3)
        with pytest.raises(ProtocolError):
            p1.update(to_party_3)

    def test_result_before_finalize_rejected(self):
        group = get_group("ed25519")
        protocol = DkgProtocol("dkg-4", 1, 1, 4, group)
        with pytest.raises(ProtocolError):
            protocol.result
