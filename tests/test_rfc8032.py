"""RFC 8032 interop: threshold FROST signatures pass a plain Ed25519 verifier."""

import pytest

from repro.errors import InvalidSignatureError
from repro.groups.ed25519 import L, ed25519
from repro.schemes.rfc8032 import FrostEd25519, frost_keygen, sign, verify


@pytest.fixture(scope="module")
def material():
    return frost_keygen(1, 4)


class TestReferenceSignVerify:
    def test_round_trip(self):
        group = ed25519()
        secret = group.random_scalar()
        public = (group.generator() ** secret).to_bytes()
        signature = sign(secret, b"reference message")
        verify(public, b"reference message", signature)

    def test_wrong_message_rejected(self):
        group = ed25519()
        secret = group.random_scalar()
        public = (group.generator() ** secret).to_bytes()
        signature = sign(secret, b"m1")
        with pytest.raises(InvalidSignatureError):
            verify(public, b"m2", signature)

    def test_wrong_key_rejected(self):
        group = ed25519()
        secret = group.random_scalar()
        other = (group.generator() ** group.random_scalar()).to_bytes()
        signature = sign(secret, b"m")
        with pytest.raises(InvalidSignatureError):
            verify(other, b"m", signature)

    def test_malformed_signature_rejected(self):
        group = ed25519()
        secret = group.random_scalar()
        public = (group.generator() ** secret).to_bytes()
        with pytest.raises(InvalidSignatureError):
            verify(public, b"m", b"short")
        signature = bytearray(sign(secret, b"m"))
        signature[0] ^= 1
        with pytest.raises(InvalidSignatureError):
            verify(public, b"m", bytes(signature))

    def test_non_canonical_scalar_rejected(self):
        group = ed25519()
        secret = group.random_scalar()
        public = (group.generator() ** secret).to_bytes()
        signature = bytearray(sign(secret, b"m"))
        # Add L to S: same point equation, non-canonical encoding.
        s = int.from_bytes(signature[32:], "little") + L
        signature[32:] = s.to_bytes(32, "little")
        with pytest.raises(InvalidSignatureError):
            verify(public, b"m", bytes(signature))

    def test_deterministic(self):
        group = ed25519()
        secret = group.random_scalar()
        assert sign(secret, b"m") == sign(secret, b"m")


class TestThresholdInterop:
    def test_frost_signature_passes_plain_verifier(self, material):
        """The headline: a 2-of-4 threshold signature, verified with zero
        knowledge of thresholds — just RFC 8032 math."""
        public, shares = material
        scheme = FrostEd25519()
        signature = scheme.sign_threshold(public, [shares[0], shares[2]], b"wallet tx")
        verify(public.y.to_bytes(), b"wallet tx", signature.data)
        assert len(signature.data) == 64

    def test_different_quorums_all_verify(self, material):
        public, shares = material
        scheme = FrostEd25519()
        for quorum in ([shares[0], shares[1]], [shares[1], shares[3]],
                       [shares[0], shares[1], shares[2], shares[3]]):
            signature = scheme.sign_threshold(public, quorum, b"multi-quorum")
            verify(public.y.to_bytes(), b"multi-quorum", signature.data)

    def test_threshold_and_single_signer_indistinguishable_format(self, material):
        public, shares = material
        scheme = FrostEd25519()
        threshold_sig = scheme.sign_threshold(public, shares[:2], b"m")
        group = ed25519()
        single_secret = group.random_scalar()
        single_sig = sign(single_secret, b"m")
        assert len(threshold_sig.data) == len(single_sig) == 64

    def test_tampered_threshold_signature_rejected(self, material):
        public, shares = material
        scheme = FrostEd25519()
        signature = bytearray(scheme.sign_threshold(public, shares[:2], b"m").data)
        signature[40] ^= 0xFF
        with pytest.raises(InvalidSignatureError):
            verify(public.y.to_bytes(), b"m", bytes(signature))

    def test_share_verification_still_works_with_rfc_challenge(self, material):
        public, shares = material
        scheme = FrostEd25519()
        ids = [1, 2]
        nonces = {i: scheme.commit(shares[i - 1]) for i in ids}
        commitments = [nonces[i][1] for i in ids]
        z = scheme.sign_round(shares[0], b"m", nonces[1][0], commitments)
        scheme.verify_signature_share(public, b"m", z, commitments)
