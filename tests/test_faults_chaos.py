"""Chaos suite: every scheme under every fault kind, plus structured aborts.

Thetacrypt (§3.2) tolerates up to t corrupted nodes over reliable channels;
the :class:`~repro.network.faults.FaultyNetwork` deliberately violates the
channel assumption with seeded faults.  These tests pin down the two halves
of the robustness claim on a 4-node, t=1 service cluster:

* with at most t faulty nodes (or only message-level faults) every
  non-interactive scheme still finalizes, and
* with more than t faulty nodes the instance aborts with the *correct*
  structured reason (``insufficient_shares`` vs ``byzantine_detected``),
  visible in the RPC error, the status endpoint, and node stats.

KG20/FROST needs all n parties in both rounds (it is not robust, §4.5), so
it only appears under the lossless fault kinds (delay/duplicate/reorder).
"""

import asyncio
from dataclasses import replace

import pytest

from repro.core.orchestration.precompute import PrecomputeConfig
from repro.errors import RpcError
from repro.network.faults import Crash, FaultPlan, LinkFaults, Partition
from repro.network.local import LocalHub
from repro.serialization import hexlify
from repro.service.client import ThetacryptClient
from repro.service.config import make_local_configs
from repro.service.node import ThetacryptNode, derive_instance_id

ALL_SCHEMES = ("sg02", "bz03", "sh00", "bls04", "kg20", "cks05")

#: Fault kinds that never lose or damage a message: the only ones the
#: non-robust KG20 flow can run under.
LOSSLESS = ("delay", "duplicate", "reorder")

#: One seeded plan per fault kind the injector supports.
PLANS = {
    "drop": FaultPlan(seed=11, default=LinkFaults(drop=0.25)),
    "delay": FaultPlan(seed=12, default=LinkFaults(delay=0.01, jitter=0.02)),
    "duplicate": FaultPlan(seed=13, default=LinkFaults(duplicate=0.5)),
    "reorder": FaultPlan(
        seed=14, default=LinkFaults(reorder=0.3), reorder_hold=0.02
    ),
    "corrupt": FaultPlan(seed=15, default=LinkFaults(corrupt=0.25)),
    "partition": FaultPlan(
        seed=16,
        partitions=(Partition(groups=((1, 2), (3, 4)), start=0.0, heal=0.4),),
    ),
    "crash": FaultPlan(seed=17, crashes=(Crash(node=4, at=0.0),)),
}


async def _chaos_network(all_keys, plan, **overrides):
    """A 4-node t=1 local-transport cluster with ``plan`` on every node."""
    configs = make_local_configs(
        4, 1, transport="local", rpc_base_port=0, fault_plan=plan, **overrides
    )
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, km in all_keys.items():
            node.install_key(
                key_id, km.scheme, km.public_key, km.share_for(config.node_id)
            )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    return hub, nodes, client


async def _teardown(nodes, client):
    await client.close()
    for node in nodes:
        await node.stop()


async def _exercise(client, scheme, tag):
    """One end-to-end threshold operation appropriate for ``scheme``."""
    data = f"chaos {tag} {scheme}".encode()
    if scheme in ("sg02", "bz03"):
        ciphertext = await client.encrypt(scheme, data, b"lbl")
        assert await client.decrypt(scheme, ciphertext, b"lbl") == data
    elif scheme in ("sh00", "bls04", "kg20"):
        signature = await client.sign(scheme, data)
        assert await client.verify_signature(scheme, data, signature)
    else:
        coin = await client.flip_coin(scheme, data)
        assert len(coin) == 32


@pytest.mark.integration
class TestChaosMatrix:
    @pytest.mark.parametrize("kind", sorted(PLANS))
    def test_all_schemes_finalize_under_fault(self, all_keys, kind):
        async def scenario():
            hub, nodes, client = await _chaos_network(
                all_keys, PLANS[kind], instance_timeout=10.0
            )
            try:
                for scheme in ALL_SCHEMES:
                    if scheme == "kg20" and kind not in LOSSLESS:
                        continue  # FROST needs all n parties (§4.5)
                    await _exercise(client, scheme, kind)
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_crash_plus_byzantine_within_tolerance(self, all_keys):
        """1 crashed + 1 byzantine of 4 (t=1 ⇒ quorum 2): still finalizes."""
        plan = FaultPlan(
            seed=23, crashes=(Crash(node=4, at=0.0),), byzantine=(3,)
        )

        async def scenario():
            hub, nodes, client = await _chaos_network(
                all_keys, plan, instance_timeout=10.0
            )
            try:
                await _exercise(client, "sg02", "tolerated")
                await _exercise(client, "bls04", "tolerated")
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())


@pytest.mark.integration
class TestStructuredAborts:
    def test_insufficient_shares_when_majority_crashed(self, all_keys):
        """3 of 4 crashed: the survivor cannot reach quorum and says so."""
        plan = FaultPlan(
            seed=31, crashes=(Crash(node=2), Crash(node=3), Crash(node=4))
        )
        data = b"abort: not enough shares"

        async def scenario():
            hub, nodes, client = await _chaos_network(
                all_keys, plan, instance_timeout=1.5
            )
            try:
                with pytest.raises(RpcError) as err:
                    await client.call(
                        1, "flip_coin", {"key_id": "cks05", "data": hexlify(data)}
                    )
                assert getattr(err.value, "reason", None) == "insufficient_shares"

                instance_id = derive_instance_id("coin", "cks05", data, b"")
                status = await client.status(instance_id, node_id=1)
                assert status["status"] == "failed"
                assert status["abort_reason"] == "insufficient_shares"

                stats = nodes[0].stats()
                assert stats["aborts"].get("insufficient_shares", 0) >= 1
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())

    def test_byzantine_detected_when_majority_corrupt(self, all_keys):
        """All peers byzantine: the honest node rejects every share and
        classifies the resulting timeout as ``byzantine_detected``."""
        plan = FaultPlan(seed=32, byzantine=(2, 3, 4))
        data = b"abort: corrupted quorum"

        async def scenario():
            hub, nodes, client = await _chaos_network(
                all_keys, plan, instance_timeout=1.5
            )
            try:
                # Fan the request out so peers actually send (bad) shares.
                results = await client.broadcast(
                    "flip_coin", {"key_id": "cks05", "data": hexlify(data)}
                )
                honest = results[1]
                assert isinstance(honest, RpcError)
                assert getattr(honest, "reason", None) == "byzantine_detected"

                instance_id = derive_instance_id("coin", "cks05", data, b"")
                status = await client.status(instance_id, node_id=1)
                assert status["abort_reason"] == "byzantine_detected"
                assert nodes[0].stats()["aborts"].get("byzantine_detected", 0) >= 1
            finally:
                await _teardown(nodes, client)

        asyncio.run(scenario())


@pytest.mark.integration
class TestPrecomputeUnderChaos:
    """The precompute pipeline against the chaos machinery: a warm pool
    must keep serving through a seeded crash window, and a real restart
    over the pool journal must keep both invariants — the structured
    ``crash_recovery`` abort for in-flight instances AND consume-once for
    pool entries taken before the crash."""

    def test_warm_pool_serves_through_crash_window_and_restart(
        self, all_keys, tmp_path
    ):
        async def scenario():
            # Node 4 is crash-windowed by a seeded plan: silent from the
            # start, back after 0.6s of fault-clock time.
            plan = FaultPlan(seed=41, crashes=(Crash(node=4, at=0.0, recover=0.6),))
            configs = [
                replace(c, data_dir=str(tmp_path / f"node{c.node_id}"))
                for c in make_local_configs(
                    4,
                    1,
                    transport="local",
                    rpc_base_port=0,
                    fault_plan=plan,
                    precompute=PrecomputeConfig(depth=4, eager=False),
                    instance_timeout=10.0,
                )
            ]
            hub = LocalHub(latency=lambda a, b: 0.001)
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                for key_id, km in all_keys.items():
                    node.install_key(
                        key_id,
                        km.scheme,
                        km.public_key,
                        km.share_for(config.node_id),
                    )
                await node.start()
                nodes.append(node)
            client = ThetacryptClient(
                {n.config.node_id: n.rpc_address for n in nodes}
            )
            try:
                # Warm the pools everywhere.  RPC is unaffected by the
                # transport-level crash, so node 4 stages (and journals)
                # its share even while its network is dark.
                windowed = await client.encrypt("sg02", b"during the window", b"")
                survivor = await client.encrypt("sg02", b"after the restart", b"")
                reports = await client.precompute(
                    "sg02", items=[windowed, survivor]
                )
                assert all(r["staged"] == 2 for r in reports.values())

                # Mid-window request: t=1 tolerates the crashed node, and
                # the three live nodes serve from their warm pools.
                plaintext = await client.decrypt("sg02", windowed)
                assert plaintext == b"during the window"
                assert (
                    nodes[0]
                    .stats()["precompute"]["served"]
                    .get("decrypt/pool", 0)
                    == 1
                )
                # The fan-out reached node 4's RPC too: wait for it to
                # consume its windowed entry (journaled at submit) so the
                # post-restart ledger is deterministic.
                for _ in range(200):
                    staged = nodes[3].stats()["precompute"]["staged"]
                    if staged.get("sg02/decrypt", 0) == 1:
                        break
                    await asyncio.sleep(0.01)
                assert (
                    nodes[3].stats()["precompute"]["staged"]["sg02/decrypt"] == 1
                )

                # One instance in flight on node 4 only, then "kill -9".
                pending = b"in flight at the crash"
                pending_id = derive_instance_id("sign", "bls04", pending, b"")
                submit = asyncio.ensure_future(
                    client.call(
                        4, "sign", {"key_id": "bls04", "data": hexlify(pending)}
                    )
                )
                for _ in range(200):
                    if pending_id in nodes[3].instances._records:
                        break
                    await asyncio.sleep(0.01)
                await nodes[3].stop()
                submit.cancel()
                await asyncio.gather(submit, return_exceptions=True)

                # Fresh life over the same data_dir (no fault plan this
                # time: the window is over).
                reborn_config = replace(configs[3], fault_plan=None)
                reborn = ThetacryptNode(reborn_config, transport=hub.endpoint(4))
                for key_id, km in all_keys.items():
                    reborn.install_key(
                        key_id, km.scheme, km.public_key, km.share_for(4)
                    )
                await reborn.start()
                nodes[3] = reborn

                # Structured crash_recovery abort is still correct with a
                # warm pool in play.
                assert reborn.stats()["aborts"].get("crash_recovery", 0) >= 1

                # Pool journal replay: the windowed entry — consumed at
                # submit time, before node 4 died — must NOT be restored;
                # the untouched survivor must be.
                restored = reborn.stats()["precompute"]
                assert restored["staged"].get("sg02/decrypt", 0) == 1
                assert restored["restored"] == 1

                await client.close()
                client2 = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes}
                )
                try:
                    # The restored entry serves the announced request; the
                    # consumed one is gone for good (the same request is a
                    # duplicate answered from the durable result cache).
                    assert (
                        await client2.decrypt("sg02", survivor)
                        == b"after the restart"
                    )
                    assert (
                        reborn.stats()["precompute"]["served"].get(
                            "decrypt/pool", 0
                        )
                        == 1
                    )
                    assert reborn.stats()["precompute"]["staged"] == {}
                finally:
                    await client2.close()
                    client2 = None
            finally:
                for node in nodes:
                    await node.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestCrashRecoveryRestart:
    """Crash recovery through the *real* path: the crashed node is torn
    down and a fresh ThetacryptNode boots over the same ``data_dir`` —
    not merely a delivery pause, which would leave volatile state
    implausibly intact."""

    def test_restart_recovers_state_and_aborts_in_flight(self, all_keys, tmp_path):
        async def scenario():
            configs = [
                replace(c, data_dir=str(tmp_path / f"node{c.node_id}"))
                for c in make_local_configs(
                    4, 1, transport="local", rpc_base_port=0
                )
            ]
            hub = LocalHub(latency=lambda a, b: 0.001)
            nodes = []
            for config in configs:
                node = ThetacryptNode(
                    config, transport=hub.endpoint(config.node_id)
                )
                for key_id, km in all_keys.items():
                    node.install_key(
                        key_id,
                        km.scheme,
                        km.public_key,
                        km.share_for(config.node_id),
                    )
                await node.start()
                nodes.append(node)
            client = ThetacryptClient(
                {n.config.node_id: n.rpc_address for n in nodes}
            )
            restarted = None
            try:
                # One fully finalized operation: its result must land in
                # node 4's durable cache.
                data = b"finalized before the crash"
                signature = await client.sign("bls04", data)
                done_id = derive_instance_id("sign", "bls04", data, b"")
                for _ in range(200):
                    record = nodes[3].instances._records.get(done_id)
                    if record is not None and record.status.value == "finished":
                        break
                    await asyncio.sleep(0.01)
                assert nodes[3].instances.record(done_id).status.value == "finished"

                # One instance in flight on node 4 only: peers never saw
                # the request, so it cannot reach quorum and is still
                # pending when the node dies.
                pending = b"in flight at the crash"
                pending_id = derive_instance_id("sign", "bls04", pending, b"")
                submit = asyncio.ensure_future(
                    client.call(
                        4, "sign", {"key_id": "bls04", "data": hexlify(pending)}
                    )
                )
                for _ in range(200):
                    if pending_id in nodes[3].instances._records:
                        break
                    await asyncio.sleep(0.01)
                assert nodes[3].instances.record(pending_id).status.value in (
                    "created",
                    "running",
                )

                # "kill -9": abrupt teardown — executors cancelled, no
                # terminal journal record for the pending instance.
                await nodes[3].stop()
                submit.cancel()
                await asyncio.gather(submit, return_exceptions=True)

                # Fresh process life over the same data_dir and hub slot.
                restarted = ThetacryptNode(configs[3], transport=hub.endpoint(4))
                # The dealer re-installs identical material: must be a no-op.
                for key_id, km in all_keys.items():
                    restarted.install_key(
                        key_id, km.scheme, km.public_key, km.share_for(4)
                    )
                await restarted.start()
                nodes[3] = restarted

                # Keys came back from the durable keystore.
                assert len(restarted.keys) == len(all_keys)
                stats = restarted.stats()
                assert stats["recovery"]["keys"] == len(all_keys)
                assert stats["recovery"]["results"] >= 1
                assert stats["recovery"]["aborted"] >= 1
                assert stats["aborts"].get("crash_recovery", 0) >= 1

                # Reconnect (the restarted node has a fresh RPC port).
                await client.close()
                client2 = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes}
                )
                try:
                    # A duplicate of the finalized request is served from
                    # the durable cache, without re-running the protocol.
                    result = await client2.call(
                        4, "sign", {"key_id": "bls04", "data": hexlify(data)}
                    )
                    assert result["result"] == hexlify(signature)

                    # The in-flight instance is aborted with the structured
                    # crash_recovery reason, visible over the status RPC.
                    status = await client2.status(pending_id, node_id=4)
                    assert status["status"] == "failed"
                    assert status["abort_reason"] == "crash_recovery"

                    # The recovered node participates in new protocol runs.
                    after = b"signed after recovery"
                    sig2 = await client2.sign("bls04", after)
                    assert await client2.verify_signature("bls04", after, sig2)
                finally:
                    await client2.close()
            finally:
                for node in nodes:
                    await node.stop()

        asyncio.run(scenario())
