"""Property-based suites over the core data structures and protocols.

Hypothesis drives: wire-format round trips under arbitrary contents,
adversarial byte-level fuzzing of every decoder (must raise, never crash or
mis-decode), scheme correctness under random plaintexts/labels/quorums, and
protocol-pump runs under random message orderings.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.messages import Channel, ProtocolMessage
from repro.errors import SerializationError, ThetacryptError
from repro.schemes import cks05, get_scheme, sg02

small_binary = st.binary(max_size=256)


class TestProtocolMessageProperties:
    @settings(max_examples=60)
    @given(
        st.text(min_size=1, max_size=40),
        st.integers(1, 1000),
        st.integers(0, 10),
        st.sampled_from([Channel.P2P, Channel.TOB]),
        small_binary,
        st.integers(0, 1000),
    )
    def test_round_trip(self, instance_id, sender, round_number, channel, payload, recipient):
        message = ProtocolMessage(
            instance_id, sender, round_number, channel, payload, recipient
        )
        assert ProtocolMessage.from_bytes(message.to_bytes()) == message

    @settings(max_examples=80)
    @given(st.binary(max_size=200))
    def test_decoder_never_crashes(self, data):
        try:
            message = ProtocolMessage.from_bytes(data)
        except ThetacryptError:
            return  # rejection is the expected outcome for garbage
        # If it decoded, re-encoding must reproduce the input exactly.
        assert message.to_bytes() == data

    @settings(max_examples=30)
    @given(small_binary, st.integers(0, 255), st.integers(0, 60))
    def test_single_byte_corruption_never_misroutes(self, payload, xor, position):
        """A flipped byte either still decodes or raises — never crashes."""
        message = ProtocolMessage("instance-x", 3, 1, Channel.P2P, payload)
        data = bytearray(message.to_bytes())
        position %= len(data)
        data[position] ^= xor
        try:
            ProtocolMessage.from_bytes(bytes(data))
        except ThetacryptError:
            pass


class TestSchemeDecoderFuzz:
    @settings(max_examples=50)
    @given(st.binary(max_size=300))
    def test_sg02_ciphertext_decoder_total(self, data):
        from repro.groups import get_group

        try:
            sg02.Sg02Ciphertext.from_bytes(data, get_group("ed25519"))
        except ThetacryptError:
            pass

    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_coin_share_decoder_total(self, data):
        from repro.groups import get_group

        try:
            cks05.Cks05CoinShare.from_bytes(data, get_group("ed25519"))
        except ThetacryptError:
            pass

    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_keystore_import_total(self, data):
        from repro.schemes.keystore import import_key_share

        try:
            import_key_share(data)
        except ThetacryptError:
            pass


_COIN_MATERIAL = cks05.keygen(2, 6)


class TestSchemeProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.binary(min_size=0, max_size=512),
        st.binary(max_size=32),
        st.sets(st.integers(1, 6), min_size=3, max_size=6),
    )
    def test_sg02_decrypts_for_any_quorum_and_payload(self, plaintext, label, quorum):
        public, shares = _SG02_MATERIAL
        cipher = get_scheme("sg02")
        ciphertext = cipher.encrypt(public, plaintext, label)
        dec = [
            cipher.create_decryption_share(shares[i - 1], ciphertext)
            for i in sorted(quorum)
        ]
        assert cipher.combine(public, ciphertext, dec) == plaintext

    @settings(max_examples=15, deadline=None)
    @given(
        st.binary(min_size=1, max_size=64),
        st.sets(st.integers(1, 6), min_size=3, max_size=4),
        st.sets(st.integers(1, 6), min_size=3, max_size=4),
    )
    def test_coin_quorum_independence(self, name, quorum_a, quorum_b):
        public, shares = _COIN_MATERIAL[0], _COIN_MATERIAL[1]
        coin = get_scheme("cks05")
        value_a = coin.combine(
            public,
            name,
            [coin.create_coin_share(shares[i - 1], name) for i in sorted(quorum_a)],
        )
        value_b = coin.combine(
            public,
            name,
            [coin.create_coin_share(shares[i - 1], name) for i in sorted(quorum_b)],
        )
        assert value_a == value_b

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=128))
    def test_bls_sign_verify_total(self, message):
        public, shares = _BLS_MATERIAL
        scheme = get_scheme("bls04")
        partials = [scheme.partial_sign(shares[i], message) for i in (0, 1)]
        signature = scheme.combine(public, message, partials)
        scheme.verify(public, message, signature)


_SG02_MATERIAL = sg02.keygen(2, 6)

from repro.schemes import bls04 as _bls04_mod  # noqa: E402

_BLS_MATERIAL = _bls04_mod.keygen(1, 4)


class TestProtocolOrderingProperties:
    """The one-round protocol must terminate under ANY message order."""

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.permutations(list(range(5))), st.integers(0, 4))
    def test_coin_protocol_order_insensitive(self, order, observer_index):
        from repro.core.protocols import (
            NonInteractiveProtocol,
            OperationRequest,
            make_operation,
        )

        public, shares = _COIN_MATERIAL
        protocols = []
        for share in shares[:5]:
            operation = make_operation(
                "cks05", public, share, OperationRequest("coin", b"ordered")
            )
            protocols.append(NonInteractiveProtocol("perm", share.id, operation))
        messages = []
        for protocol in protocols:
            messages.extend(protocol.do_round())
        observer = protocols[observer_index]
        result = None
        for index in order:
            message = messages[index]
            if message.sender == observer.party_id:
                continue
            observer.update(message)
            if result is None and observer.is_ready_to_finalize():
                result = observer.finalize()
        assert result is not None
        # Same value every permutation (uniqueness of the coin).
        expected = get_scheme("cks05").combine(
            public,
            b"ordered",
            [
                get_scheme("cks05").create_coin_share(shares[i], b"ordered")
                for i in (0, 1, 2)
            ],
        )
        assert result == expected
