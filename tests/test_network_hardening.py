"""Regression tests for the transport/executor robustness work.

Pins down the hardened behaviours the chaos suite relies on:

* ``backoff_delay`` is exponential-with-jitter inside documented bounds,
* a TCP send that fails while the peer is down lands on the resend queue
  (``repro_net_send_failures``) and is delivered after the peer restarts —
  no silent drop,
* the round-progress watchdog re-broadcasts once before the timeout, and
* an executor timeout releases every resource: no leaked asyncio tasks,
  no pinned backlog, an empty inbox.
"""

import asyncio
import random

import pytest

from repro.core.orchestration import InstanceManager
from repro.core.protocols import (
    NonInteractiveProtocol,
    OperationRequest,
    make_operation,
)
from repro.errors import ProtocolAbortedError
from repro.network.tcp import BACKOFF_CAP, TcpP2P, backoff_delay

_PORT_A = 19941
_PORT_B = 19942


class TestBackoff:
    def test_exponential_envelope_with_jitter(self):
        rng = random.Random(1234)
        base, cap = 0.05, 2.0
        for attempt in range(12):
            ceiling = min(cap, base * (2**attempt))
            for _ in range(50):
                delay = backoff_delay(attempt, rng, base, cap)
                assert ceiling * 0.5 <= delay <= ceiling

    def test_grows_then_saturates_at_cap(self):
        rng = random.Random(7)
        maxima = [
            max(backoff_delay(a, rng, 0.05, 2.0) for _ in range(200))
            for a in range(10)
        ]
        assert maxima[0] < maxima[3] < maxima[6]  # exponential growth
        assert all(m <= 2.0 for m in maxima)  # never exceeds the cap
        assert maxima[9] > 2.0 * 0.9  # cap actually reached

    def test_jitter_spreads_retries(self):
        rng = random.Random(99)
        delays = {backoff_delay(4, rng, 0.05, 2.0) for _ in range(50)}
        assert len(delays) > 40  # not a fixed ladder

    def test_default_cap(self):
        rng = random.Random(0)
        assert backoff_delay(50, rng) <= BACKOFF_CAP


def _protocol_for(keys, party_id, data, instance_id):
    share = keys.share_for(party_id)
    operation = make_operation(
        keys.scheme, keys.public_key, share, OperationRequest("coin", data)
    )
    return NonInteractiveProtocol(instance_id, party_id, operation)


@pytest.mark.integration
class TestTcpResendQueue:
    def test_send_retried_after_peer_restart(self):
        """A frame that fails while the peer is down must arrive after the
        peer comes back — the resend queue means no silent drops."""

        async def scenario():
            received: list[bytes] = []

            async def on_b(sender: int, data: bytes) -> None:
                received.append(data)

            node_a = TcpP2P(
                1,
                "127.0.0.1",
                _PORT_A,
                {2: ("127.0.0.1", _PORT_B)},
                dial_retries=2,
                backoff_base=0.01,
                backoff_cap=0.05,
                send_deadline=0.5,
            )
            node_b = TcpP2P(2, "127.0.0.1", _PORT_B, {1: ("127.0.0.1", _PORT_A)})
            node_b.set_handler(on_b)
            await node_a.start()
            await node_b.start()
            try:
                await node_a.send(2, b"before restart")
                for _ in range(100):
                    if received:
                        break
                    await asyncio.sleep(0.02)
                assert received == [b"before restart"]

                # Take the peer down.  stop() severs its accepted inbound
                # connections, so the sender's cached link dies; writes into
                # the dead socket may still be buffered by the kernel, so
                # probe until a failure is detected and queued.
                await node_b.stop()
                node_a._drop_writer(2)  # what the peer's RST does on a real wire
                for i in range(20):
                    await node_a.send(2, b"while down %d" % i)
                    if node_a._resend_queues.get(2):
                        break
                    await asyncio.sleep(0.05)
                assert node_a._resend_queues.get(2), "failure never queued"
                queued = list(node_a._resend_queues[2])

                # Restart the peer on the same port: the background flusher
                # must deliver the queued frames without a new send() call.
                node_b2 = TcpP2P(
                    2, "127.0.0.1", _PORT_B, {1: ("127.0.0.1", _PORT_A)}
                )
                received_after: list[bytes] = []

                async def on_b2(sender: int, data: bytes) -> None:
                    received_after.append(data)

                node_b2.set_handler(on_b2)
                await node_b2.start()
                try:
                    for _ in range(200):
                        if len(received_after) >= len(queued):
                            break
                        await asyncio.sleep(0.02)
                    assert received_after[: len(queued)] == queued
                    assert not node_a._resend_queues.get(2)
                finally:
                    await node_b2.stop()
            finally:
                await node_a.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestExecutorDegradation:
    def test_watchdog_rebroadcasts_once_before_timeout(self, keys_cks05):
        """With no peers answering, the executor re-sends its own share at
        half the timeout budget, then aborts with a structured reason."""

        async def scenario():
            sent = []

            async def send(message):
                sent.append(message)

            manager = InstanceManager(1, send, default_timeout=0.6)
            protocol = _protocol_for(keys_cks05, 1, b"watchdog", "wd-inst")
            manager.start_instance(protocol, "cks05")
            with pytest.raises(ProtocolAbortedError) as err:
                await manager.result("wd-inst")
            assert err.value.reason == "insufficient_shares"
            # Original round-0 broadcast plus exactly one re-broadcast.
            assert len(sent) == 2
            assert sent[0].payload == sent[1].payload
            await manager.shutdown()

        asyncio.run(scenario())

    def test_timeout_releases_tasks_backlog_and_inbox(self, keys_cks05):
        async def scenario():
            async def send(message):
                return None

            manager = InstanceManager(1, send, default_timeout=0.2)
            protocol = _protocol_for(keys_cks05, 1, b"cleanup", "clean-inst")
            manager.start_instance(protocol, "cks05")
            with pytest.raises(ProtocolAbortedError):
                await manager.result("clean-inst")
            await asyncio.sleep(0)  # let the done-callback run
            assert not manager._tasks  # round task cancelled, not leaked
            assert "clean-inst" not in manager._backlog
            assert manager._executors["clean-inst"].inbox.empty()

            # Residual messages after the abort are dropped, not buffered.
            from repro.core.messages import Channel, ProtocolMessage

            residual = ProtocolMessage(
                "clean-inst", 2, 0, Channel.P2P, b"\x00late"
            )
            await manager.handle_network_message(residual)
            assert manager._executors["clean-inst"].inbox.empty()
            assert "clean-inst" not in manager._backlog
            await manager.shutdown()

        asyncio.run(scenario())
