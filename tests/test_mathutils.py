"""Number theory: modular arithmetic, primality, Lagrange interpolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError, DuplicateShareError
from repro.mathutils.lagrange import (
    integer_lagrange_numerator_denominator,
    interpolate_at,
    lagrange_coefficient,
    lagrange_coefficients_at_zero,
    shoup_lagrange_coefficient,
)
from repro.mathutils.modular import (
    batch_inverse,
    crt_pair,
    inverse_mod,
    jacobi_symbol,
    sqrt_mod_prime,
)
from repro.mathutils.primes import (
    is_probable_prime,
    next_prime,
    random_prime,
    random_safe_prime,
)

P256 = 2**256 - 189  # a 256-bit prime


class TestInverseMod:
    def test_basic(self):
        assert (inverse_mod(7, 101) * 7) % 101 == 1

    def test_large(self):
        assert (inverse_mod(123456789, P256) * 123456789) % P256 == 1

    def test_non_invertible(self):
        with pytest.raises(CryptoError):
            inverse_mod(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(CryptoError):
            inverse_mod(1, 0)


class TestBatchInverse:
    def test_matches_individual_inverses(self):
        values = [7, 123456789, P256 - 1, 2]
        assert batch_inverse(values, P256) == [
            inverse_mod(v, P256) for v in values
        ]

    def test_repeated_values(self):
        # Montgomery's trick walks a running product; repeats must not
        # confuse the backward unwind.
        values = [7, 7, 13, 7, 13]
        result = batch_inverse(values, P256)
        for value, inverse in zip(values, result):
            assert value * inverse % P256 == 1

    def test_empty(self):
        assert batch_inverse([], P256) == []

    def test_zero_mid_list_poisons_whole_batch(self):
        with pytest.raises(CryptoError):
            batch_inverse([3, 0, 5], P256)

    def test_modulus_sharing_factor_mid_list_poisons_whole_batch(self):
        # 6 shares a factor with 9; the contract is all-or-nothing — no
        # partial results even though 5 and 7 are individually invertible.
        with pytest.raises(CryptoError):
            batch_inverse([5, 6, 7], 9)

    def test_multiple_of_modulus_rejected(self):
        with pytest.raises(CryptoError):
            batch_inverse([2 * P256], P256)


class TestCrt:
    def test_pair(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_non_coprime_moduli_rejected(self):
        with pytest.raises(CryptoError):
            crt_pair(1, 6, 3, 9)  # gcd(6, 9) = 3

    def test_equal_moduli_rejected(self):
        with pytest.raises(CryptoError):
            crt_pair(2, 7, 3, 7)

    @given(st.integers(0, 10**6))
    def test_round_trip(self, x):
        m1, m2 = 10007, 10009
        assert crt_pair(x % m1, m1, x % m2, m2) == x % (m1 * m2)


class TestJacobi:
    def test_known_values(self):
        # (1/9) = 1; (2/15) = 1; (7/15) = -1.
        assert jacobi_symbol(1, 9) == 1
        assert jacobi_symbol(2, 15) == 1
        assert jacobi_symbol(7, 15) == -1

    def test_zero_when_shared_factor(self):
        assert jacobi_symbol(6, 9) == 0

    def test_even_modulus_rejected(self):
        with pytest.raises(CryptoError):
            jacobi_symbol(3, 8)

    def test_non_positive_modulus_rejected(self):
        with pytest.raises(CryptoError):
            jacobi_symbol(3, 0)
        with pytest.raises(CryptoError):
            jacobi_symbol(3, -7)

    def test_n_equals_one_boundary(self):
        # (a/1) = 1 for every a, including 0 and negatives.
        for a in (-5, 0, 1, 42):
            assert jacobi_symbol(a, 1) == 1

    def test_negative_a_reduces_mod_n(self):
        for a in (-1, -2, -14, 3):
            assert jacobi_symbol(a, 15) == jacobi_symbol(a % 15, 15)

    def test_matches_euler_for_prime(self):
        p = 10007
        for a in (2, 3, 5, 9999):
            euler = pow(a, (p - 1) // 2, p)
            expected = 1 if euler == 1 else -1
            assert jacobi_symbol(a, p) == expected


class TestSqrtModPrime:
    @pytest.mark.parametrize("p", [10007, 10009, P256])  # 3 and 1 mod 4
    def test_roots(self, p):
        for x in (2, 3, 1234):
            a = (x * x) % p
            root = sqrt_mod_prime(a, p)
            assert (root * root) % p == a

    def test_non_residue(self):
        p = 10007
        non_residue = next(a for a in range(2, 100) if pow(a, (p - 1) // 2, p) != 1)
        with pytest.raises(CryptoError):
            sqrt_mod_prime(non_residue, p)

    def test_zero(self):
        assert sqrt_mod_prime(0, 10007) == 0


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 104729, P256):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (0, 1, 4, 100, 104730, 561, 41041, 825265):
            # 561/41041/825265 are Carmichael numbers.
            assert not is_probable_prime(c)

    def test_random_prime_bits(self):
        p = random_prime(64)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_next_prime(self):
        assert next_prime(10) == 11
        assert next_prime(13) == 17
        assert next_prime(0) == 2

    def test_safe_prime(self):
        p, q = random_safe_prime(48)
        assert p == 2 * q + 1
        assert is_probable_prime(p) and is_probable_prime(q)

    def test_tiny_prime_request_rejected(self):
        with pytest.raises(CryptoError):
            random_prime(1)


class TestLagrange:
    def test_reconstruct_constant(self):
        q = 10007
        # f(x) = 42 + 7x over Z_q; shares at 1, 2.
        shares = {1: (42 + 7) % q, 2: (42 + 14) % q}
        coeffs = lagrange_coefficients_at_zero([1, 2], q)
        assert sum(shares[i] * coeffs[i] for i in coeffs) % q == 42

    def test_interpolate_at_point(self):
        q = 10007
        points = {1: 11, 2: 18, 3: 27}  # f(x) = x^2 + 4x + 6
        assert interpolate_at(points, 4, q) == (16 + 16 + 6) % q
        assert interpolate_at(points, 0, q) == 6

    def test_duplicate_points_rejected(self):
        with pytest.raises(DuplicateShareError):
            lagrange_coefficient([1, 1, 2], 1, 0, 10007)

    def test_missing_point_rejected(self):
        with pytest.raises(CryptoError):
            lagrange_coefficient([1, 2], 3, 0, 10007)

    @settings(max_examples=25)
    @given(
        st.lists(st.integers(1, 50), min_size=3, max_size=6, unique=True),
        st.integers(0, 10006),
        st.integers(0, 10006),
        st.integers(0, 10006),
    )
    def test_quadratic_recovery_property(self, xs, a, b, c):
        q = 10007
        poly = lambda x: (a * x * x + b * x + c) % q  # noqa: E731
        xs = xs[:3]
        coeffs = lagrange_coefficients_at_zero(xs, q)
        recovered = sum(poly(x) * coeffs[x] for x in xs) % q
        assert recovered == c

    def test_integer_coefficient_exact(self):
        num, den = integer_lagrange_numerator_denominator([1, 2, 3], 1, 0)
        # λ_1(0) = (0-2)(0-3)/((1-2)(1-3)) = 6/2 = 3.
        assert num / den == 3

    def test_shoup_coefficient_is_integer_and_correct(self):
        import math

        n = 5
        xs = [1, 3, 4]
        delta = math.factorial(n)
        for i in xs:
            num, den = integer_lagrange_numerator_denominator(xs, i, 0)
            scaled = shoup_lagrange_coefficient(n, xs, i)
            assert scaled * den == delta * num  # Δ·λ_i exactly

    def test_shoup_reconstruction(self):
        import math

        # Δ·f(0) = Σ (Δλ_i) f(i) in plain integers for integer polynomials.
        n = 5
        f = lambda x: 17 + 3 * x + 2 * x * x  # noqa: E731
        xs = [2, 4, 5]
        delta = math.factorial(n)
        total = sum(shoup_lagrange_coefficient(n, xs, i) * f(i) for i in xs)
        assert total == delta * f(0)
