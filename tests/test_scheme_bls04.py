"""BLS04: short threshold signatures from pairings."""

import pytest

from repro.errors import (
    InvalidShareError,
    InvalidSignatureError,
    ThresholdNotReachedError,
)
from repro.schemes import bls04
from repro.schemes.bls04 import (
    Bls04Signature,
    Bls04SignatureScheme,
    Bls04SignatureShare,
)


@pytest.fixture(scope="module")
def scheme():
    return Bls04SignatureScheme()


@pytest.fixture(scope="module")
def material():
    return bls04.keygen(1, 4)


class TestHappyPath:
    def test_sign_verify(self, scheme, material):
        public, shares = material
        msg = b"short signature"
        partials = [scheme.partial_sign(shares[i], msg) for i in (0, 2)]
        for p in partials:
            scheme.verify_signature_share(public, msg, p)
        signature = scheme.combine(public, msg, partials)
        scheme.verify(public, msg, signature)

    def test_signature_is_deterministic_across_quorums(self, scheme, material):
        # BLS has unique signatures: every quorum assembles the same σ.
        public, shares = material
        msg = b"uniqueness"
        sig_a = scheme.combine(
            public, msg, [scheme.partial_sign(shares[i], msg) for i in (0, 1)]
        )
        sig_b = scheme.combine(
            public, msg, [scheme.partial_sign(shares[i], msg) for i in (2, 3)]
        )
        assert sig_a.sigma == sig_b.sigma

    def test_signature_is_short(self, scheme, material):
        # One G1 point: 64 bytes of coordinates (paper §3.5: "short
        # signatures ... compared to RSA and DSA").
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"m") for i in (0, 1)]
        signature = scheme.combine(public, b"m", partials)
        assert len(signature.sigma.to_bytes()) == 64

    def test_share_matches_centralized_scheme(self, scheme, material):
        # The combined σ equals H(m)^x — the ordinary BLS signature.
        from repro.mathutils.lagrange import lagrange_coefficients_at_zero
        from repro.sharing.shamir import reconstruct_secret
        from repro.sharing.shamir import ShamirShare

        public, shares = material
        x = reconstruct_secret(
            [ShamirShare(s.id, s.value) for s in shares[:2]], 1, public.pairing.order
        )
        msg = b"centralized equivalence"
        partials = [scheme.partial_sign(shares[i], msg) for i in (0, 1)]
        signature = scheme.combine(public, msg, partials)
        assert signature.sigma == bls04._hash_message(msg) ** x

    def test_metadata(self, scheme):
        assert scheme.info.verification == "Pairings"


class TestNegativePaths:
    def test_forged_share_rejected(self, scheme, material):
        public, shares = material
        good = scheme.partial_sign(shares[0], b"m")
        forged = Bls04SignatureShare(
            good.id, good.sigma * public.pairing.g1.generator()
        )
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, b"m", forged)

    def test_share_replay_on_other_message_rejected(self, scheme, material):
        public, shares = material
        share = scheme.partial_sign(shares[0], b"m1")
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, b"m2", share)

    def test_misattributed_share_rejected(self, scheme, material):
        public, shares = material
        good = scheme.partial_sign(shares[0], b"m")
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(
                public, b"m", Bls04SignatureShare(2, good.sigma)
            )

    def test_id_out_of_range(self, scheme, material):
        public, shares = material
        good = scheme.partial_sign(shares[0], b"m")
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(
                public, b"m", Bls04SignatureShare(11, good.sigma)
            )

    def test_threshold_enforced(self, scheme, material):
        public, shares = material
        with pytest.raises(ThresholdNotReachedError):
            scheme.combine(public, b"m", [scheme.partial_sign(shares[0], b"m")])

    def test_wrong_message_verification_fails(self, scheme, material):
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"a") for i in (0, 1)]
        signature = scheme.combine(public, b"a", partials)
        with pytest.raises(InvalidSignatureError):
            scheme.verify(public, b"b", signature)

    def test_identity_signature_rejected(self, scheme, material):
        public, _ = material
        with pytest.raises(InvalidSignatureError):
            scheme.verify(
                public, b"m", Bls04Signature(public.pairing.g1.identity())
            )


class TestBatchVerification:
    def test_valid_batch_accepted(self, scheme, material):
        public, shares = material
        msg = b"batch"
        partials = [scheme.partial_sign(shares[i], msg) for i in range(4)]
        scheme.verify_share_batch(public, msg, partials)

    def test_one_forged_share_fails_the_batch(self, scheme, material):
        public, shares = material
        msg = b"batch"
        partials = [scheme.partial_sign(shares[i], msg) for i in range(3)]
        forged = Bls04SignatureShare(
            4, partials[0].sigma * public.pairing.g1.generator()
        )
        with pytest.raises(InvalidShareError):
            scheme.verify_share_batch(public, msg, [*partials, forged])

    def test_swapped_ids_fail_the_batch(self, scheme, material):
        public, shares = material
        msg = b"batch"
        a = scheme.partial_sign(shares[0], msg)
        b = scheme.partial_sign(shares[1], msg)
        swapped = [
            Bls04SignatureShare(2, a.sigma),
            Bls04SignatureShare(1, b.sigma),
        ]
        with pytest.raises(InvalidShareError):
            scheme.verify_share_batch(public, msg, swapped)

    def test_empty_batch_is_trivially_valid(self, scheme, material):
        public, _ = material
        scheme.verify_share_batch(public, b"m", [])

    def test_out_of_range_id_rejected(self, scheme, material):
        public, shares = material
        share = scheme.partial_sign(shares[0], b"m")
        with pytest.raises(InvalidShareError):
            scheme.verify_share_batch(
                public, b"m", [Bls04SignatureShare(9, share.sigma)]
            )

    def test_batch_is_faster_than_sequential(self, scheme, material):
        import time

        public, shares = material
        msg = b"perf"
        partials = [scheme.partial_sign(shares[i], msg) for i in range(4)]
        start = time.perf_counter()
        scheme.verify_share_batch(public, msg, partials)
        batch_time = time.perf_counter() - start
        start = time.perf_counter()
        for share in partials:
            scheme.verify_signature_share(public, msg, share)
        sequential_time = time.perf_counter() - start
        assert batch_time < sequential_time


class TestSerialization:
    def test_share_round_trip(self, scheme, material):
        public, shares = material
        share = scheme.partial_sign(shares[0], b"ser")
        restored = Bls04SignatureShare.from_bytes(share.to_bytes())
        scheme.verify_signature_share(public, b"ser", restored)

    def test_signature_round_trip(self, scheme, material):
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"ser") for i in (0, 1)]
        sig = scheme.combine(public, b"ser", partials)
        restored = Bls04Signature.from_bytes(sig.to_bytes())
        scheme.verify(public, b"ser", restored)

    def test_public_key_round_trip(self, material):
        public, _ = material
        restored = bls04.Bls04PublicKey.from_bytes(public.to_bytes())
        assert restored.y == public.y
        assert restored.verification_keys == public.verification_keys
