"""The blockchain host platform: types, state machine, validators, Θ on top."""

import asyncio

import pytest

from repro.chain import AccountState, Block, Transaction, ValidatorNode, block_hash
from repro.chain.types import genesis_parent
from repro.network.local import LocalHub


class TestTypes:
    def test_transaction_round_trip(self):
        from repro.serialization import Reader

        tx = Transaction("alice", b"mint alice 100", encrypted=False)
        reader = Reader(tx.to_bytes())
        restored = Transaction.read_from(reader)
        reader.finish()
        assert restored == tx

    def test_block_round_trip(self):
        block = Block(
            3,
            bytes(32),
            2,
            (Transaction("a", b"x"), Transaction("b", b"y", encrypted=True)),
        )
        assert Block.from_bytes(block.to_bytes()) == block

    def test_block_hash_is_content_addressed(self):
        a = Block(1, genesis_parent(), 1, (Transaction("a", b"x"),))
        b = Block(1, genesis_parent(), 1, (Transaction("a", b"y"),))
        assert block_hash(a) != block_hash(b)
        assert block_hash(a) == block_hash(a)

    def test_tx_id_stable(self):
        tx = Transaction("carol", b"transfer carol dave 5")
        assert tx.tx_id == Transaction("carol", b"transfer carol dave 5").tx_id


class TestAccountState:
    def test_mint_and_transfer(self):
        state = AccountState()
        state.execute(b"mint alice 100")
        state.execute(b"transfer alice bob 30")
        assert state.balances == {"alice": 70, "bob": 30}
        assert len(state.applied) == 2

    def test_overdraft_rejected(self):
        state = AccountState()
        state.execute(b"mint alice 10")
        state.execute(b"transfer alice bob 50")
        assert state.balances == {"alice": 10}
        assert len(state.rejected) == 1

    def test_malformed_commands_journaled(self):
        state = AccountState()
        for bad in (b"", b"steal everything", b"mint alice ten", b"mint alice -5",
                    b"\xff\xfe"):
            state.execute(bad)
        assert state.balances == {}
        assert len(state.rejected) == 5

    def test_state_root_deterministic_and_order_insensitive(self):
        a, b = AccountState(), AccountState()
        a.execute(b"mint x 1")
        a.execute(b"mint y 2")
        b.execute(b"mint y 2")
        b.execute(b"mint x 1")
        assert a.state_root() == b.state_root()

    def test_state_root_changes_with_balances(self):
        a, b = AccountState(), AccountState()
        a.execute(b"mint x 1")
        b.execute(b"mint x 2")
        assert a.state_root() != b.state_root()


def _make_chain(n=4):
    hub = LocalHub(latency=lambda a, b: 0.001)
    validators = [
        ValidatorNode(i, n, hub.endpoint(i)) for i in range(1, n + 1)
    ]
    return hub, validators


@pytest.mark.integration
class TestValidators:
    def test_replicated_execution(self):
        async def scenario():
            hub, validators = _make_chain()
            for validator in validators:
                await validator.start()
            try:
                validators[0].submit_transaction(Transaction("faucet", b"mint alice 100"))
                validators[0].submit_transaction(
                    Transaction("alice", b"transfer alice bob 25")
                )
                await validators[0].propose()
                blocks = await asyncio.gather(
                    *(v.await_height(1) for v in validators)
                )
                assert len({block_hash(b) for b in blocks}) == 1
                roots = {v.state_root() for v in validators}
                assert len(roots) == 1
                assert validators[2].state.balances == {"alice": 75, "bob": 25}
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())

    def test_concurrent_proposals_are_totally_ordered(self):
        async def scenario():
            hub, validators = _make_chain()
            for validator in validators:
                await validator.start()
            try:
                validators[0].submit_transaction(Transaction("f", b"mint a 1"))
                validators[1].submit_transaction(Transaction("f", b"mint b 2"))
                validators[2].submit_transaction(Transaction("f", b"mint c 3"))
                await asyncio.gather(
                    validators[0].propose(),
                    validators[1].propose(),
                    validators[2].propose(),
                )
                await asyncio.gather(*(v.await_height(3) for v in validators))
                chains = [
                    [block_hash(b) for b in v.chain] for v in validators
                ]
                assert all(c == chains[0] for c in chains)
                assert all(
                    v.state.balances == {"a": 1, "b": 2, "c": 3}
                    for v in validators
                )
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())

    def test_parent_links(self):
        async def scenario():
            hub, validators = _make_chain(3)
            for validator in validators:
                await validator.start()
            try:
                for round_number in range(3):
                    validators[0].submit_transaction(
                        Transaction("f", b"mint acct %d" % (round_number + 1))
                    )
                    await validators[0].propose()
                await validators[1].await_height(3)
                chain = validators[1].chain
                assert chain[0].parent == genesis_parent()
                assert chain[1].parent == block_hash(chain[0])
                assert chain[2].parent == block_hash(chain[1])
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())

    def test_empty_mempool_proposes_nothing(self):
        async def scenario():
            hub, validators = _make_chain(2)
            for validator in validators:
                await validator.start()
            try:
                assert await validators[0].propose() == 0
                assert validators[0].chain == []
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())

    def test_encrypted_tx_without_decryptor_is_rejected(self):
        async def scenario():
            hub, validators = _make_chain(2)
            for validator in validators:
                await validator.start()
            try:
                validators[0].submit_transaction(
                    Transaction("u", b"\x01\x02", encrypted=True)
                )
                await validators[0].propose()
                await validators[0].await_height(1)
                assert validators[0].state.balances == {}
                assert validators[0].state.rejected
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestFrontRunningProtectedChain:
    def test_encrypted_mempool_end_to_end(self, keys_sg02):
        """Fig. 1 + §2.3: ciphertexts ordered first, decrypted after, by Θ."""

        async def scenario():
            from repro.schemes import get_scheme
            from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs
            from repro.network.local import LocalHub as ThetaHub

            n = 4
            # The Θ-network (in-process transport, co-located with validators).
            theta_hub = ThetaHub(latency=lambda a, b: 0.001)
            theta_nodes = []
            for config in make_local_configs(n, 1, transport="local", rpc_base_port=0):
                node = ThetacryptNode(config, transport=theta_hub.endpoint(config.node_id))
                node.install_key(
                    "mempool",
                    keys_sg02.scheme,
                    keys_sg02.public_key,
                    keys_sg02.share_for(config.node_id),
                )
                await node.start()
                theta_nodes.append(node)
            theta_client = ThetacryptClient(
                {t.config.node_id: t.rpc_address for t in theta_nodes}
            )

            async def decryptor(ciphertext: bytes) -> bytes:
                return await theta_client.decrypt("mempool", ciphertext)

            hub, validators = (None, None)
            chain_hub = LocalHub(latency=lambda a, b: 0.001)
            validators = [
                ValidatorNode(i, n, chain_hub.endpoint(i), decryptor=decryptor)
                for i in range(1, n + 1)
            ]
            for validator in validators:
                await validator.start()
            try:
                cipher = get_scheme("sg02")
                commands = [b"mint alice 1000", b"transfer alice bob 400"]
                for command in commands:
                    ciphertext = cipher.encrypt(
                        keys_sg02.public_key, command, b""
                    ).to_bytes()
                    validators[0].submit_transaction(
                        Transaction("user", ciphertext, encrypted=True)
                    )
                # Nothing about the plaintext is visible in the mempool.
                for tx in validators[0].mempool:
                    assert b"alice" not in tx.payload
                await validators[0].propose()
                await asyncio.gather(*(v.await_height(1) for v in validators))
                assert all(
                    v.state.balances == {"alice": 600, "bob": 400}
                    for v in validators
                )
                assert len({v.state_root() for v in validators}) == 1
            finally:
                for validator in validators:
                    await validator.stop()
                await theta_client.close()
                for node in theta_nodes:
                    await node.stop()

        asyncio.run(scenario())
