"""CKS05: threshold coin tossing with DLEQ-validated shares."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidShareError, ThresholdNotReachedError
from repro.schemes import cks05
from repro.schemes.cks05 import Cks05Coin, Cks05CoinShare
from repro.schemes.dleq import DleqProof


@pytest.fixture(scope="module")
def coin():
    return Cks05Coin()


@pytest.fixture(scope="module")
def material():
    return cks05.keygen(2, 5)


class TestHappyPath:
    def test_toss_and_verify(self, coin, material):
        public, shares = material
        name = b"round-1"
        coin_shares = [coin.create_coin_share(shares[i], name) for i in (0, 2, 4)]
        for share in coin_shares:
            coin.verify_coin_share(public, name, share)
        value = coin.combine(public, name, coin_shares)
        assert len(value) == 32

    def test_uniqueness_across_quorums(self, coin, material):
        """The defining property: any quorum derives the same coin."""
        public, shares = material
        name = b"round-2"
        value_a = coin.combine(
            public, name, [coin.create_coin_share(shares[i], name) for i in (0, 1, 2)]
        )
        value_b = coin.combine(
            public, name, [coin.create_coin_share(shares[i], name) for i in (2, 3, 4)]
        )
        assert value_a == value_b

    def test_different_names_different_coins(self, coin, material):
        public, shares = material
        values = set()
        for name in (b"a", b"b", b"c", b"d"):
            cs = [coin.create_coin_share(shares[i], name) for i in (0, 1, 2)]
            values.add(coin.combine(public, name, cs))
        assert len(values) == 4

    def test_coin_bit(self, coin):
        assert Cks05Coin.coin_bit(b"\x00" + bytes(31)) == 0
        assert Cks05Coin.coin_bit(b"\x01" + bytes(31)) == 1
        assert Cks05Coin.coin_bit(b"\xfe" + bytes(31)) == 0

    def test_bit_distribution_roughly_balanced(self, coin, material):
        public, shares = material
        bits = []
        for round_number in range(24):
            name = b"balance-%d" % round_number
            cs = [coin.create_coin_share(shares[i], name) for i in (0, 1, 2)]
            bits.append(Cks05Coin.coin_bit(coin.combine(public, name, cs)))
        assert 2 <= sum(bits) <= 22  # astronomically unlikely to fail

    def test_metadata(self, coin):
        assert coin.info.kind.value == "randomness"


class TestNegativePaths:
    def test_forged_share_rejected(self, coin, material):
        public, shares = material
        name = b"forged"
        good = coin.create_coin_share(shares[0], name)
        forged = Cks05CoinShare(
            good.id, good.sigma * public.group.generator(), good.proof
        )
        with pytest.raises(InvalidShareError):
            coin.verify_coin_share(public, name, forged)

    def test_share_replay_on_other_name_rejected(self, coin, material):
        public, shares = material
        share = coin.create_coin_share(shares[0], b"name-1")
        with pytest.raises(InvalidShareError):
            coin.verify_coin_share(public, b"name-2", share)

    def test_share_id_out_of_range(self, coin, material):
        public, shares = material
        good = coin.create_coin_share(shares[0], b"n")
        with pytest.raises(InvalidShareError):
            coin.verify_coin_share(
                public, b"n", Cks05CoinShare(7, good.sigma, good.proof)
            )

    def test_bogus_proof_rejected(self, coin, material):
        public, shares = material
        good = coin.create_coin_share(shares[0], b"n")
        bad = Cks05CoinShare(good.id, good.sigma, DleqProof(1, 2))
        with pytest.raises(InvalidShareError):
            coin.verify_coin_share(public, b"n", bad)

    def test_threshold_enforced(self, coin, material):
        public, shares = material
        cs = [coin.create_coin_share(shares[i], b"n") for i in (0, 1)]
        with pytest.raises(ThresholdNotReachedError):
            coin.combine(public, b"n", cs)


class TestSerialization:
    def test_share_round_trip(self, coin, material):
        public, shares = material
        share = coin.create_coin_share(shares[0], b"ser")
        restored = Cks05CoinShare.from_bytes(share.to_bytes(), public.group)
        coin.verify_coin_share(public, b"ser", restored)

    def test_public_key_round_trip(self, material):
        public, _ = material
        restored = cks05.Cks05PublicKey.from_bytes(public.to_bytes())
        assert restored.h == public.h
        assert restored.verification_keys == public.verification_keys


@settings(max_examples=10, deadline=None)
@given(st.binary(min_size=1, max_size=64))
def test_coin_uniqueness_property(name):
    """For arbitrary names, two disjoint-ish quorums agree on the value."""
    coin = Cks05Coin()
    public, shares = _MATERIAL
    a = coin.combine(
        public, name, [coin.create_coin_share(shares[i], name) for i in (0, 1, 2)]
    )
    b = coin.combine(
        public, name, [coin.create_coin_share(shares[i], name) for i in (1, 3, 4)]
    )
    assert a == b


_MATERIAL = cks05.keygen(2, 5)
