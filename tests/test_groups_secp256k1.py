"""secp256k1 backend + cross-curve scheme portability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.groups import get_group, list_groups
from repro.groups.secp256k1 import N, P, secp256k1

scalars = st.integers(min_value=1, max_value=N - 1)


@pytest.fixture(scope="module")
def group():
    return secp256k1()


class TestCurve:
    def test_registered(self):
        assert "secp256k1" in list_groups()
        assert get_group("secp256k1") is secp256k1()

    def test_generator_on_curve(self, group):
        x, y = group.generator().affine()
        assert (y * y - x * x * x - 7) % P == 0

    def test_generator_order(self, group):
        g = group.generator()
        assert (g**5 * g ** (N - 5)).is_infinity()

    def test_known_multiple(self, group):
        # 2·G from the SEC2 test vectors.
        x, _ = (group.generator() ** 2).affine()
        assert x == 0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5

    @settings(max_examples=8)
    @given(scalars, scalars)
    def test_exponent_addition(self, a, b):
        group = secp256k1()
        g = group.generator()
        assert (g**a) * (g**b) == g ** ((a + b) % N)

    def test_inverse(self, group):
        g = group.generator() ** 1234
        assert (g * g.inverse()).is_infinity()


class TestEncoding:
    def test_compressed_round_trip(self, group):
        for scalar in (1, 2, 31337, N - 1):
            point = group.generator() ** scalar
            restored = group.element_from_bytes(point.to_bytes())
            assert restored == point
            assert len(point.to_bytes()) == 33

    def test_generator_sec1_vector(self, group):
        assert group.generator().to_bytes().hex() == (
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
        )

    def test_identity_round_trip(self, group):
        assert group.element_from_bytes(bytes(33)).is_infinity()

    def test_bad_prefix_rejected(self, group):
        with pytest.raises(SerializationError):
            group.element_from_bytes(b"\x05" + bytes(32))

    def test_off_curve_rejected(self, group):
        # x = 0 gives y² = 7, a non-residue mod p.
        with pytest.raises(SerializationError):
            group.element_from_bytes(b"\x02" + bytes(32))

    def test_wrong_length_rejected(self, group):
        with pytest.raises(SerializationError):
            group.element_from_bytes(bytes(32))


class TestHashToCurve:
    def test_deterministic_and_valid(self, group):
        h = group.hash_to_element(b"btc")
        assert h == group.hash_to_element(b"btc")
        x, y = h.affine()
        assert (y * y - x * x * x - 7) % P == 0


class TestSchemePortability:
    """The §3.5 promise: new group, zero scheme changes."""

    def test_cks05_on_secp256k1(self):
        from repro.schemes import cks05, get_scheme

        public, shares = cks05.keygen(1, 4, group_name="secp256k1")
        coin = get_scheme("cks05")
        cs = [coin.create_coin_share(shares[i], b"btc-coin") for i in (0, 2)]
        for share in cs:
            coin.verify_coin_share(public, b"btc-coin", share)
        value_a = coin.combine(public, b"btc-coin", cs)
        other = [coin.create_coin_share(shares[i], b"btc-coin") for i in (1, 3)]
        assert coin.combine(public, b"btc-coin", other) == value_a

    def test_sg02_on_secp256k1(self):
        from repro.schemes import get_scheme, sg02

        public, shares = sg02.keygen(1, 4, group_name="secp256k1")
        cipher = get_scheme("sg02")
        ct = cipher.encrypt(public, b"cross-curve secret", b"l")
        dec = [cipher.create_decryption_share(shares[i], ct) for i in (0, 3)]
        for share in dec:
            cipher.verify_decryption_share(public, ct, share)
        assert cipher.combine(public, ct, dec) == b"cross-curve secret"

    def test_kg20_on_secp256k1(self):
        """FROST over secp256k1 — a taproot-style threshold Schnorr."""
        from repro.schemes import get_scheme, kg20

        public, shares = kg20.keygen(1, 4, group_name="secp256k1")
        scheme = get_scheme("kg20")
        ids = [1, 4]
        nonces = {i: scheme.commit(shares[i - 1]) for i in ids}
        commitments = [nonces[i][1] for i in ids]
        z = [
            scheme.sign_round(shares[i - 1], b"taproot", nonces[i][0], commitments)
            for i in ids
        ]
        signature = scheme.combine(public, b"taproot", z, commitments)
        scheme.verify(public, b"taproot", signature)

    def test_dkg_on_secp256k1(self):
        from repro.schemes.dkg import dkg_all_parties

        results = dkg_all_parties(1, 4, group_name="secp256k1")
        assert len({r.group_key.to_bytes() for r in results}) == 1

    def test_serialization_round_trips_via_registry(self):
        from repro.schemes import cks05

        public, _ = cks05.keygen(1, 4, group_name="secp256k1")
        restored = cks05.Cks05PublicKey.from_bytes(public.to_bytes())
        assert restored.group_name == "secp256k1"
        assert restored.h == public.h
