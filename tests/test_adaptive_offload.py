"""Adaptive offload policy, blob caching, coalescing, and pool healing.

The PR-6 regression fix in four layers, each tested at its own seam:

* :class:`OffloadPolicy` — the inline-vs-offload decision matrix over
  core count, queue depth, and latency EWMAs (pure logic, no processes);
* :mod:`repro.workers.blobs` — content-addressed key-material caching,
  so exports cross the process boundary once per worker, not per task;
* digest-referencing task specs — in-process miss/install/batch
  semantics, plus the pool's one-retry-with-blobs behaviour end to end;
* :class:`CryptoCoalescer` — cross-request batching over a fake pool
  (window formation, per-item error isolation, failure fan-out) and the
  instance manager's identical-request folding counter;
* :class:`CryptoPool` healing — a SIGKILLed worker observed by several
  in-flight tasks counts *one* crash, and ``worker_pids`` never raises.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.core.orchestration.coalescing import CryptoCoalescer
from repro.errors import ConfigurationError, CryptoError
from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.schemes.keystore import export_key_share, export_public_key
from repro.service.config import NodeConfig, make_local_configs
from repro.service.node import ThetacryptNode
from repro.telemetry import MetricRegistry, parse_text, render_text
from repro.workers import (
    BlobCacheMissError,
    BlobStore,
    CryptoPool,
    CryptoPoolUnavailable,
    OffloadPolicy,
    content_digest,
    parent_store,
    register_export,
)
from repro.workers import tasks as pool_tasks


# ---------------------------------------------------------------------------
# The decision matrix.
# ---------------------------------------------------------------------------


class TestOffloadPolicy:
    def test_mode_validation(self):
        with pytest.raises(ConfigurationError):
            OffloadPolicy(mode="sometimes")

    def test_forced_modes_short_circuit(self):
        always = OffloadPolicy(mode="always", cpu_count=1)
        decision = always.decide("op", queue_depth=10_000, workers=1)
        assert (decision.choice, decision.reason) == ("offload", "forced")
        assert decision.offload

        never = OffloadPolicy(mode="never", cpu_count=64)
        decision = never.decide("op", queue_depth=0, workers=2)
        assert (decision.choice, decision.reason) == ("inline", "forced")
        assert not decision.offload

    def test_few_cores_keeps_everything_inline(self):
        policy = OffloadPolicy(cpu_count=1)
        # Even with EWMAs saying the pool is fast, no spare core = inline.
        policy.observe("op", "pool", 0.001)
        policy.observe("op", "inline", 1.0)
        for _ in range(5):
            decision = policy.decide("op", queue_depth=0, workers=2)
            assert (decision.choice, decision.reason) == ("inline", "few_cores")

    def test_queue_gate_spills_inline(self):
        policy = OffloadPolicy(cpu_count=8, max_queue_per_worker=4)
        below = policy.decide("op", queue_depth=7, workers=2)
        assert below.offload
        at_limit = policy.decide("op", queue_depth=8, workers=2)
        assert (at_limit.choice, at_limit.reason) == ("inline", "queue_full")

    def test_no_data_then_pool_ok(self):
        policy = OffloadPolicy(cpu_count=8)
        first = policy.decide("op", queue_depth=0, workers=2)
        assert (first.choice, first.reason) == ("offload", "no_data")
        # With only one path observed there is nothing to compare: offload.
        policy.observe("op", "pool", 0.010)
        ruled = policy.decide("op", queue_depth=0, workers=2)
        assert (ruled.choice, ruled.reason) == ("offload", "pool_ok")
        # Pool comparable to inline (within the margin): still offload.
        policy.observe("op", "inline", 0.009)
        ruled = policy.decide("op", queue_depth=0, workers=2)
        assert (ruled.choice, ruled.reason) == ("offload", "pool_ok")

    def test_pool_slower_suppresses_with_probe_cadence(self):
        policy = OffloadPolicy(cpu_count=8, slowdown_margin=1.25, probe_every=4)
        policy.observe("op", "inline", 0.001)
        policy.observe("op", "pool", 0.010)  # 10x slower: suppressed
        choices = [
            policy.decide("op", queue_depth=0, workers=2) for _ in range(8)
        ]
        reasons = [(d.choice, d.reason) for d in choices]
        assert reasons == [
            ("inline", "pool_slower"),
            ("inline", "pool_slower"),
            ("inline", "pool_slower"),
            ("offload", "probe"),
        ] * 2
        # EWMAs are per-op: a different op is unaffected.
        other = policy.decide("other", queue_depth=0, workers=2)
        assert (other.choice, other.reason) == ("offload", "no_data")

    def test_ewma_per_item_normalization_and_blend(self):
        policy = OffloadPolicy(cpu_count=8, alpha=0.5)
        policy.observe("op", "pool", 1.0, items=10)
        assert policy.ewma("op", "pool") == pytest.approx(0.1)
        policy.observe("op", "pool", 0.2, items=1)
        # 0.5 * 0.2 + 0.5 * 0.1
        assert policy.ewma("op", "pool") == pytest.approx(0.15)
        assert policy.ewma("op", "inline") is None

    def test_stats_aggregate_decisions_and_ewmas(self):
        policy = OffloadPolicy(cpu_count=1)
        for _ in range(3):
            policy.decide("a", queue_depth=0, workers=2)
        policy.observe("a", "inline", 0.004)
        stats = policy.stats()
        assert stats["mode"] == "adaptive"
        assert stats["cores"] == 1
        assert stats["decisions"] == {"inline": 3}
        assert stats["reasons"] == {"few_cores": 3}
        assert stats["ewma_ms"]["a"]["inline"] == pytest.approx(4.0)


class TestPoolPolicyWiring:
    def test_decide_exports_decision_metric(self):
        registry = MetricRegistry()
        pool = CryptoPool(
            2, registry=registry, policy=OffloadPolicy(cpu_count=1)
        )
        decision = pool.decide("bls04:create_share")
        assert (decision.choice, decision.reason) == ("inline", "few_cores")
        parsed = parse_text(render_text(registry))
        counted = sum(
            value
            for (name, labels), value in parsed.items()
            if name == "repro_crypto_pool_policy_decisions_total"
            and dict(labels)
            == {
                "op": "bls04:create_share",
                "choice": "inline",
                "reason": "few_cores",
            }
        )
        assert counted == 1
        assert pool.stats()["policy"]["reasons"] == {"few_cores": 1}

    def test_observe_discards_warm_spawn_samples(self):
        pool = CryptoPool(2, registry=MetricRegistry())
        # What _ensure_executor sets right after a spawn: the first
        # `workers` pool samples price process start-up, not offload.
        pool._observe_skip = 2
        pool.observe("op", "pool", 5.0)
        pool.observe("op", "pool", 5.0)
        assert pool.policy.ewma("op", "pool") is None
        pool.observe("op", "pool", 0.010)
        assert pool.policy.ewma("op", "pool") == pytest.approx(0.010)
        # Inline samples are never start-up-contaminated: not skipped.
        pool._observe_skip = 2
        pool.observe("op", "inline", 0.002)
        assert pool.policy.ewma("op", "inline") == pytest.approx(0.002)

    def test_config_validates_policy_fields(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=1, parties=4, threshold=1, offload_policy="no")
        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=1, parties=4, threshold=1, coalesce_window=-0.1)
        config = make_local_configs(4, 1, offload_policy="never")[0]
        assert NodeConfig.from_json(config.to_json()).offload_policy == "never"


# ---------------------------------------------------------------------------
# Content-addressed blobs.
# ---------------------------------------------------------------------------


class TestBlobStore:
    def test_put_and_get_round_trip(self):
        store = BlobStore(capacity=4)
        digest = store.put(b"blob bytes")
        assert digest == content_digest(b"blob bytes")
        assert digest in store
        assert store.get_blob(digest) == b"blob bytes"
        stats = store.stats()
        assert stats["hits"] == 1 and stats["installs"] == 1

    def test_miss_and_eviction_counters(self):
        store = BlobStore(capacity=2)
        first = store.put(b"one")
        store.put(b"two")
        store.put(b"three")  # evicts "one" (LRU-oldest)
        assert store.get_blob(first) is None
        stats = store.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        assert stats["misses"] == 1

    def test_get_blob_refreshes_lru_position(self):
        store = BlobStore(capacity=2)
        first = store.put(b"one")
        second = store.put(b"two")
        store.get_blob(first)  # "one" becomes most-recent
        store.put(b"three")  # evicts "two", not "one"
        assert store.get_blob(first) == b"one"
        assert store.get_blob(second) is None

    def test_get_object_parses_once_per_residency(self):
        store = BlobStore(capacity=2)
        digest = store.put(b"payload")
        calls = []

        def loader(blob: bytes) -> str:
            calls.append(blob)
            return blob.decode()

        assert store.get_object(digest, loader) == "payload"
        assert store.get_object(digest, loader) == "payload"
        assert len(calls) == 1
        # Eviction drops the parsed copy with the blob.
        store.put(b"a")
        store.put(b"b")
        assert store.get_object(digest, loader) is None

    def test_register_export_serializes_once_per_object(self, keys_bls04):
        calls = []
        share = keys_bls04.share_for(4)

        def exporter() -> bytes:
            calls.append(1)
            return export_key_share("bls04", share)

        first = register_export("share", "bls04", share, exporter)
        second = register_export("share", "bls04", share, exporter)
        assert first == second
        assert len(calls) == 1
        assert parent_store().get_blob(first) is not None


# ---------------------------------------------------------------------------
# Digest-referencing task specs (in-process: pure logic, no pool).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def digest_material():
    """Fresh key material with unregistered export blobs.

    The worker-side blob cache (``tasks._worker_blobs``) is process-global
    and entries persist across tests, so the cache-miss assertions need
    digests no earlier test can have installed — fresh keys guarantee it.
    """
    material = generate_keys("bls04", 1, 3)
    public_blob = export_public_key("bls04", material.public_key)
    share_blobs = {
        party: export_key_share("bls04", material.share_for(party))
        for party in (1, 2, 3)
    }
    return material, public_blob, share_blobs


def _digest_spec(public_blob: bytes, share_blob: bytes | None, data: bytes) -> dict:
    spec = {
        "scheme": "bls04",
        "public_digest": content_digest(public_blob),
        "kind": "sign",
        "data": data,
    }
    if share_blob is not None:
        spec["share_digest"] = content_digest(share_blob)
    return spec


class TestDigestSpecs:
    def test_miss_then_piggyback_install_then_hit(self, digest_material):
        material, public_blob, share_blobs = digest_material
        message = b"digest spec round trip"
        spec = _digest_spec(public_blob, share_blobs[1], message)
        with pytest.raises(BlobCacheMissError) as excinfo:
            pool_tasks.create_share(spec)
        assert sorted(excinfo.value.digests) == sorted(
            [spec["public_digest"], spec["share_digest"]]
        )
        blobs = {
            spec["public_digest"]: public_blob,
            spec["share_digest"]: share_blobs[1],
        }
        pooled = pool_tasks.create_share(spec, blobs=blobs)
        # The piggybacked blobs are now cached: same spec, no blobs needed.
        assert pool_tasks.create_share(spec) == pooled
        # Bit-identity with the legacy inline-blob spec.
        legacy = pool_tasks.create_share(
            {
                "scheme": "bls04",
                "public": public_blob,
                "kind": "sign",
                "data": message,
                "share": share_blobs[1],
            }
        )
        assert pooled == legacy

    def test_batch_matches_sequential_bit_identical(self, digest_material):
        material, public_blob, share_blobs = digest_material
        message = b"batch vs sequential"
        specs = [
            _digest_spec(public_blob, share_blobs[party], message)
            for party in (1, 2, 3)
        ]
        blobs = {content_digest(public_blob): public_blob}
        blobs.update(
            {content_digest(blob): blob for blob in share_blobs.values()}
        )
        batched = pool_tasks.create_share_batch(specs, blobs=blobs)
        sequential = [pool_tasks.create_share(spec) for spec in specs]
        assert [tag for tag, _ in batched] == ["ok", "ok", "ok"]
        assert [value for _, value in batched] == sequential

        # And the batched payloads verify like any others.
        verify = _digest_spec(public_blob, None, message)
        verdicts = pool_tasks.verify_shares(
            verify, [value for _, value in batched]
        )
        assert verdicts == [None, None, None]

    def test_batch_isolates_a_bad_item(self, digest_material):
        material, public_blob, share_blobs = digest_material
        good = _digest_spec(public_blob, share_blobs[1], b"good request")
        bad = dict(good, kind="no-such-kind")
        results = pool_tasks.create_share_batch([good, bad])
        assert results[0][0] == "ok"
        assert results[1][0] == "error"
        assert "no-such-kind" in results[1][1]

    def test_batch_prescans_all_missing_digests(self, digest_material):
        material, public_blob, share_blobs = digest_material
        resolvable = _digest_spec(public_blob, share_blobs[1], b"x")
        phantom = content_digest(b"never installed anywhere")
        unresolvable = dict(resolvable, share_digest=phantom)
        with pytest.raises(BlobCacheMissError) as excinfo:
            pool_tasks.create_share_batch([resolvable, unresolvable])
        assert phantom in excinfo.value.digests

    def test_verify_multi_matches_per_group(self, digest_material):
        material, public_blob, share_blobs = digest_material
        messages = [b"multi group A", b"multi group B"]
        groups = []
        for message in messages:
            payloads = [
                pool_tasks.create_share(
                    _digest_spec(public_blob, share_blobs[party], message)
                )
                for party in (1, 2)
            ]
            groups.append((_digest_spec(public_blob, None, message), payloads))
        multi = pool_tasks.verify_shares_multi(groups)
        singles = [
            pool_tasks.verify_shares(spec, payloads)
            for spec, payloads in groups
        ]
        assert multi == singles == [[None, None], [None, None]]


@pytest.mark.slow
class TestPoolBlobRetry:
    def test_cache_miss_retries_once_with_blobs(self):
        """A digest registered *after* worker spawn round-trips via one
        retry; a digest nobody holds degrades to inline fallback."""
        registry = MetricRegistry()
        pool = CryptoPool(
            1, registry=registry, policy=OffloadPolicy(mode="always")
        )

        async def scenario():
            # Spawn + warm first: the warm install snapshots the parent
            # store *now*, so anything registered later is missing.
            await pool.run("health", pool_tasks.worker_health)
            material = generate_keys("bls04", 1, 3)
            public_digest = register_export(
                "public",
                "bls04",
                material.public_key,
                lambda: export_public_key("bls04", material.public_key),
            )
            share = material.share_for(1)
            share_digest = register_export(
                "share",
                "bls04",
                share,
                lambda: export_key_share("bls04", share),
            )
            spec = {
                "scheme": "bls04",
                "public_digest": public_digest,
                "kind": "sign",
                "data": b"late key install",
                "share_digest": share_digest,
            }
            payload = await pool.run(
                "bls04:create_share", pool_tasks.create_share, spec
            )
            assert isinstance(payload, bytes) and payload

            # Steady state: the retry installed the blobs for good.
            again = await pool.run(
                "bls04:create_share", pool_tasks.create_share, spec
            )
            assert again == payload

            # A digest the parent store does not hold either cannot run
            # pooled at all: infrastructure fallback, not a crash.
            phantom = dict(spec, share_digest=content_digest(b"phantom"))
            with pytest.raises(CryptoPoolUnavailable):
                await pool.run(
                    "bls04:create_share", pool_tasks.create_share, phantom
                )
            await pool.close()

        asyncio.run(scenario())
        stats = pool.stats()
        assert stats["blob_retries"] == 1
        assert stats["tasks_ok"] == 3  # health + first run + steady-state
        assert stats["fallbacks"] == 1  # the phantom digest
        assert stats["crashes"] == 0


# ---------------------------------------------------------------------------
# Pool healing and introspection hardening.
# ---------------------------------------------------------------------------


class TestWorkerPidsDefensive:
    def test_empty_before_spawn_and_on_breakage(self):
        pool = CryptoPool(1, registry=MetricRegistry())
        assert pool.worker_pids == []

        class FreshlyBrokenExecutor:
            """What a crashing executor can look like mid-heal."""

            @property
            def _processes(self):
                raise RuntimeError("dict mutated during iteration")

        pool._executor = FreshlyBrokenExecutor()
        assert pool.worker_pids == []

        class StrippedExecutor:
            pass  # no _processes attribute at all (implementation drift)

        pool._executor = StrippedExecutor()
        assert pool.worker_pids == []

        class HealthyExecutor:
            _processes = {30: object(), 10: object(), 20: object()}

        pool._executor = HealthyExecutor()
        assert pool.worker_pids == [10, 20, 30]
        pool._executor = None
        pool.close_sync()


@pytest.mark.slow
class TestHealOncePerGeneration:
    def test_sigkill_with_two_in_flight_counts_one_crash(self):
        """Two tasks observing the same broken executor heal it once.

        Regression test for the double-count: both the submit and await
        paths of concurrent in-flight tasks see ``BrokenExecutor`` when a
        worker is SIGKILLed; ``crashes`` must count breakages (1), not
        observers (2).
        """
        pool = CryptoPool(
            2, registry=MetricRegistry(), policy=OffloadPolicy(mode="always")
        )

        async def scenario():
            first = asyncio.ensure_future(
                pool.run("hold", pool_tasks.hold_worker, 30.0)
            )
            second = asyncio.ensure_future(
                pool.run("hold", pool_tasks.hold_worker, 30.0)
            )
            deadline = time.monotonic() + 30.0
            while not pool.worker_pids and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            pids = pool.worker_pids
            assert pids, "pool never spawned workers"
            os.kill(pids[0], signal.SIGKILL)
            results = await asyncio.gather(
                first, second, return_exceptions=True
            )
            # One dead worker breaks the whole executor: both in-flight
            # tasks fail with the infrastructure error (fall back inline).
            for result in results:
                assert isinstance(result, CryptoPoolUnavailable), result
            stats_mid = pool.stats()
            # Healed exactly once, though both tasks saw the breakage.
            assert stats_mid["crashes"] == 1, stats_mid

            # And the heal actually worked: the next task respawns.
            health = await pool.run("health", pool_tasks.worker_health)
            assert health["pid"] not in pids
            await pool.close()

        asyncio.run(scenario())
        stats = pool.stats()
        assert stats["crashes"] == 1
        assert stats["restarts"] == 1
        assert stats["fallbacks"] == 2


# ---------------------------------------------------------------------------
# Cross-request coalescing.
# ---------------------------------------------------------------------------


class FakePool:
    """Records pool.run calls; behaviour injected per test."""

    def __init__(self, handler):
        self.calls: list[tuple[str, object, tuple]] = []
        self._handler = handler

    async def run(self, op, fn, *args):
        self.calls.append((op, fn, args))
        return await self._handler(op, fn, args)


class TestCryptoCoalescer:
    def _spec(self, tag: str) -> dict:
        return {"scheme": "bls04", "kind": "sign", "data": tag.encode()}

    def test_concurrent_creates_merge_into_one_batch(self):
        async def handler(op, fn, args):
            assert fn is pool_tasks.create_share_batch
            (specs,) = args
            return [("ok", spec["data"]) for spec in specs]

        pool = FakePool(handler)
        coalescer = CryptoCoalescer(pool, window=0.02)

        async def scenario():
            return await asyncio.gather(
                *(
                    coalescer.run(
                        "bls04:create_share",
                        pool_tasks.create_share,
                        (self._spec(tag),),
                    )
                    for tag in ("a", "b", "c")
                )
            )

        results = asyncio.run(scenario())
        assert results == [b"a", b"b", b"c"]
        assert len(pool.calls) == 1
        op, fn, args = pool.calls[0]
        assert op == "create_share_batch"
        assert [spec["data"] for spec in args[0]] == [b"a", b"b", b"c"]
        stats = coalescer.stats()
        assert stats["batches"] == 1 and stats["batched_items"] == 3

    def test_bad_item_fails_only_its_own_future(self):
        async def handler(op, fn, args):
            return [("ok", b"fine"), ("error", "bad spec")]

        coalescer = CryptoCoalescer(FakePool(handler), window=0.02)

        async def scenario():
            return await asyncio.gather(
                coalescer.run(
                    "op", pool_tasks.create_share, (self._spec("good"),)
                ),
                coalescer.run(
                    "op", pool_tasks.create_share, (self._spec("bad"),)
                ),
                return_exceptions=True,
            )

        good, bad = asyncio.run(scenario())
        assert good == b"fine"
        assert isinstance(bad, CryptoError)
        assert "bad spec" in str(bad)

    def test_pool_unavailable_fans_out_to_all_waiters(self):
        async def handler(op, fn, args):
            raise CryptoPoolUnavailable("induced")

        coalescer = CryptoCoalescer(FakePool(handler), window=0.02)

        async def scenario():
            return await asyncio.gather(
                *(
                    coalescer.run(
                        "op", pool_tasks.create_share, (self._spec(tag),)
                    )
                    for tag in ("a", "b")
                ),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert all(isinstance(r, CryptoPoolUnavailable) for r in results)

    def test_lone_item_runs_as_the_single_task(self):
        async def handler(op, fn, args):
            assert fn is pool_tasks.create_share
            return b"single result"

        pool = FakePool(handler)
        coalescer = CryptoCoalescer(pool, window=0.005)

        async def scenario():
            return await coalescer.run(
                "bls04:create_share",
                pool_tasks.create_share,
                (self._spec("solo"),),
            )

        assert asyncio.run(scenario()) == b"single result"
        # The single-item window preserves the original op label.
        assert pool.calls == [
            ("bls04:create_share", pool_tasks.create_share, (self._spec("solo"),))
        ]
        assert coalescer.stats()["singles"] == 1
        assert coalescer.stats()["batches"] == 0

    def test_full_bucket_flushes_before_the_window(self):
        async def handler(op, fn, args):
            return [("ok", spec["data"]) for spec in args[0]]

        pool = FakePool(handler)
        # A 10 s window: only the max_batch early flush can finish this
        # test promptly, which is exactly what it asserts.
        coalescer = CryptoCoalescer(pool, window=10.0, max_batch=2)

        async def scenario():
            started = asyncio.get_running_loop().time()
            results = await asyncio.wait_for(
                asyncio.gather(
                    *(
                        coalescer.run(
                            "op", pool_tasks.create_share, (self._spec(tag),)
                        )
                        for tag in ("a", "b")
                    )
                ),
                timeout=5.0,
            )
            return results, asyncio.get_running_loop().time() - started

        results, elapsed = asyncio.run(scenario())
        assert results == [b"a", b"b"]
        assert elapsed < 5.0
        assert coalescer.stats()["batches"] == 1

    def test_verify_route_packs_groups(self):
        async def handler(op, fn, args):
            assert fn is pool_tasks.verify_shares_multi
            (groups,) = args
            return [[None] * len(payloads) for _, payloads in groups]

        pool = FakePool(handler)
        coalescer = CryptoCoalescer(pool, window=0.02)

        async def scenario():
            return await asyncio.gather(
                coalescer.run(
                    "bls04:verify_shares",
                    pool_tasks.verify_shares,
                    (self._spec("A"), [b"s1", b"s2"]),
                ),
                coalescer.run(
                    "bls04:verify_shares",
                    pool_tasks.verify_shares,
                    (self._spec("B"), [b"s3"]),
                ),
            )

        verdicts = asyncio.run(scenario())
        assert verdicts == [[None, None], [None]]
        assert pool.calls[0][0] == "verify_shares_multi"

    def test_unroutable_fn_passes_straight_through(self):
        async def handler(op, fn, args):
            return {"pid": 1}

        pool = FakePool(handler)
        coalescer = CryptoCoalescer(pool, window=0.02)

        async def scenario():
            return await coalescer.run(
                "health", pool_tasks.worker_health, ()
            )

        assert asyncio.run(scenario()) == {"pid": 1}
        assert pool.calls == [("health", pool_tasks.worker_health, ())]
        assert coalescer.stats()["batches"] == 0
        assert coalescer.stats()["singles"] == 0

    def test_shape_mismatch_fails_every_waiter(self):
        async def handler(op, fn, args):
            return [("ok", b"only one")]  # two items went in

        coalescer = CryptoCoalescer(FakePool(handler), window=0.02)

        async def scenario():
            return await asyncio.gather(
                *(
                    coalescer.run(
                        "op", pool_tasks.create_share, (self._spec(tag),)
                    )
                    for tag in ("a", "b")
                ),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert all(isinstance(r, CryptoError) for r in results)


@pytest.mark.integration
class TestDuplicateRequestCoalescing:
    def test_identical_requests_fold_into_one_instance(self, keys_bls04):
        """Same payload submitted twice → one instance, counted folds."""
        configs = make_local_configs(4, 1, transport="local", rpc_base_port=0)
        hub = LocalHub()
        nodes = []
        for config in configs:
            node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
            node.install_key(
                "bls04",
                "bls04",
                keys_bls04.public_key,
                keys_bls04.share_for(config.node_id),
            )
            nodes.append(node)

        async def scenario():
            for node in nodes:
                await node.start()
            try:
                message = b"duplicate request payload"
                results = await asyncio.gather(
                    *(
                        node.run_request("sign", "bls04", message)
                        for node in nodes
                        for _ in range(2)
                    )
                )
            finally:
                for node in nodes:
                    await node.stop()
            return results

        results = asyncio.run(scenario())
        assert len(set(results)) == 1
        for node in nodes:
            parsed = parse_text(node.render_metrics())
            folded = sum(
                value
                for (name, labels), value in parsed.items()
                if name == "repro_requests_coalesced_total"
                and dict(labels).get("source") == "inflight"
            )
            assert folded >= 1, f"node {node.config.node_id} never folded"
