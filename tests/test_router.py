"""Router tier: consistent hashing, topology, redirects, federation e2e.

Covers the sharded scale-out subsystem (docs/federation.md): ring
placement properties (process-stable determinism, balance, minimal
movement), the Topology descriptor, the structured ``wrong_group``
redirect surviving the wire, router- and client-side redirect following,
and a full R-routers × G-groups federation including chaos (one shard
crashed mid-run must degrade only its own keyspace).
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, RpcError
from repro.network.faults import Crash, FaultPlan
from repro.router import GroupSpec, HashRing, Router, Topology
from repro.router.federation import FederatedCluster
from repro.router.ring import DEFAULT_VNODES, ring_point
from repro.service.client import ThetacryptClient
from repro.telemetry import parse_text

KEYS = [f"tenant-{i % 7}/key-{i}" for i in range(3000)]


class TestHashRing:
    def test_lookup_is_deterministic_in_process(self):
        a = HashRing(("alpha", "beta", "gamma"))
        b = HashRing(("gamma", "alpha", "beta"))  # order must not matter
        for key in KEYS[:200]:
            assert a.lookup(key) == b.lookup(key)

    def test_lookup_is_deterministic_across_processes(self):
        """The ring must not depend on per-process hash salts: a router
        and a node in different processes have to agree on ownership."""
        sample = KEYS[:50]
        script = (
            "import json, sys\n"
            "from repro.router import HashRing\n"
            "ring = HashRing(('alpha', 'beta', 'gamma'))\n"
            "keys = json.loads(sys.argv[1])\n"
            "print(json.dumps({k: ring.lookup(k) for k in keys}))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", script, json.dumps(sample)],
            capture_output=True,
            text=True,
            timeout=60,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        remote = json.loads(result.stdout)
        ring = HashRing(("alpha", "beta", "gamma"))
        assert remote == {k: ring.lookup(k) for k in sample}

    def test_balance_within_twenty_percent(self):
        ring = HashRing(("alpha", "beta", "gamma"), vnodes=DEFAULT_VNODES)
        counts = ring.distribution(KEYS)
        expected = len(KEYS) / 3
        for group, count in counts.items():
            assert abs(count - expected) / expected <= 0.20, (
                f"group {group} holds {count} of {len(KEYS)} keys"
            )

    def test_adding_a_group_only_moves_keys_to_it(self):
        before = HashRing(("alpha", "beta", "gamma"))
        after = before.with_group("delta")
        moved = 0
        for key in KEYS:
            old, new = before.lookup(key), after.lookup(key)
            if old != new:
                assert new == "delta", f"{key} moved {old}->{new}"
                moved += 1
        # Consistent hashing: the newcomer takes ~1/4, not a reshuffle.
        assert 0 < moved < len(KEYS) / 2

    def test_removing_a_group_only_moves_its_keys(self):
        before = HashRing(("alpha", "beta", "gamma", "delta"))
        after = before.without_group("delta")
        for key in KEYS:
            old = before.lookup(key)
            if old != "delta":
                assert after.lookup(key) == old

    def test_ring_point_is_pure_sha256(self):
        # Pin one value so any accidental change to the placement function
        # (which would strand every already-dealt key) fails loudly.
        assert ring_point("x") == ring_point("x")
        assert ring_point("x") != ring_point("y")
        assert 0 <= ring_point("x") < 1 << 64

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HashRing(())
        with pytest.raises(ConfigurationError):
            HashRing(("a", "a"))
        with pytest.raises(ConfigurationError):
            HashRing(("a",), vnodes=0)


class TestTopology:
    def _topology(self) -> Topology:
        return Topology(
            groups=(
                GroupSpec("alpha", 4, 1, rpc_base_port=18000),
                GroupSpec("beta", 3, 1, rpc_base_port=18100),
            ),
            assignments={"pinned/key": "beta"},
        )

    def test_json_round_trip(self):
        topology = self._topology()
        assert Topology.from_json(topology.to_json()) == topology

    def test_pinned_assignment_overrides_ring(self):
        topology = self._topology()
        assert topology.owner_of("pinned/key") == "beta"

    def test_partition_is_disjoint_and_complete(self):
        owned = self._topology().partition_keys(KEYS)
        assert sorted(k for group in owned.values() for k in group) == sorted(
            KEYS
        )

    def test_with_members_sets_endpoints(self):
        topology = self._topology().with_members(
            {"alpha": {1: ("10.0.0.1", 9001), 2: ("10.0.0.2", 9002),
                       3: ("10.0.0.3", 9003), 4: ("10.0.0.4", 9004)}}
        )
        assert topology.group("alpha").rpc_endpoints()[2] == ("10.0.0.2", 9002)
        # beta untouched: still derived from its rpc_base_port
        assert topology.group("beta").rpc_endpoints()[2] == ("127.0.0.1", 18102)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Topology(groups=())
        with pytest.raises(ConfigurationError):
            Topology(groups=(GroupSpec("a", 4, 1), GroupSpec("a", 4, 1)))
        with pytest.raises(ConfigurationError):
            Topology(
                groups=(GroupSpec("a", 4, 1),), assignments={"k": "missing"}
            )
        with pytest.raises(ConfigurationError):
            GroupSpec("a", 4, 4)
        with pytest.raises(ConfigurationError):
            GroupSpec("a", 4, 1, members=((1, "h", 1),))


@pytest.mark.integration
class TestWrongGroupRedirect:
    def test_wrong_group_details_survive_the_wire(self, keys_sg02):
        async def scenario():
            cluster = FederatedCluster(
                group_ids=("alpha", "beta"),
                assignments={"app/sg02": "alpha"},
            )
            await cluster.start({"app/sg02": keys_sg02})
            beta = ThetacryptClient(cluster.groups["beta"].members())
            try:
                with pytest.raises(RpcError) as excinfo:
                    await beta.encrypt("app/sg02", b"misrouted", b"lbl")
                exc = excinfo.value
                assert exc.reason == "wrong_group"
                assert exc.details["group"] == "alpha"
                assert exc.details["key_id"] == "app/sg02"
                assert exc.details["requested_group"] == "beta"
            finally:
                await beta.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_stale_router_follows_redirect(self, keys_sg02):
        """A router whose topology mislocates the key still answers: the
        owning group named in the wrong_group payload is followed and the
        hop is counted as repro_router_redirects_total{source=router}."""

        async def scenario():
            cluster = FederatedCluster(
                group_ids=("alpha", "beta"),
                assignments={"app/sg02": "alpha"},
            )
            await cluster.start({"app/sg02": keys_sg02})
            stale = replace(
                cluster.topology, assignments={"app/sg02": "beta"}
            )
            router = Router(stale)
            try:
                result = await router.dispatch(
                    "encrypt",
                    {"key_id": "app/sg02", "data": b"x".hex(),
                     "label": b"lbl".hex()},
                )
                assert "ciphertext" in result
                redirects = router.registry.get(
                    "repro_router_redirects_total"
                )
                assert redirects.children()[0].value == 1
                stats = router.stats()
                assert stats["shards"]["beta"]["requests"]["redirected"] == 1
                assert stats["shards"]["alpha"]["requests"]["ok"] == 1
            finally:
                await router.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_stale_client_follows_redirect(self, keys_sg02):
        async def scenario():
            cluster = FederatedCluster(
                group_ids=("alpha", "beta"),
                assignments={"app/sg02": "alpha"},
            )
            await cluster.start({"app/sg02": keys_sg02})
            stale = replace(
                cluster.topology, assignments={"app/sg02": "beta"}
            )
            client = ThetacryptClient(topology=stale)
            try:
                assert client.owner_of("app/sg02") == "beta"  # stale view
                ciphertext = await client.encrypt("app/sg02", b"s", b"lbl")
                plaintext = await client.decrypt("app/sg02", ciphertext, b"lbl")
                assert plaintext == b"s"
            finally:
                await client.close()
                await cluster.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestFederationEndToEnd:
    def test_two_routers_three_groups(self, keys_sg02, keys_bls04, keys_cks05):
        """Requests through either router land on the owning group only."""

        async def scenario():
            assignments = {
                "t1/sg02": "alpha",
                "t2/bls04": "beta",
                "t3/cks05": "gamma",
            }
            cluster = FederatedCluster(
                group_ids=("alpha", "beta", "gamma"),
                routers=2,
                assignments=assignments,
            )
            await cluster.start(
                {
                    "t1/sg02": keys_sg02,
                    "t2/bls04": keys_bls04,
                    "t3/cks05": keys_cks05,
                }
            )
            clients = [cluster.client(router=0), cluster.client(router=1)]
            try:
                for client in clients:
                    ciphertext = await client.encrypt("t1/sg02", b"m", b"lbl")
                    assert await client.decrypt(
                        "t1/sg02", ciphertext, b"lbl"
                    ) == b"m"
                    signature = await client.sign("t2/bls04", b"payload")
                    assert await client.verify_signature(
                        "t2/bls04", b"payload", signature
                    )
                    assert len(await client.flip_coin("t3/cks05", b"r1")) == 32
                for daemon in cluster.routers:
                    stats = daemon.router.stats()
                    # every shard served exactly its own keyspace
                    assert stats["shards"]["alpha"]["requests"] == {"ok": 2}
                    assert stats["shards"]["beta"]["requests"] == {"ok": 2}
                    assert stats["shards"]["gamma"]["requests"] == {"ok": 1}
                # the Prometheus view agrees with stats()
                samples = parse_text(
                    cluster.routers[0].router.render_metrics()
                )
                names = {name for name, _labels in samples}
                assert "repro_router_requests_total" in names
                assert "repro_router_upstream_seconds_count" in names
                assert "repro_router_inflight" in names
            finally:
                for client in clients:
                    await client.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_router_introspection_methods(self, keys_sg02, keys_bls04):
        async def scenario():
            cluster = FederatedCluster(
                group_ids=("alpha", "beta"),
                assignments={"a/sg02": "alpha", "b/bls04": "beta"},
            )
            await cluster.start({"a/sg02": keys_sg02, "b/bls04": keys_bls04})
            client = cluster.client()
            try:
                pong = await client.call(0, "ping", {})
                assert pong["router"].startswith("router-")
                assert set(pong["groups"]) == {"alpha", "beta"}
                listed = await client.call(0, "list_keys", {})
                by_id = {entry["key_id"]: entry for entry in listed["keys"]}
                assert by_id["a/sg02"]["group"] == "alpha"
                assert by_id["b/bls04"]["group"] == "beta"
            finally:
                await client.close()
                await cluster.stop()

        asyncio.run(scenario())

    def test_crashed_group_degrades_only_its_keyspace(
        self, keys_sg02, keys_bls04, keys_cks05
    ):
        """Chaos: gamma's quorum crashes mid-run (seeded FaultPlan); its
        keys fail, alpha's and beta's keep answering through the router."""

        async def scenario():
            plan = FaultPlan(
                seed=97,
                crashes=(
                    Crash(node=2, at=0.0),
                    Crash(node=3, at=0.0),
                    Crash(node=4, at=0.0),
                ),
            )
            cluster = FederatedCluster(
                group_ids=("alpha", "beta", "gamma"),
                assignments={
                    "t1/sg02": "alpha",
                    "t2/bls04": "beta",
                    "t3/cks05": "gamma",
                },
                group_overrides={"gamma": {"fault_plan": plan}},
                instance_timeout=2.0,
            )
            await cluster.start(
                {
                    "t1/sg02": keys_sg02,
                    "t2/bls04": keys_bls04,
                    "t3/cks05": keys_cks05,
                }
            )
            client = cluster.client()
            try:
                # healthy shards answer
                ciphertext = await client.encrypt("t1/sg02", b"up", b"lbl")
                assert await client.decrypt(
                    "t1/sg02", ciphertext, b"lbl"
                ) == b"up"
                signature = await client.sign("t2/bls04", b"up")
                assert await client.verify_signature(
                    "t2/bls04", b"up", signature
                )
                # the crashed shard cannot assemble a quorum
                with pytest.raises((RpcError, ConnectionError, OSError)):
                    await asyncio.wait_for(
                        client.flip_coin("t3/cks05", b"down"), timeout=30
                    )
                # and the healthy shards are still healthy afterwards
                assert await client.decrypt(
                    "t1/sg02", ciphertext, b"lbl"
                ) == b"up"
            finally:
                await client.close()
                await cluster.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestRouterStateless:
    def test_restarted_router_serves_from_result_cache(self, keys_sg02):
        """Kill a router, start a fresh one: the retried request succeeds
        and the group's result cache answers idempotently."""

        async def scenario():
            cluster = FederatedCluster(
                group_ids=("alpha", "beta"),
                assignments={"app/sg02": "alpha"},
            )
            await cluster.start({"app/sg02": keys_sg02})
            client = cluster.client()
            try:
                ciphertext = await client.encrypt("app/sg02", b"p", b"lbl")
                first = await client.decrypt("app/sg02", ciphertext, b"lbl")
            finally:
                await client.close()
            # hard-stop the router tier; group state is untouched
            await cluster.routers[0].stop()
            from repro.router.daemon import RouterDaemon

            fresh = RouterDaemon(cluster.topology, port=0, name="router-new")
            await fresh.start()
            cluster.routers[0] = fresh
            client = cluster.client()
            try:
                again = await client.decrypt("app/sg02", ciphertext, b"lbl")
                assert again == first == b"p"
            finally:
                await client.close()
                await cluster.stop()

        asyncio.run(scenario())
