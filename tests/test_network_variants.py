"""Network-layer variants: TOB configurations, gossip under faults,
service behavior with message loss, and mixed-channel deployments."""

import asyncio

import pytest

from repro.core.messages import Channel, ProtocolMessage
from repro.network.gossip import GossipOverlay
from repro.network.local import LocalHub
from repro.network.manager import NetworkManager
from repro.network.tob import SequencerTob
from repro.schemes import generate_keys
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs


def collect_handler(store):
    async def handler(sender, data):
        store.append((sender, data))

    return handler


class TestTobVariants:
    def test_non_default_sequencer(self):
        async def scenario():
            hub = LocalHub()
            tobs = {
                i: SequencerTob(hub.endpoint(i), sequencer_id=3)
                for i in (1, 2, 3)
            }
            delivered = {i: [] for i in tobs}
            for i, tob in tobs.items():
                tob.set_handler(collect_handler(delivered[i]))
            await tobs[1].submit(b"a")
            await tobs[2].submit(b"b")
            await hub.drain()
            assert delivered[1] == delivered[2] == delivered[3]
            assert len(delivered[1]) == 2
            assert tobs[3].is_sequencer and not tobs[1].is_sequencer

        asyncio.run(scenario())

    def test_sequencer_self_submission_delivered_everywhere(self):
        async def scenario():
            hub = LocalHub()
            tobs = {i: SequencerTob(hub.endpoint(i)) for i in (1, 2)}
            delivered = {i: [] for i in tobs}
            for i, tob in tobs.items():
                tob.set_handler(collect_handler(delivered[i]))
            await tobs[1].submit(b"from the sequencer itself")
            await hub.drain()
            assert delivered[1] == delivered[2] == [(1, b"from the sequencer itself")]

        asyncio.run(scenario())

    def test_many_messages_remain_totally_ordered(self):
        async def scenario():
            hub = LocalHub(latency=lambda a, b: 0.001 * ((a + b) % 3))
            tobs = {i: SequencerTob(hub.endpoint(i)) for i in (1, 2, 3, 4)}
            delivered = {i: [] for i in tobs}
            for i, tob in tobs.items():
                tob.set_handler(collect_handler(delivered[i]))
            await asyncio.gather(
                *(tobs[1 + (k % 4)].submit(b"m%02d" % k) for k in range(20))
            )
            await hub.drain()
            reference = delivered[1]
            assert len(reference) == 20
            for i in (2, 3, 4):
                assert delivered[i] == reference

        asyncio.run(scenario())


class TestGossipFaults:
    def test_flooding_survives_dropped_links(self):
        """Redundant gossip paths deliver around a broken link."""

        async def scenario():
            hub = LocalHub()
            overlays = {
                i: GossipOverlay(hub.endpoint(i), fanout=3) for i in range(1, 9)
            }
            received = {i: [] for i in overlays}
            for i, overlay in overlays.items():
                overlay.set_handler(collect_handler(received[i]))
            # Cut several links out of node 1; the mesh has other routes.
            neighbors = overlays[1].neighbors
            hub.drop_link(1, neighbors[0])
            await overlays[1].broadcast(b"resilient")
            await hub.drain()
            delivered_to = [i for i in range(2, 9) if received[i]]
            assert len(delivered_to) == 7  # everyone still got it

        asyncio.run(scenario())

    def test_gossip_service_survives_one_crashed_node(self):
        keys = generate_keys("cks05", 1, 6)

        async def scenario():
            configs = make_local_configs(
                6, 1, transport="local", rpc_base_port=0, gossip_fanout=3
            )
            hub = LocalHub(latency=lambda a, b: 0.001)
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                node.install_key(
                    "coin", keys.scheme, keys.public_key,
                    keys.share_for(config.node_id),
                )
                await node.start()
                nodes.append(node)
            try:
                await nodes[5].stop()  # crash node 6 (a gossip relay)
                client = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes[:5]}
                )
                value = await client.flip_coin("coin", b"lossy")
                assert len(value) == 32
                await client.close()
            finally:
                for node in nodes[:5]:
                    await node.stop()

        asyncio.run(scenario())


class TestServiceUnderMessageLoss:
    def test_noninteractive_tolerates_partitioned_node(self, keys_cks05):
        """Drop every link to one node: 3 healthy of 4 still reach quorum."""

        async def scenario():
            configs = make_local_configs(4, 1, transport="local", rpc_base_port=0)
            hub = LocalHub(latency=lambda a, b: 0.001)
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                node.install_key(
                    "coin",
                    keys_cks05.scheme,
                    keys_cks05.public_key,
                    keys_cks05.share_for(config.node_id),
                )
                await node.start()
                nodes.append(node)
            try:
                for other in (1, 2, 3):
                    hub.drop_link(4, other)
                    hub.drop_link(other, 4)
                client = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes[:3]}
                )
                value = await client.flip_coin("coin", b"partitioned")
                assert len(value) == 32
                await client.close()
            finally:
                for node in nodes:
                    await node.stop()

        asyncio.run(scenario())


class TestManagerExternalTob:
    def test_external_tob_used_for_tob_channel(self):
        async def scenario():
            hub = LocalHub()
            tob_hub = LocalHub()
            managers = {}
            seen = {i: [] for i in (1, 2)}
            for i in (1, 2):
                external = SequencerTob(tob_hub.endpoint(i), sequencer_id=1)
                manager = NetworkManager(
                    hub.endpoint(i), enable_tob=False, tob=external
                )

                async def handler(message, i=i):
                    seen[i].append(message.payload)

                manager.set_protocol_handler(handler)
                managers[i] = manager
                await manager.start()
            assert managers[1].has_tob
            await managers[2].dispatch(
                ProtocolMessage("inst", 2, 0, Channel.TOB, b"external")
            )
            await tob_hub.drain()
            assert seen[1] == [b"external"] and seen[2] == [b"external"]
            for manager in managers.values():
                await manager.stop()

        asyncio.run(scenario())
