"""Regression pins on the paper's headline numbers (slow: full sweeps).

These are the reproduction's guard rails: if a cost-model or simulator
change silently breaks the Fig. 4 / Table 4 shapes, these tests catch it
without running the whole benchmark harness.
"""

import pytest

from repro.sim.deployments import DEPLOYMENTS
from repro.sim.experiments import capacity_test, steady_state
from repro.sim.metrics import find_knee


@pytest.mark.slow
def test_do7_local_knees_match_paper_exactly():
    deployment = DEPLOYMENTS["DO-7-L"]
    expected = {"sg02": 64, "cks05": 64, "kg20": 64, "bls04": 32, "bz03": 32, "sh00": 8}
    for scheme, paper_knee in expected.items():
        knee = find_knee(capacity_test(deployment, scheme, duration=10.0))
        assert knee.rate == paper_knee, f"{scheme}: {knee.rate} != {paper_knee}"


@pytest.mark.slow
def test_do31_global_fairness_structure():
    deployment = DEPLOYMENTS["DO-31-G"]
    rates = {"sg02": 8, "kg20": 4, "sh00": 2}
    metrics = {
        scheme: steady_state(deployment, scheme, rate=rate, duration=30.0)
        for scheme, rate in rates.items()
    }
    # DH cheap → imbalanced; KG20 wait-for-all → balanced; SH00 compute-bound.
    assert metrics["sg02"].delta_res > 1.0
    assert metrics["kg20"].delta_res < 0.5
    assert metrics["sg02"].eta_theta < 0.5 < metrics["kg20"].eta_theta
    assert metrics["sh00"].l_theta_net > metrics["sg02"].l_theta_net


def test_quick_shape_smoke():
    """A fast (non-slow) sanity pin: ordering at reduced fidelity."""
    deployment = DEPLOYMENTS["DO-7-L"]
    rates = [4, 16, 64, 256]
    knees = {}
    for scheme in ("sg02", "bls04", "sh00"):
        knees[scheme] = find_knee(
            capacity_test(deployment, scheme, rates=rates, duration=3.0)
        ).rate
    assert knees["sg02"] >= knees["bls04"] >= knees["sh00"]
