"""Deeper coverage: TOB gap buffering, latency matrix completeness,
7-node paper-shaped deployment, chain serialization fuzz, workload bounds."""

import asyncio
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.types import Block, Transaction
from repro.errors import ThetacryptError
from repro.network.local import LocalHub
from repro.network.tob import SequencerTob
from repro.schemes import generate_keys
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs
from repro.sim.latency import Region, rtt
from repro.sim.workload import Workload


class TestTobGapBuffering:
    def test_out_of_order_stamps_deliver_in_order(self):
        async def scenario():
            hub = LocalHub()
            tob = SequencerTob(hub.endpoint(2), sequencer_id=1)
            delivered = []

            async def handler(sender, data):
                delivered.append(data)

            tob.set_handler(handler)
            # Stamps arrive 2, 0, 1 — delivery must still be 0, 1, 2.
            await tob._on_ordered(2, 9, b"third")
            assert delivered == []
            await tob._on_ordered(0, 9, b"first")
            assert delivered == [b"first"]
            await tob._on_ordered(1, 9, b"second")
            assert delivered == [b"first", b"second", b"third"]

        asyncio.run(scenario())

    def test_duplicate_stamp_does_not_double_deliver(self):
        async def scenario():
            hub = LocalHub()
            tob = SequencerTob(hub.endpoint(2), sequencer_id=1)
            delivered = []

            async def handler(sender, data):
                delivered.append(data)

            tob.set_handler(handler)
            await tob._on_ordered(0, 1, b"once")
            await tob._on_ordered(0, 1, b"once")  # replayed frame
            assert delivered == [b"once"]

        asyncio.run(scenario())


class TestLatencyMatrixComplete:
    def test_every_region_pair_defined(self):
        for a, b in itertools.product(Region, Region):
            value = rtt(a, b)
            assert value > 0

    def test_triangle_inequality_roughly_holds(self):
        # WAN RTTs need not satisfy it exactly, but no pair should be
        # wildly cheaper via a relay in our matrix.
        for a, b, c in itertools.permutations(Region, 3):
            direct = rtt(a, c)
            relayed = rtt(a, b) + rtt(b, c)
            assert direct <= relayed * 1.5


@pytest.mark.integration
class TestPaperShapedDeployment:
    def test_three_of_seven_like_the_paper(self):
        """7 nodes, threshold quorum 3 — the paper's small deployment."""
        keys = generate_keys("cks05", 2, 7)

        async def scenario():
            configs = make_local_configs(7, 2, transport="local", rpc_base_port=0)
            hub = LocalHub(latency=lambda a, b: 0.001)
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                node.install_key(
                    "coin", keys.scheme, keys.public_key,
                    keys.share_for(config.node_id),
                )
                await node.start()
                nodes.append(node)
            try:
                client = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes}
                )
                value = await client.flip_coin("coin", b"paper-shape")
                assert len(value) == 32
                # Crash t = 2 nodes; the quorum of 3 still works.
                await nodes[6].stop()
                await nodes[5].stop()
                survivors = ThetacryptClient(
                    {n.config.node_id: n.rpc_address for n in nodes[:5]}
                )
                value2 = await survivors.flip_coin("coin", b"degraded")
                assert len(value2) == 32
                await survivors.close()
                await client.close()
            finally:
                for node in nodes[:5]:
                    await node.stop()

        asyncio.run(scenario())


class TestChainSerializationFuzz:
    @settings(max_examples=40)
    @given(st.binary(max_size=200))
    def test_block_decoder_total(self, data):
        try:
            block = Block.from_bytes(data)
        except ThetacryptError:
            return
        assert block.to_bytes() == data

    @settings(max_examples=20)
    @given(
        st.integers(1, 10**6),
        st.binary(min_size=32, max_size=32),
        st.integers(1, 100),
        st.lists(
            st.tuples(st.text(max_size=10), st.binary(max_size=50), st.booleans()),
            max_size=5,
        ),
    )
    def test_block_round_trip_property(self, height, parent, proposer, txs):
        block = Block(
            height,
            parent,
            proposer,
            tuple(Transaction(s, p, e) for s, p, e in txs),
        )
        assert Block.from_bytes(block.to_bytes()) == block


class TestWorkloadBounds:
    @settings(max_examples=30)
    @given(
        st.floats(min_value=0.5, max_value=500, allow_nan=False),
        st.floats(min_value=0.1, max_value=30, allow_nan=False),
    )
    def test_arrivals_within_duration(self, rate, duration):
        workload = Workload(rate=rate, duration=duration)
        times = workload.arrival_times()
        assert len(times) == workload.request_count
        if times:
            assert min(times) >= 0
            assert max(times) <= duration * 1.05 + 1.0 / rate

    def test_seeded_determinism(self):
        a = Workload(rate=10, duration=2, seed=1).arrival_times()
        b = Workload(rate=10, duration=2, seed=1).arrival_times()
        c = Workload(rate=10, duration=2, seed=2).arrival_times()
        assert a == b
        assert a != c
