"""RPC authentication (§3.2) and request idempotency."""

import asyncio
import time

import pytest

from repro.errors import RpcError
from repro.network.local import LocalHub
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs


async def _network(keys, token=""):
    configs = [
        c.with_auth(token) if token else c
        for c in make_local_configs(4, 1, transport="local", rpc_base_port=0)
    ]
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            "coin", keys.scheme, keys.public_key, keys.share_for(config.node_id)
        )
        await node.start()
        nodes.append(node)
    return nodes


async def _stop(nodes, *clients):
    for client in clients:
        await client.close()
    for node in nodes:
        await node.stop()


@pytest.mark.integration
class TestRpcAuthentication:
    def test_wrong_token_rejected(self, keys_cks05):
        async def scenario():
            nodes = await _network(keys_cks05, token="domain-secret")
            addresses = {n.config.node_id: n.rpc_address for n in nodes}
            intruder = ThetacryptClient(addresses)  # no token
            wrong = ThetacryptClient(addresses, auth_token="guess")
            authorized = ThetacryptClient(addresses, auth_token="domain-secret")
            try:
                with pytest.raises(RpcError, match="unauthorized"):
                    await intruder.call(1, "ping", {})
                with pytest.raises(RpcError, match="unauthorized"):
                    await wrong.flip_coin("coin", b"x")
                value = await authorized.flip_coin("coin", b"x")
                assert len(value) == 32
            finally:
                await _stop(nodes, intruder, wrong, authorized)

        asyncio.run(scenario())

    def test_no_token_configured_means_open(self, keys_cks05):
        async def scenario():
            nodes = await _network(keys_cks05)
            client = ThetacryptClient(
                {n.config.node_id: n.rpc_address for n in nodes}
            )
            try:
                assert (await client.call(1, "ping", {}))["node_id"] == 1
            finally:
                await _stop(nodes, client)

        asyncio.run(scenario())

    def test_config_json_round_trips_token(self):
        config = make_local_configs(4, 1)[0].with_auth("tok")
        from repro.service.config import NodeConfig

        assert NodeConfig.from_json(config.to_json()).rpc_auth_token == "tok"


@pytest.mark.integration
class TestIdempotency:
    def test_repeated_request_reuses_instance(self, keys_cks05):
        """Same request → same instance id → the second call is a cache hit."""

        async def scenario():
            nodes = await _network(keys_cks05)
            client = ThetacryptClient(
                {n.config.node_id: n.rpc_address for n in nodes}
            )
            try:
                first = await client.flip_coin("coin", b"idem")
                start = time.perf_counter()
                second = await client.flip_coin("coin", b"idem")
                cached_latency = time.perf_counter() - start
                assert first == second
                # One instance per node, not two.
                for node in nodes:
                    records = [
                        r for r in node.instances.records()
                        if r.scheme == "cks05"
                    ]
                    assert len(records) == 1
                assert cached_latency < 0.25  # no new protocol round-trips

                # A different name is a different instance.
                await client.flip_coin("coin", b"other")
                assert len(nodes[0].instances.records()) == 2
            finally:
                await _stop(nodes, client)

        asyncio.run(scenario())

    def test_concurrent_duplicate_requests_converge(self, keys_cks05):
        async def scenario():
            nodes = await _network(keys_cks05)
            client = ThetacryptClient(
                {n.config.node_id: n.rpc_address for n in nodes}
            )
            try:
                values = await asyncio.gather(
                    *(client.flip_coin("coin", b"dup") for _ in range(5))
                )
                assert len({bytes(v) for v in values}) == 1
                assert len(nodes[0].instances.records()) == 1
            finally:
                await _stop(nodes, client)

        asyncio.run(scenario())
