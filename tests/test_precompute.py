"""The precomputation layer: fixed-base tables, Lagrange cache, batch verify."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateShareError, InvalidProofError, InvalidShareError
from repro.groups import (
    clear_precompute_cache,
    fixed_base_table,
    fixed_pow,
    get_group,
    list_groups,
    precompute_stats,
)
from repro.groups.precompute import FixedBaseTable, PrecomputeCache
from repro.mathutils.lagrange import (
    clear_lagrange_cache,
    lagrange_cache_stats,
    lagrange_coefficient,
    lagrange_coefficients_at_zero,
)
from repro.mathutils.modular import batch_inverse, inverse_mod
from repro.schemes import get_scheme
from repro.schemes.dleq import DleqProof, DleqStatement, dleq_prove, dleq_verify_batch


class TestBatchInverse:
    @settings(max_examples=40)
    @given(st.lists(st.integers(1, 10**9), min_size=0, max_size=12))
    def test_matches_individual_inversion(self, values):
        q = 2**252 + 27742317777372353535851937790883648493
        assert batch_inverse(values, q) == [inverse_mod(v, q) for v in values]

    def test_zero_is_rejected(self):
        from repro.errors import CryptoError

        with pytest.raises(CryptoError):
            batch_inverse([3, 0, 5], 10007)


class TestLagrangeCache:
    def test_cached_agrees_with_per_point_path(self):
        clear_lagrange_cache()
        rng = random.Random(7)
        moduli = [10007, 2**252 + 27742317777372353535851937790883648493]
        for modulus in moduli:
            for _ in range(25):
                xs = rng.sample(range(1, 64), rng.randint(1, 9))
                cached = lagrange_coefficients_at_zero(xs, modulus)
                plain = {i: lagrange_coefficient(xs, i, 0, modulus) for i in xs}
                assert dict(cached) == plain

    def test_hit_counting_and_order_independence(self):
        clear_lagrange_cache()
        first = lagrange_coefficients_at_zero([3, 1, 2], 10007)
        second = lagrange_coefficients_at_zero([2, 3, 1], 10007)
        assert dict(first) == dict(second)
        stats = lagrange_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1

    def test_returned_mapping_is_read_only(self):
        coefficients = lagrange_coefficients_at_zero([1, 2, 3], 10007)
        with pytest.raises(TypeError):
            coefficients[1] = 0  # type: ignore[index]

    def test_duplicates_still_rejected(self):
        with pytest.raises(DuplicateShareError):
            lagrange_coefficients_at_zero([1, 1, 2], 10007)

    def test_interpolation_still_recovers_secret(self):
        clear_lagrange_cache()
        q = 2**252 + 27742317777372353535851937790883648493
        secret, slope = 123456789, 987654321
        points = {i: (secret + slope * i) % q for i in (2, 5, 9)}
        lam = lagrange_coefficients_at_zero(list(points), q)
        assert sum(points[i] * lam[i] for i in points) % q == secret


class TestFixedBaseTable:
    @pytest.mark.parametrize("name", sorted(list_groups()))
    def test_matches_plain_pow_all_groups(self, name):
        group = get_group(name)
        base = group.generator()
        table = FixedBaseTable(base)
        rng = random.Random(name)
        for scalar in [0, 1, 2, group.order - 1, -5] + [
            rng.randrange(group.order) for _ in range(6)
        ]:
            assert table.pow(scalar) == base**scalar

    def test_non_generator_base(self):
        group = get_group("ed25519")
        base = group.generator() ** 31337
        table = FixedBaseTable(base)
        scalar = group.random_scalar()
        assert table.pow(scalar) == base**scalar

    def test_promotion_threshold_and_counters(self):
        cache = PrecomputeCache(promotion_threshold=3)
        group = get_group("ed25519")
        base = group.generator() ** 271828
        for _ in range(5):
            assert cache.pow(base, 42) == base**42
        stats = cache.stats()
        # Three naive misses, then a table is built and serves the rest.
        assert stats["tables_built"] == 1
        assert stats["misses"] == 3
        assert stats["hits"] == 2

    def test_table_cache_eviction(self):
        cache = PrecomputeCache(table_capacity=2, promotion_threshold=1)
        group = get_group("ed25519")
        for k in range(2, 6):
            cache.pow(group.generator() ** k, 7)
        stats = cache.stats()
        assert stats["tables"] == 2
        assert stats["evictions"] == 2

    def test_shared_cache_stats_shape(self):
        clear_precompute_cache()
        group = get_group("ed25519")
        fixed_base_table(group.generator())
        fixed_pow(group.generator(), 12345)
        stats = precompute_stats()
        assert stats["tables_built"] >= 1 and stats["hits"] >= 1
        for key in ("hits", "misses", "tables_built", "evictions", "tables"):
            assert key in stats


class TestBatchVerification:
    def _coin_setup(self, corrupt_index=None):
        from repro.schemes import cks05

        public, shares = cks05.keygen(2, 5)
        scheme = get_scheme("cks05")
        name = b"batch-coin"
        coin_shares = [
            scheme.create_coin_share(share, name) for share in shares[:4]
        ]
        if corrupt_index is not None:
            bad = coin_shares[corrupt_index]
            coin_shares[corrupt_index] = type(bad)(
                bad.id, bad.sigma, DleqProof(bad.proof.challenge, bad.proof.response ^ 1)
            )
        return scheme, public, name, coin_shares

    def test_cks05_batch_accepts_valid_shares(self):
        scheme, public, name, coin_shares = self._coin_setup()
        scheme.verify_coin_shares(public, name, coin_shares)

    @pytest.mark.parametrize("corrupt_index", [0, 2, 3])
    def test_cks05_batch_rejects_any_corrupted_share(self, corrupt_index):
        scheme, public, name, coin_shares = self._coin_setup(corrupt_index)
        with pytest.raises(InvalidProofError) as excinfo:
            scheme.verify_coin_shares(public, name, coin_shares)
        assert str(corrupt_index) in str(excinfo.value)

    def test_sg02_batch_accepts_and_rejects(self):
        from repro.schemes import sg02

        public, shares = sg02.keygen(1, 4)
        scheme = get_scheme("sg02")
        ct = scheme.encrypt(public, b"payload", b"label")
        dec_shares = [
            scheme.create_decryption_share(share, ct) for share in shares[:3]
        ]
        scheme.verify_decryption_shares(public, ct, dec_shares)
        bad = dec_shares[1]
        dec_shares[1] = type(bad)(
            bad.id, bad.u_i, DleqProof(bad.proof.challenge, bad.proof.response ^ 1)
        )
        with pytest.raises(InvalidProofError):
            scheme.verify_decryption_shares(public, ct, dec_shares)

    def test_bls04_batch_identifies_culprits(self):
        from repro.schemes import bls04

        public, shares = bls04.keygen(1, 4)
        scheme = get_scheme("bls04")
        message = b"batch-bls"
        sig_shares = [scheme.partial_sign(share, message) for share in shares[:3]]
        scheme.verify_share_batch(public, message, sig_shares)
        forged = bls04.Bls04SignatureShare(
            sig_shares[2].id, sig_shares[0].sigma
        )
        sig_shares[2] = forged
        with pytest.raises(InvalidShareError) as excinfo:
            scheme.verify_share_batch(public, message, sig_shares, identify=True)
        assert str(forged.id) in str(excinfo.value)

    def test_dleq_batch_empty_is_noop(self):
        dleq_verify_batch(get_group("ed25519"), [])

    def test_dleq_batch_direct(self):
        group = get_group("ed25519")
        g = group.generator()
        g2 = group.hash_to_element(b"other-base")
        statements = []
        for secret in (11, 22, 33):
            h1 = g**secret
            h2 = g2**secret
            proof = dleq_prove(group, g, g2, secret, h1=h1, h2=h2)
            statements.append(DleqStatement(g, h1, g2, h2, proof))
        dleq_verify_batch(group, statements)
        broken = statements[0]
        statements[0] = DleqStatement(
            broken.g1,
            broken.h1,
            broken.g2,
            broken.h2,
            DleqProof(broken.proof.challenge + 1, broken.proof.response),
        )
        with pytest.raises(InvalidProofError):
            dleq_verify_batch(group, statements)


class TestSchemesStillAgreeUnderCache:
    """End-to-end spot check: cached hot paths change nothing observable."""

    @settings(max_examples=10, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=16))
    def test_sg02_roundtrip(self, plaintext, label):
        from repro.schemes import sg02

        public, shares = sg02.keygen(1, 3)
        scheme = get_scheme("sg02")
        ct = scheme.encrypt(public, plaintext, label)
        dec = [scheme.create_decryption_share(s, ct) for s in shares[:2]]
        assert scheme.combine(public, ct, dec) == plaintext

    def test_cks05_coin_deterministic_across_quorums(self):
        from repro.schemes import cks05

        public, shares = cks05.keygen(2, 5)
        scheme = get_scheme("cks05")
        name = b"round-42"
        coin_shares = {s.id: scheme.create_coin_share(s, name) for s in shares}
        quorum_a = [coin_shares[i] for i in (1, 2, 3)]
        quorum_b = [coin_shares[i] for i in (2, 4, 5)]
        assert scheme.combine(public, name, quorum_a) == scheme.combine(
            public, name, quorum_b
        )
