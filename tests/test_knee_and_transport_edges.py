"""Knee detection on saturated systems; transport fault edge cases."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.groups import get_group
from repro.network.tcp import TcpP2P
from repro.sim.metrics import ExperimentMetrics, find_knee, usable_capacity


def _point(rate, tput, l95, offered=100, completed=100):
    return ExperimentMetrics(
        "s", "d", rate, 256, offered, completed, tput, l95, l95,
        l95, l95, l95, 0.0, 1.0, 0.5, 0.5,
    )


class TestKneeDetection:
    def test_saturated_points_excluded(self):
        # Rate 32's huge ratio is measurement noise: it completed only 10%.
        points = [
            _point(1, 1, 0.01),
            _point(2, 2, 0.012),
            _point(32, 30, 0.004, offered=100, completed=10),
        ]
        assert find_knee(points).rate == 2

    def test_fully_saturated_degenerates_to_lowest_rate(self):
        # SH00 on DO-127: nothing keeps up; the paper reports knee = 1.
        points = [
            _point(1, 0.6, 4.8, offered=48, completed=29),
            _point(2, 0.4, 4.9, offered=48, completed=20),
            _point(4, 0.6, 9.5, offered=48, completed=28),
        ]
        assert find_knee(points).rate == 1

    def test_healthy_sweep_unchanged(self):
        points = [_point(1, 1, 0.01), _point(2, 2, 0.011), _point(4, 3, 0.1)]
        assert find_knee(points).rate == 2

    def test_usable_capacity_is_max_throughput(self):
        points = [_point(1, 1, 0.01), _point(4, 3.9, 0.02), _point(8, 3.2, 0.4)]
        assert usable_capacity(points).rate == 4

    @settings(max_examples=30)
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=6, unique=True))
    def test_knee_always_among_inputs(self, rates):
        points = [_point(r, r, 0.01 * r) for r in rates]
        assert find_knee(points).rate in rates


@pytest.mark.integration
class TestTcpFaults:
    def test_send_to_dead_peer_does_not_raise(self):
        """The model assumes reliable channels; a dead peer is tolerated
        by the protocol layer (≤ t faults), so send must not blow up —
        the frame lands on the resend queue instead."""

        async def scenario():
            node = TcpP2P(
                1,
                "127.0.0.1",
                19901,
                {2: ("127.0.0.1", 19999)},
                dial_retries=2,
                backoff_base=0.01,
                send_deadline=0.5,
            )
            await node.start()
            try:
                await node.send(2, b"into the void")  # nobody listens on 19999
                assert len(node._resend_queues[2]) == 1
            finally:
                await node.stop()

        asyncio.run(scenario())

    def test_late_starting_peer_gets_messages(self):
        """Dial retry: node 1 sends before node 2's listener exists."""

        async def scenario():
            received = []
            node1 = TcpP2P(1, "127.0.0.1", 19903, {2: ("127.0.0.1", 19904)})
            await node1.start()
            send_task = asyncio.ensure_future(node1.send(2, b"early bird"))
            await asyncio.sleep(0.3)  # node 2 not up yet; dialing retries
            node2 = TcpP2P(2, "127.0.0.1", 19904, {1: ("127.0.0.1", 19903)})

            async def handler(sender, data):
                received.append((sender, data))

            node2.set_handler(handler)
            await node2.start()
            await send_task
            await asyncio.sleep(0.2)
            try:
                assert received == [(1, b"early bird")]
            finally:
                await node1.stop()
                await node2.stop()

        asyncio.run(scenario())


class TestEd25519DecodeFuzz:
    @settings(max_examples=60)
    @given(st.binary(min_size=32, max_size=32))
    def test_decode_is_total_and_canonical(self, data):
        from repro.errors import SerializationError

        group = get_group("ed25519")
        try:
            point = group.element_from_bytes(data)
        except SerializationError:
            return
        assert point.to_bytes() == data


class TestBn254DecodeFuzz:
    @settings(max_examples=25)
    @given(st.binary(min_size=64, max_size=64))
    def test_g1_decode_total(self, data):
        from repro.errors import SerializationError
        from repro.groups.bn254 import bn254_g1

        try:
            point = bn254_g1().element_from_bytes(data)
        except SerializationError:
            return
        assert point.to_bytes() == data
