"""Fixed-base table persistence: codec, store invalidation, warm restarts.

The contract under test: a table that survives on disk must be *exactly*
the table that was built (same lookups, same bits), anything that fails a
check is discarded and rebuilt rather than trusted, and a node restart
over a populated ``data_dir/tables/`` re-seeds the shared cache without
paying a single build (``loads`` up, ``tables_built`` flat — also visible
through the ``repro_fixedbase_*`` gauges).
"""

import asyncio
from dataclasses import replace

import pytest

from repro.errors import SerializationError, StorageError
from repro.groups import (
    FixedBaseTable,
    TableStore,
    clear_precompute_cache,
    fixed_base_table,
    fixed_pow,
    get_group,
    install_table,
    list_groups,
    precompute_stats,
    snapshot_tables,
    table_blob,
    table_from_blob,
)
from repro.groups.tables import (
    TABLE_FORMAT_VERSION,
    TABLE_SUFFIX,
    serialize_table,
    table_name,
)
from repro.storage.atomic import write_versioned

RAW_GROUPS = [
    name for name in list_groups() if getattr(get_group(name), "raw_coords", 0) > 0
]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_precompute_cache()
    yield
    clear_precompute_cache()


# ---------------------------------------------------------------------------
# Codec round-trip and tamper rejection
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("group_name", RAW_GROUPS)
class TestCodec:
    def test_round_trip_is_exact(self, group_name):
        group = get_group(group_name)
        table = FixedBaseTable(group.generator())
        restored = table_from_blob(table_blob(table))
        assert restored.window == table.window
        assert restored.base == table.base
        assert restored.rows() == table.rows()
        for scalar in (0, 1, 2, group.order - 1, 0x1234567890ABCDEF):
            assert restored.pow(scalar) == table.pow(scalar)

    def test_non_generator_base_round_trips(self, group_name):
        group = get_group(group_name)
        base = group.generator() ** 7919
        table = FixedBaseTable(base)
        restored = table_from_blob(table_blob(table))
        assert restored.base == base
        assert restored.pow(12345) == base**12345

    def test_corrupt_body_rejected(self, group_name):
        group = get_group(group_name)
        blob = bytearray(table_blob(FixedBaseTable(group.generator())))
        blob[len(blob) // 2] ^= 0xFF
        # Either the container CRC or the point validation trips; both are
        # "discard" signals to the store.
        with pytest.raises((StorageError, SerializationError)):
            table_from_blob(bytes(blob))

    def test_truncated_payload_rejected(self, group_name):
        group = get_group(group_name)
        from repro.storage.atomic import pack_record

        payload = serialize_table(FixedBaseTable(group.generator()))
        with pytest.raises(SerializationError):
            table_from_blob(pack_record(payload[:-40], TABLE_FORMAT_VERSION))

    def test_wrong_version_rejected(self, group_name):
        group = get_group(group_name)
        from repro.storage.atomic import pack_record

        payload = serialize_table(FixedBaseTable(group.generator()))
        with pytest.raises(StorageError):
            table_from_blob(pack_record(payload, TABLE_FORMAT_VERSION + 1))


def test_unknown_group_rejected():
    from repro.errors import ConfigurationError
    from repro.serialization import encode_bytes, encode_str
    from repro.storage.atomic import pack_record

    payload = (
        encode_str("curve9000")
        + encode_bytes(b"\x04")
        + encode_bytes(b"\x00" * 32)
        + encode_bytes(b"")
    )
    with pytest.raises(ConfigurationError):
        table_from_blob(pack_record(payload, TABLE_FORMAT_VERSION))


def test_swapped_base_encoding_rejected():
    """A payload whose stored base bytes disagree with the rows is torn up."""
    group = get_group("ed25519")
    from repro.serialization import Reader, encode_bytes, encode_str
    from repro.storage.atomic import pack_record

    payload = serialize_table(FixedBaseTable(group.generator()))
    reader = Reader(payload)
    name, window = reader.read_str(), reader.read_bytes()
    reader.read_bytes()  # the honest base encoding
    body = reader.read_bytes()
    forged = (
        encode_str(name)
        + encode_bytes(window)
        + encode_bytes((group.generator() ** 2).to_bytes())
        + encode_bytes(body)
    )
    with pytest.raises(SerializationError):
        table_from_blob(pack_record(forged, TABLE_FORMAT_VERSION))


# ---------------------------------------------------------------------------
# TableStore: save_all idempotence, load_all discard semantics
# ---------------------------------------------------------------------------


class TestTableStore:
    def test_save_all_then_load_all(self, tmp_path):
        store = TableStore(tmp_path / "tables")
        tables = [
            FixedBaseTable(get_group(name).generator()) for name in RAW_GROUPS
        ]
        assert store.save_all(tables) == len(tables)
        # Idempotent: identical content is already on disk.
        assert store.save_all(tables) == 0
        loaded, discarded = store.load_all()
        assert discarded == 0
        assert {t.base.group.name for t in loaded} == set(RAW_GROUPS)
        by_group = {t.base.group.name: t for t in loaded}
        for table in tables:
            assert by_group[table.base.group.name].rows() == table.rows()

    def test_corrupted_file_discarded_and_unlinked(self, tmp_path):
        store = TableStore(tmp_path / "tables")
        table = FixedBaseTable(get_group("ed25519").generator())
        path = store.save(table)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0x55
        path.write_bytes(bytes(raw))
        loaded, discarded = store.load_all()
        assert loaded == [] and discarded == 1
        assert not path.exists()
        # Next life simply rebuilds and re-persists.
        assert store.save_all([table]) == 1
        loaded, discarded = store.load_all()
        assert len(loaded) == 1 and discarded == 0

    def test_version_bumped_file_discarded(self, tmp_path):
        store = TableStore(tmp_path / "tables")
        table = FixedBaseTable(get_group("secp256k1").generator())
        path = store.path_for(table)
        write_versioned(path, serialize_table(table), TABLE_FORMAT_VERSION + 1)
        loaded, discarded = store.load_all()
        assert loaded == [] and discarded == 1
        assert not path.exists()

    def test_unknown_group_file_discarded(self, tmp_path):
        from repro.serialization import encode_bytes, encode_str

        store = TableStore(tmp_path / "tables")
        payload = (
            encode_str("curve9000")
            + encode_bytes(b"\x04")
            + encode_bytes(b"\x00" * 32)
            + encode_bytes(b"")
        )
        path = store.directory / f"{'0' * 32}{TABLE_SUFFIX}"
        write_versioned(path, payload, TABLE_FORMAT_VERSION)
        loaded, discarded = store.load_all()
        assert loaded == [] and discarded == 1
        assert not path.exists()

    def test_filename_is_stable_per_base(self):
        g = get_group("ed25519").generator()
        assert table_name("ed25519", g.to_bytes()) == table_name(
            "ed25519", g.to_bytes()
        )
        assert table_name("ed25519", g.to_bytes()) != table_name(
            "secp256k1", g.to_bytes()
        )


# ---------------------------------------------------------------------------
# Cache install semantics (loads vs builds)
# ---------------------------------------------------------------------------


class TestInstall:
    def test_install_counts_as_load_not_build(self):
        group = get_group("ed25519")
        table = FixedBaseTable(group.generator())
        restored = table_from_blob(table_blob(table))
        clear_precompute_cache()
        assert install_table(restored) is True
        stats = precompute_stats()
        assert stats["loads"] == 1 and stats["tables_built"] == 0
        # The cache serves from the installed table: pure hits, no builds.
        assert fixed_pow(group.generator(), 987654321) == group.generator() ** 987654321
        stats = precompute_stats()
        assert stats["hits"] == 1 and stats["tables_built"] == 0

    def test_reinstall_is_refused(self):
        table = FixedBaseTable(get_group("ed25519").generator())
        assert install_table(table) is True
        assert install_table(table) is False
        assert precompute_stats()["loads"] == 1

    def test_snapshot_reflects_installed_and_built(self):
        install_table(FixedBaseTable(get_group("ed25519").generator()))
        fixed_base_table(get_group("secp256k1").generator())
        names = {t.base.group.name for t in snapshot_tables()}
        assert names == {"ed25519", "secp256k1"}


# ---------------------------------------------------------------------------
# Node restart smoke test: zero rebuilds for seen bases
# ---------------------------------------------------------------------------


@pytest.mark.integration
def test_node_restart_rebuilds_zero_tables(tmp_path, keys_bls04, keys_cks05):
    """Life 1 builds tables under real traffic and persists them at stop;
    life 2 (same ``data_dir``, cold cache) loads every one of them and
    rebuilds zero tables for the bases life 1 saw.  Fresh traffic may
    still promote *new* bases (each life's message hashes recur within
    that life), so the accounting is by base key, not a flat zero."""
    from repro.network.local import LocalHub
    from repro.service.client import ThetacryptClient
    from repro.service.config import make_local_configs
    from repro.service.node import ThetacryptNode
    from repro.telemetry import default_registry

    key_material = {"bls04": keys_bls04, "cks05": keys_cks05}

    def configs():
        return [
            replace(c, data_dir=str(tmp_path / f"node{c.node_id}"))
            for c in make_local_configs(4, 1, transport="local", rpc_base_port=0)
        ]

    async def boot():
        hub = LocalHub()
        nodes = []
        for config in configs():
            node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
            for key_id, km in key_material.items():
                node.install_key(
                    key_id, km.scheme, km.public_key, km.share_for(config.node_id)
                )
            await node.start()
            nodes.append(node)
        client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
        return nodes, client

    async def traffic(client, life):
        # Enough repetition that every recurring base (generators, public
        # keys, verification keys) crosses the promotion threshold.  The
        # messages are distinct per life: reusing them would replay the
        # durable result cache and run no crypto at all.
        for i in range(4):
            message = f"table persistence {life}.{i}".encode()
            signature = await client.sign("bls04", message)
            assert await client.verify_signature("bls04", message, signature)
            coin = await client.flip_coin("cks05", f"coin {life}.{i}".encode())
            assert len(coin) == 32

    async def shutdown(nodes, client):
        await client.close()
        for node in nodes:
            await node.stop()

    def fixedbase_gauges():
        registry = default_registry()
        registry.collect()
        return {
            stat: registry.get(f"repro_fixedbase_tables_{stat}_total").value
            for stat in ("built", "hits", "promotions", "loaded")
        }

    def cache_keys():
        return {(t.base.group.name, t.base.to_bytes()) for t in snapshot_tables()}

    async def first_life():
        nodes, client = await boot()
        try:
            await traffic(client, 1)
        finally:
            await shutdown(nodes, client)
        stats = precompute_stats()
        assert stats["tables_built"] > 0, "traffic never promoted a base"
        return stats["tables_built"], cache_keys()

    async def second_life(built_before, seen_keys):
        nodes, client = await boot()
        try:
            loaded = sum(n._recovery.get("tables_loaded", 0) for n in nodes)
            discarded = sum(n._recovery.get("tables_discarded", 0) for n in nodes)
            assert discarded == 0
            assert loaded > 0, "nothing was persisted for the second life"
            stats = precompute_stats()
            # Every table life 1 built came off disk; none was rebuilt.
            assert stats["loads"] == built_before
            assert stats["tables_built"] == 0
            assert cache_keys() == seen_keys
            # Exponentiating every seen base is pure hits, zero builds.
            for table in snapshot_tables():
                fixed_pow(table.base, 0x5EED)
            stats = precompute_stats()
            assert stats["hits"] == built_before
            assert stats["tables_built"] == 0
            await traffic(client, 2)
        finally:
            await shutdown(nodes, client)
        stats = precompute_stats()
        # The headline invariant: any table built in life 2 is for a base
        # life 1 never promoted (this life's fresh message hashes) — the
        # seen bases all came off disk and stayed resident.
        new_keys = cache_keys() - seen_keys
        assert stats["tables_built"] == len(new_keys)
        assert seen_keys <= cache_keys()
        assert stats["hits"] > built_before
        gauges = fixedbase_gauges()
        assert gauges["built"] == stats["tables_built"]
        assert gauges["loaded"] == stats["loads"] == built_before
        assert gauges["hits"] == stats["hits"]

    clear_precompute_cache()
    built, seen_keys = asyncio.run(first_life())
    for node_dir in tmp_path.glob("node*"):
        files = list((node_dir / "tables").glob(f"*{TABLE_SUFFIX}"))
        assert files, f"{node_dir.name} persisted no tables"
    clear_precompute_cache()  # simulate the fresh process of a real restart
    asyncio.run(second_life(built, seen_keys))


@pytest.mark.integration
def test_worker_warm_start_installs_tables_from_blobs():
    """Pool workers receive persisted tables as blobs and install them
    (loads, not builds) before the generator warm-up would rebuild them."""
    from repro.workers import tasks
    from repro.workers.blobs import parent_table_digests, register_table_blob

    group = get_group("ed25519")
    table = FixedBaseTable(group.generator())
    blob = table_blob(table)
    digest = register_table_blob(blob)
    assert digest in parent_table_digests()

    # Run the worker initializer in-process against a clean cache: the
    # table must arrive via the blob, leaving nothing for the warm-up loop
    # to build for that base.
    clear_precompute_cache()
    tasks.warm_worker(("ed25519",), ((digest, blob),), (digest,))
    stats = precompute_stats()
    assert stats["loads"] == 1
    assert stats["tables_built"] == 0
    assert fixed_pow(group.generator(), 31337) == group.generator() ** 31337


@pytest.mark.integration
def test_worker_warm_start_survives_bad_table_blob():
    from repro.workers import tasks

    clear_precompute_cache()
    # A digest with no matching blob and a corrupted blob: neither may
    # kill the worker initializer.
    blob = bytearray(table_blob(FixedBaseTable(get_group("ed25519").generator())))
    blob[-1] ^= 0xAA
    tasks.warm_worker(("ed25519",), (("deadbeef", bytes(blob)),), ("deadbeef", "missing"))
    # The warm-up fell back to building the generator table itself.
    assert precompute_stats()["tables_built"] >= 1
