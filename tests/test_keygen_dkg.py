"""Unified dealer and distributed key generation."""

import pytest

from repro.errors import ConfigurationError, ProtocolAbortedError
from repro.groups import get_group
from repro.mathutils.lagrange import lagrange_coefficients_at_zero
from repro.schemes import generate_keys
from repro.schemes.dkg import DkgDeal, deal, dkg_all_parties, finalize
from repro.schemes.keygen import deal_all_schemes
from repro.sharing.shamir import ShamirShare


class TestDealer:
    @pytest.mark.parametrize("scheme", ["sg02", "bls04", "kg20", "cks05", "bz03"])
    def test_deals_consistent_material(self, scheme):
        km = generate_keys(scheme, 1, 4)
        assert km.scheme == scheme
        assert km.threshold == 1
        assert km.parties == 4
        assert len(km.key_shares) == 4
        assert km.share_for(3) is km.key_shares[2]

    def test_sh00_needs_modulus_source(self, small_modulus):
        km = generate_keys("sh00", 1, 4, rsa_modulus=small_modulus)
        assert km.public_key.n == small_modulus.n

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_keys("nope", 1, 4)

    def test_group_override(self):
        km = generate_keys("sg02", 1, 4, group_name="ed25519")
        assert km.public_key.group_name == "ed25519"

    def test_deal_all_schemes(self, small_modulus):
        # Restrict to fast schemes plus sh00 via a tiny modulus by hand.
        keys = deal_all_schemes(1, 4, schemes=("sg02", "cks05", "kg20"))
        assert set(keys) == {"sg02", "cks05", "kg20"}

    def test_share_ids_are_one_based(self):
        km = generate_keys("cks05", 1, 4)
        assert [s.id for s in km.key_shares] == [1, 2, 3, 4]


class TestDkg:
    def test_all_parties_agree(self):
        results = dkg_all_parties(2, 5)
        group_keys = {r.group_key.to_bytes() for r in results}
        assert len(group_keys) == 1
        vks = {tuple(v.to_bytes() for v in r.verification_keys) for r in results}
        assert len(vks) == 1

    def test_shares_interpolate_to_group_key(self):
        group = get_group("ed25519")
        results = dkg_all_parties(2, 5)
        ids = [1, 3, 5]
        lam = lagrange_coefficients_at_zero(ids, group.order)
        x = sum(results[i - 1].key_share * lam[i] for i in ids) % group.order
        assert group.generator() ** x == results[0].group_key

    def test_verification_keys_match_shares(self):
        group = get_group("ed25519")
        results = dkg_all_parties(1, 4)
        for r in results:
            assert (
                group.generator() ** r.key_share
                == results[0].verification_keys[r.party_id - 1]
            )

    def test_bad_dealer_is_disqualified(self):
        group = get_group("ed25519")
        deals = {i: deal(i, 1, 4, group) for i in range(1, 5)}
        # Corrupt dealer 2's sub-share for party 1.
        bad = deals[2]
        corrupted = dict(bad.sub_shares)
        corrupted[1] = ShamirShare(1, (corrupted[1].value + 1) % group.order)
        deals_for_p1 = dict(deals)
        deals_for_p1[2] = DkgDeal(2, bad.commitment, corrupted)
        result = finalize(1, 1, 4, group, deals_for_p1)
        assert 2 not in result.qualified
        assert set(result.qualified) == {1, 3, 4}

    def test_abort_when_too_few_qualified(self):
        group = get_group("ed25519")
        deals = {i: deal(i, 2, 4, group) for i in range(1, 5)}
        # Corrupt everyone but dealer 1 → only 1 qualified < t+1 = 3.
        for dealer in (2, 3, 4):
            d = deals[dealer]
            corrupted = dict(d.sub_shares)
            corrupted[1] = ShamirShare(1, (corrupted[1].value + 1) % group.order)
            deals[dealer] = DkgDeal(dealer, d.commitment, corrupted)
        with pytest.raises(ProtocolAbortedError):
            finalize(1, 2, 4, group, deals)

    def test_dkg_key_usable_for_coin_scheme(self):
        """DKG output plugs into CKS05 in place of dealer output."""
        from repro.schemes.cks05 import Cks05Coin, Cks05KeyShare, Cks05PublicKey

        results = dkg_all_parties(1, 4)
        public = Cks05PublicKey(
            "ed25519",
            1,
            4,
            results[0].group_key,
            tuple(results[0].verification_keys),
        )
        shares = [
            Cks05KeyShare(r.party_id, r.key_share, public) for r in results
        ]
        coin = Cks05Coin()
        cs = [coin.create_coin_share(shares[i], b"dkg-coin") for i in (0, 2)]
        for share in cs:
            coin.verify_coin_share(public, b"dkg-coin", share)
        assert len(coin.combine(public, b"dkg-coin", cs)) == 32
