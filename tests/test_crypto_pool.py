"""Crypto worker-pool offload: tasks, pool degradation, cluster equivalence.

The pool's contract (docs/performance.md) is that offload is a pure
performance change: pooled and inline runs produce identical protocol
results, and *any* infrastructure failure — disabled pool, dead worker,
unpicklable task — degrades to inline execution instead of failing the
instance.  These tests exercise each degradation edge explicitly, plus
the workers=0 vs pooled equivalence across every scheme.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.errors import ConfigurationError, ThetacryptError
from repro.network.local import LocalHub
from repro.schemes import bls04
from repro.schemes.keystore import export_key_share, export_public_key
from repro.service.config import NodeConfig, make_local_configs
from repro.service.node import ThetacryptNode
from repro.telemetry import MetricRegistry, summarize
from repro.telemetry.instruments import EventLoopLagSampler
from repro.workers import CryptoPool, CryptoPoolUnavailable, OffloadPolicy
from repro.workers import tasks as pool_tasks


def _spec(material, kind: str, data: bytes, party: int = 1) -> dict:
    scheme = material.scheme
    return {
        "scheme": scheme,
        "public": export_public_key(scheme, material.public_key),
        "kind": kind,
        "data": data,
        "share": export_key_share(scheme, material.share_for(party)),
    }


class TestWorkerTasks:
    """The task functions run in-process here: pure logic, no pool."""

    def test_create_and_verify_round_trip(self, keys_bls04):
        message = b"pool task round trip"
        payloads = [
            pool_tasks.create_share(_spec(keys_bls04, "sign", message, party))
            for party in (1, 2, 3)
        ]
        verify = _spec(keys_bls04, "sign", message)
        verify.pop("share")
        verdicts = pool_tasks.verify_shares(verify, payloads)
        assert verdicts == [None, None, None]

    def test_verdicts_identify_culprits(self, keys_bls04):
        message = b"culprit identification"
        good = pool_tasks.create_share(_spec(keys_bls04, "sign", message, 1))
        # A structurally valid share computed over a *different* message:
        # decodes fine, fails verification.
        wrong = pool_tasks.create_share(_spec(keys_bls04, "sign", b"other", 2))
        verify = _spec(keys_bls04, "sign", message)
        verify.pop("share")
        verdicts = pool_tasks.verify_shares(
            verify, [good, b"\x00garbage", wrong]
        )
        assert verdicts[0] is None
        assert isinstance(verdicts[1], str)
        assert isinstance(verdicts[2], str)

    def test_verdicts_per_scheme(self, all_keys):
        requests = {
            "sg02": ("decrypt", None),
            "bz03": ("decrypt", None),
            "sh00": ("sign", b"sh00 pool msg"),
            "bls04": ("sign", b"bls04 pool msg"),
            "cks05": ("coin", b"pool coin"),
        }
        from repro.schemes.base import get_scheme

        for scheme, (kind, data) in requests.items():
            material = all_keys[scheme]
            if kind == "decrypt":
                data = get_scheme(scheme).encrypt(
                    material.public_key, b"pool secret", b"label"
                ).to_bytes()
            payloads = [
                pool_tasks.create_share(_spec(material, kind, data, party))
                for party in (1, 2)
            ]
            verify = _spec(material, kind, data)
            verify.pop("share")
            verdicts = pool_tasks.verify_shares(verify, payloads)
            assert verdicts == [None, None], f"{scheme}: {verdicts}"
            bad = pool_tasks.verify_shares(verify, [payloads[0], b"junk"])
            assert bad[0] is None and isinstance(bad[1], str), f"{scheme}: {bad}"

    def test_create_share_bad_request_raises_crypto_error(self, keys_sg02):
        """A malformed request is a *cryptographic* failure: it must raise
        a ThetacryptError (which the pool propagates as outcome=error),
        not an infrastructure CryptoPoolUnavailable."""
        spec = _spec(keys_sg02, "decrypt", b"not a ciphertext")
        with pytest.raises(ThetacryptError):
            pool_tasks.create_share(spec)


class TestPoolDegradation:
    def test_disabled_pool_raises_unavailable(self):
        registry = MetricRegistry()
        pool = CryptoPool(0, registry=registry)
        assert not pool.enabled

        async def scenario():
            with pytest.raises(CryptoPoolUnavailable):
                await pool.run("health", pool_tasks.worker_health)

        asyncio.run(scenario())
        assert pool.stats()["fallbacks"] == 1

    def test_closed_pool_raises_unavailable(self):
        pool = CryptoPool(1, registry=MetricRegistry())
        pool.close_sync()

        async def scenario():
            with pytest.raises(CryptoPoolUnavailable):
                await pool.run("health", pool_tasks.worker_health)

        asyncio.run(scenario())
        assert not pool.enabled

    def test_unpicklable_task_falls_back_pool_survives(self):
        pool = CryptoPool(1, registry=MetricRegistry())

        async def scenario():
            with pytest.raises(CryptoPoolUnavailable):
                await pool.run("bad", lambda: 1)
            # The failure did not poison the pool: a real task still runs.
            health = await pool.run("health", pool_tasks.worker_health)
            # warm_worker built the fixed-base tables in the worker.
            assert health["precompute"]["tables"] >= 1
            await pool.close()

        asyncio.run(scenario())
        stats = pool.stats()
        assert stats["fallbacks"] == 1 and stats["tasks_ok"] == 1

    @pytest.mark.slow
    def test_worker_killed_then_pool_restarts(self):
        pool = CryptoPool(1, registry=MetricRegistry())

        async def scenario():
            health = await pool.run("health", pool_tasks.worker_health)
            first_pid = health["pid"]
            os.kill(first_pid, signal.SIGKILL)
            # The dying worker surfaces as CryptoPoolUnavailable on some
            # subsequent task (the breakage can take one submit to notice).
            deadline = time.monotonic() + 30.0
            saw_crash = False
            while not saw_crash and time.monotonic() < deadline:
                try:
                    await pool.run("health", pool_tasks.worker_health)
                except CryptoPoolUnavailable:
                    saw_crash = True
            assert saw_crash, "SIGKILLed worker never surfaced as a crash"
            # Self-healing: the next task spawns a fresh worker.
            health = await pool.run("health", pool_tasks.worker_health)
            assert health["pid"] != first_pid
            await pool.close()

        asyncio.run(scenario())
        stats = pool.stats()
        assert stats["crashes"] >= 1
        assert stats["restarts"] >= 1
        assert stats["tasks_ok"] >= 2


def _cluster(all_keys, crypto_pool=None, parties=4, threshold=1):
    configs = make_local_configs(
        parties, threshold, transport="local", rpc_base_port=0
    )
    hub = LocalHub()
    nodes = []
    for config in configs:
        node = ThetacryptNode(
            config, transport=hub.endpoint(config.node_id), crypto_pool=crypto_pool
        )
        for key_id, material in all_keys.items():
            node.install_key(
                key_id,
                material.scheme,
                material.public_key,
                material.share_for(config.node_id),
            )
        nodes.append(node)
    return nodes


async def _run_all_kinds(nodes, all_keys) -> dict[str, bytes]:
    """One request per scheme, cluster-wide; returns scheme -> result."""
    from repro.schemes.base import get_scheme

    for node in nodes:
        await node.start()
    results = {}
    try:
        for scheme in ("sg02", "bz03"):
            ciphertext = get_scheme(scheme).encrypt(
                all_keys[scheme].public_key, b"equivalence secret", b"label"
            ).to_bytes()
            gathered = await asyncio.gather(
                *(
                    node.run_request("decrypt", scheme, ciphertext, b"label")
                    for node in nodes
                )
            )
            assert len(set(gathered)) == 1
            results[scheme] = gathered[0]
        for scheme in ("sh00", "bls04", "kg20"):
            gathered = await asyncio.gather(
                *(
                    node.run_request("sign", scheme, b"equivalence message")
                    for node in nodes
                )
            )
            assert len(set(gathered)) == 1
            results[scheme] = gathered[0]
        gathered = await asyncio.gather(
            *(node.run_request("coin", "cks05", b"equivalence coin") for node in nodes)
        )
        assert len(set(gathered)) == 1
        results["cks05"] = gathered[0]
    finally:
        for node in nodes:
            await node.stop()
    return results


@pytest.mark.integration
class TestClusterEquivalence:
    @pytest.mark.slow
    def test_pooled_matches_inline_all_schemes(self, all_keys):
        """crypto_workers=0 and pooled runs agree for every scheme.

        The five deterministic schemes must be *bit-identical*; kg20 signs
        with random nonces, so its two runs are each internally consistent
        and both verify instead.
        """

        async def scenario():
            inline = await _run_all_kinds(_cluster(all_keys), all_keys)
            # mode="always": this is an equivalence test, so the pool must
            # actually run, whatever this host's core count would decide.
            pool = CryptoPool(
                2, registry=MetricRegistry(), policy=OffloadPolicy(mode="always")
            )
            try:
                pooled = await _run_all_kinds(
                    _cluster(all_keys, crypto_pool=pool), all_keys
                )
                stats = pool.stats()
            finally:
                await pool.close()
            return inline, pooled, stats

        inline, pooled, stats = asyncio.run(scenario())
        for scheme in ("sg02", "bz03", "sh00", "bls04", "cks05"):
            assert inline[scheme] == pooled[scheme], (
                f"{scheme}: pooled result differs from inline"
            )
        public = all_keys["kg20"].public_key
        for result in (inline["kg20"], pooled["kg20"]):
            from repro.schemes import kg20
            from repro.schemes.base import get_scheme

            signature = kg20.Kg20Signature.from_bytes(result, public.group)
            # verify() raises on an invalid signature.
            get_scheme("kg20").verify(public, b"equivalence message", signature)
        # The pooled run genuinely offloaded (non-interactive schemes only;
        # kg20 stays inline by design) and nothing degraded.
        assert stats["tasks_ok"] > 0
        assert stats["fallbacks"] == 0

    def test_cluster_with_broken_pool_still_finalizes(self, keys_bls04):
        """A pool whose workers keep dying must not cost liveness."""

        class AlwaysBrokenPool(CryptoPool):
            async def run(self, op, fn, *args):
                self._count(op, "fallback")
                raise CryptoPoolUnavailable("induced breakage")

        pool = AlwaysBrokenPool(
            2, registry=MetricRegistry(), policy=OffloadPolicy(mode="always")
        )

        async def scenario():
            nodes = _cluster({"bls04": keys_bls04}, crypto_pool=pool)
            for node in nodes:
                await node.start()
            try:
                gathered = await asyncio.gather(
                    *(
                        node.run_request("sign", "bls04", b"broken pool msg")
                        for node in nodes
                    )
                )
            finally:
                for node in nodes:
                    await node.stop()
            return gathered

        gathered = asyncio.run(scenario())
        assert len(set(gathered)) == 1
        from repro.schemes.base import get_scheme

        signature = bls04.Bls04Signature.from_bytes(gathered[0])
        # verify() raises on an invalid signature.
        get_scheme("bls04").verify(keys_bls04.public_key, b"broken pool msg", signature)
        assert pool.stats()["fallbacks"] > 0


class TestServiceWiring:
    def test_config_validation_and_round_trip(self):
        with pytest.raises(ConfigurationError):
            NodeConfig(node_id=1, parties=4, threshold=1, crypto_workers=-1)
        config = make_local_configs(4, 1, crypto_workers=3)[0]
        assert NodeConfig.from_json(config.to_json()).crypto_workers == 3

    def test_node_stats_expose_pool_and_lag(self, keys_cks05):
        async def scenario():
            configs = make_local_configs(
                4,
                1,
                transport="local",
                rpc_base_port=0,
                crypto_workers=1,
                # Force offload so the pool assertions below hold on any
                # host, 1-core CI included.
                offload_policy="always",
            )
            hub = LocalHub()
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                node.install_key(
                    "cks05",
                    "cks05",
                    keys_cks05.public_key,
                    keys_cks05.share_for(config.node_id),
                )
                nodes.append(node)
            pids = []
            try:
                for node in nodes:
                    await node.start()
                await asyncio.gather(
                    *(node.run_request("coin", "cks05", b"stats coin") for node in nodes)
                )
                stats = nodes[0].stats()
                pool = stats["crypto_pool"]
                assert pool["enabled"] and pool["workers"] == 1
                assert pool["tasks_ok"] >= 1 and pool["fallbacks"] == 0
                assert "event_loop_lag" in stats
                pids = [p for node in nodes for p in node.crypto_pool.worker_pids]
                assert pids, "owned pools never spawned workers"
            finally:
                for node in nodes:
                    await node.stop()
            # node.stop() must join owned workers — no orphans.
            for pid in pids:
                with pytest.raises(ProcessLookupError):
                    os.kill(pid, 0)

        asyncio.run(scenario())

    def test_lag_sampler_records(self):
        async def scenario():
            registry = MetricRegistry()
            sampler = EventLoopLagSampler(registry, interval=0.01)
            sampler.start()
            # A deliberate loop stall the sampler must observe.
            await asyncio.sleep(0.03)
            time.sleep(0.08)
            await asyncio.sleep(0.03)
            await sampler.stop()
            summary = summarize(registry.get("repro_event_loop_lag_seconds"))
            assert summary["count"] >= 2
            assert summary["max"] >= 0.05

        asyncio.run(scenario())
