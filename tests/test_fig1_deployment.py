"""The complete Fig. 1 deployment: Θ attached to the chain via proxies.

Each physical "machine" hosts a blockchain validator and a Thetacrypt
instance in the same security domain.  The Thetacrypt instance has **no
network stack of its own**: its P2P messages and its TOB submissions ride
the validator's networks through the proxy modules (§3.6), exactly as the
paper's integration story prescribes.
"""

import asyncio

import pytest

from repro.chain import Transaction, ValidatorNode
from repro.network.local import LocalHub
from repro.network.proxy import P2PProxy, TobProxy
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs


@pytest.mark.integration
def test_theta_over_chain_proxies(keys_sg02, keys_kg20):
    async def scenario():
        n = 4
        chain_hub = LocalHub(latency=lambda a, b: 0.001)
        validators = [
            ValidatorNode(
                i, n, chain_hub.endpoint(i), bridge_host="127.0.0.1", bridge_port=0
            )
            for i in range(1, n + 1)
        ]
        for validator in validators:
            await validator.start()

        theta_nodes = []
        configs = make_local_configs(n, 1, transport="local", rpc_base_port=0)
        try:
            for config, validator in zip(configs, validators):
                host, port = validator.bridge_address
                transport = P2PProxy(config.node_id, host, port, peer_count=n)
                tob = TobProxy(config.node_id, host, port)
                node = ThetacryptNode(config, transport=transport, tob=tob)
                for key_id, km in (("mempool", keys_sg02), ("wallet", keys_kg20)):
                    node.install_key(
                        key_id, km.scheme, km.public_key,
                        km.share_for(config.node_id),
                    )
                await node.start()
                theta_nodes.append(node)

            client = ThetacryptClient(
                {t.config.node_id: t.rpc_address for t in theta_nodes}
            )

            # Non-interactive decryption over the proxied P2P channel.
            ciphertext = await client.encrypt("mempool", b"proxied secret", b"l")
            assert await client.decrypt("mempool", ciphertext, b"l") == b"proxied secret"

            # Interactive FROST over the proxied TOB channel — this is the
            # case where the host's atomic broadcast synchronizes rounds.
            signature = await client.sign("wallet", b"signed over the chain")
            assert await client.verify_signature(
                "wallet", b"signed over the chain", signature
            )

            # The chain keeps working underneath its Θ passengers.
            validators[0].submit_transaction(Transaction("f", b"mint alice 5"))
            await validators[0].propose()
            await asyncio.gather(*(v.await_height(1) for v in validators))
            assert all(v.state.balances == {"alice": 5} for v in validators)

            await client.close()
        finally:
            for node in theta_nodes:
                await node.stop()
            for validator in validators:
                await validator.stop()

    asyncio.run(scenario())
