"""Chain host platform: mixed blocks, multi-block flows, Θ-signed checkpoints."""

import asyncio

import pytest

from repro.chain import Transaction, ValidatorNode, block_hash
from repro.network.local import LocalHub


def _chain(n=4, decryptor=None):
    hub = LocalHub(latency=lambda a, b: 0.001)
    validators = [
        ValidatorNode(i, n, hub.endpoint(i), decryptor=decryptor)
        for i in range(1, n + 1)
    ]
    return hub, validators


@pytest.mark.integration
class TestMixedBlocks:
    def test_plain_and_encrypted_in_one_block(self, keys_sg02):
        async def scenario():
            from repro.schemes import get_scheme

            cipher = get_scheme("sg02")
            shares = keys_sg02.key_shares

            async def local_decryptor(ciphertext_bytes: bytes) -> bytes:
                ciphertext = __import__(
                    "repro.schemes.sg02", fromlist=["Sg02Ciphertext"]
                ).Sg02Ciphertext.from_bytes(
                    ciphertext_bytes, keys_sg02.public_key.group
                )
                dec = [
                    cipher.create_decryption_share(shares[i], ciphertext)
                    for i in (0, 1)
                ]
                return cipher.combine(keys_sg02.public_key, ciphertext, dec)

            hub, validators = _chain(3, decryptor=local_decryptor)
            for validator in validators:
                await validator.start()
            try:
                validators[0].submit_transaction(
                    Transaction("f", b"mint alice 100")
                )
                hidden = cipher.encrypt(
                    keys_sg02.public_key, b"transfer alice bob 60", b""
                ).to_bytes()
                validators[0].submit_transaction(
                    Transaction("alice", hidden, encrypted=True)
                )
                await validators[0].propose()
                await asyncio.gather(*(v.await_height(1) for v in validators))
                assert all(
                    v.state.balances == {"alice": 40, "bob": 60}
                    for v in validators
                )
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())

    def test_failed_decryption_skips_tx_but_chain_continues(self):
        async def scenario():
            async def broken_decryptor(ciphertext: bytes) -> bytes:
                raise RuntimeError("theta unavailable")

            hub, validators = _chain(2, decryptor=broken_decryptor)
            for validator in validators:
                await validator.start()
            try:
                validators[0].submit_transaction(
                    Transaction("u", b"garbage", encrypted=True)
                )
                validators[0].submit_transaction(Transaction("f", b"mint ok 1"))
                await validators[0].propose()
                await asyncio.gather(*(v.await_height(1) for v in validators))
                for validator in validators:
                    assert validator.state.balances == {"ok": 1}
                    assert len(validator.state.rejected) == 1
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())


@pytest.mark.integration
class TestMultiBlockFlows:
    def test_ten_blocks_stay_consistent(self):
        async def scenario():
            hub, validators = _chain(4)
            for validator in validators:
                await validator.start()
            try:
                for height in range(1, 11):
                    proposer = validators[height % 4]
                    proposer.submit_transaction(
                        Transaction("f", b"mint acct%d %d" % (height, height))
                    )
                    await proposer.propose()
                await asyncio.gather(*(v.await_height(10) for v in validators))
                heads = {block_hash(v.head()) for v in validators}
                roots = {v.state_root() for v in validators}
                assert len(heads) == 1 and len(roots) == 1
                assert validators[0].state.balances["acct7"] == 7
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())

    def test_checkpoint_signed_by_theta(self, keys_bls04):
        """A BLS-certified state checkpoint: chain + Θ working together."""

        async def scenario():
            from repro.schemes import get_scheme

            hub, validators = _chain(4)
            for validator in validators:
                await validator.start()
            try:
                validators[0].submit_transaction(Transaction("f", b"mint a 5"))
                await validators[0].propose()
                await asyncio.gather(*(v.await_height(1) for v in validators))
                checkpoint = validators[0].state_root()
                scheme = get_scheme("bls04")
                partials = [
                    scheme.partial_sign(keys_bls04.share_for(i), checkpoint)
                    for i in (1, 3)
                ]
                certificate = scheme.combine(
                    keys_bls04.public_key, checkpoint, partials
                )
                # Any light client can verify the certified checkpoint.
                scheme.verify(keys_bls04.public_key, checkpoint, certificate)
                # And it certifies THE state every replica computed.
                assert all(v.state_root() == checkpoint for v in validators)
            finally:
                for validator in validators:
                    await validator.stop()

        asyncio.run(scenario())
