"""SH00 (Shoup threshold RSA): robust signing with integer ZKPs."""

import pytest

from repro.errors import (
    InvalidShareError,
    InvalidSignatureError,
    ThresholdNotReachedError,
)
from repro.rsa.keygen import modulus_for_bits
from repro.schemes import sh00
from repro.schemes.sh00 import (
    Sh00Signature,
    Sh00SignatureScheme,
    Sh00SignatureShare,
    _full_domain_hash,
)


@pytest.fixture(scope="module")
def scheme():
    return Sh00SignatureScheme()


@pytest.fixture(scope="module")
def material(small_modulus):
    return sh00.keygen(2, 5, modulus=small_modulus)


class TestHappyPath:
    def test_sign_verify(self, scheme, material):
        public, shares = material
        msg = b"sign me"
        partials = [scheme.partial_sign(shares[i], msg) for i in (0, 2, 4)]
        for p in partials:
            scheme.verify_signature_share(public, msg, p)
        signature = scheme.combine(public, msg, partials)
        scheme.verify(public, msg, signature)

    def test_signature_is_plain_rsa(self, scheme, material):
        # y^e == H(m)² mod n: verifiable with no threshold machinery at all.
        public, shares = material
        msg = b"plain rsa"
        partials = [scheme.partial_sign(shares[i], msg) for i in (0, 1, 2)]
        signature = scheme.combine(public, msg, partials)
        x = _full_domain_hash(msg, public.n)
        assert pow(signature.value, public.e, public.n) == x

    def test_any_quorum(self, scheme, material):
        public, shares = material
        msg = b"quorums"
        for ids in ((0, 1, 2), (2, 3, 4), (0, 2, 4)):
            partials = [scheme.partial_sign(shares[i], msg) for i in ids]
            scheme.verify(public, msg, scheme.combine(public, msg, partials))

    def test_deterministic_signature_value(self, scheme, material):
        # RSA-FDH: any quorum assembles the *same* signature.
        public, shares = material
        msg = b"unique"
        sig_a = scheme.combine(
            public, msg, [scheme.partial_sign(shares[i], msg) for i in (0, 1, 2)]
        )
        sig_b = scheme.combine(
            public, msg, [scheme.partial_sign(shares[i], msg) for i in (2, 3, 4)]
        )
        assert sig_a.value == sig_b.value

    def test_fixture_modulus_flow(self, scheme):
        public, shares = sh00.keygen(1, 4, bits=512)
        msg = b"fixture 512"
        partials = [scheme.partial_sign(shares[i], msg) for i in (0, 3)]
        for p in partials:
            scheme.verify_signature_share(public, msg, p)
        scheme.verify(public, msg, scheme.combine(public, msg, partials))

    def test_metadata(self, scheme):
        assert scheme.info.hardness == "RSA"
        assert scheme.info.verification == "ZKP"


class TestNegativePaths:
    def test_wrong_message_rejected(self, scheme, material):
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"msg-a") for i in (0, 1, 2)]
        signature = scheme.combine(public, b"msg-a", partials)
        with pytest.raises(InvalidSignatureError):
            scheme.verify(public, b"msg-b", signature)

    def test_forged_share_value_rejected(self, scheme, material):
        public, shares = material
        msg = b"forge"
        good = scheme.partial_sign(shares[0], msg)
        forged = Sh00SignatureShare(
            good.id, (good.value * 2) % public.n, good.challenge, good.response
        )
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, msg, forged)

    def test_share_replay_across_messages_rejected(self, scheme, material):
        public, shares = material
        share = scheme.partial_sign(shares[0], b"message one")
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, b"message two", share)

    def test_share_id_out_of_range(self, scheme, material):
        public, shares = material
        good = scheme.partial_sign(shares[0], b"m")
        bad = Sh00SignatureShare(42, good.value, good.challenge, good.response)
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, b"m", bad)

    def test_share_value_out_of_range(self, scheme, material):
        public, shares = material
        good = scheme.partial_sign(shares[0], b"m")
        bad = Sh00SignatureShare(good.id, 0, good.challenge, good.response)
        with pytest.raises(InvalidShareError):
            scheme.verify_signature_share(public, b"m", bad)

    def test_threshold_enforced(self, scheme, material):
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"m") for i in (0, 1)]
        with pytest.raises(ThresholdNotReachedError):
            scheme.combine(public, b"m", partials)

    def test_tampered_signature_rejected(self, scheme, material):
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"m") for i in (0, 1, 2)]
        sig = scheme.combine(public, b"m", partials)
        with pytest.raises(InvalidSignatureError):
            scheme.verify(public, b"m", Sh00Signature(sig.value + 1))

    def test_party_count_must_stay_below_exponent(self, small_modulus):
        with pytest.raises(InvalidSignatureError):
            sh00.keygen(2, 70000, modulus=small_modulus)


class TestFullDomainHash:
    def test_in_range_and_square(self, material):
        public, _ = material
        x = _full_domain_hash(b"anything", public.n)
        assert 0 < x < public.n

    def test_deterministic(self, material):
        public, _ = material
        assert _full_domain_hash(b"a", public.n) == _full_domain_hash(b"a", public.n)

    def test_distinct_messages(self, material):
        public, _ = material
        assert _full_domain_hash(b"a", public.n) != _full_domain_hash(b"b", public.n)


class TestSerialization:
    def test_share_round_trip(self, scheme, material):
        public, shares = material
        share = scheme.partial_sign(shares[0], b"ser")
        restored = Sh00SignatureShare.from_bytes(share.to_bytes())
        scheme.verify_signature_share(public, b"ser", restored)

    def test_signature_round_trip(self, scheme, material):
        public, shares = material
        partials = [scheme.partial_sign(shares[i], b"ser") for i in (0, 1, 2)]
        sig = scheme.combine(public, b"ser", partials)
        restored = Sh00Signature.from_bytes(sig.to_bytes())
        scheme.verify(public, b"ser", restored)

    def test_public_key_round_trip(self, material):
        public, _ = material
        restored = sh00.Sh00PublicKey.from_bytes(public.to_bytes())
        assert restored.n == public.n
        assert restored.verification_keys == public.verification_keys


@pytest.mark.slow
def test_larger_fixture_sizes():
    """1024-bit modulus end-to-end (the paper also benchmarks 2048/4096)."""
    scheme = Sh00SignatureScheme()
    public, shares = sh00.keygen(1, 4, bits=1024)
    msg = b"big modulus"
    partials = [scheme.partial_sign(shares[i], msg) for i in (1, 2)]
    for p in partials:
        scheme.verify_signature_share(public, msg, p)
    scheme.verify(public, msg, scheme.combine(public, msg, partials))
