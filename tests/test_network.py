"""Network layer: local hub, TCP transport, gossip overlay, sequencer TOB."""

import asyncio

import pytest

from repro.core.messages import Channel, ProtocolMessage
from repro.errors import ConfigurationError, NetworkError
from repro.network.gossip import GossipOverlay, _overlay_neighbors
from repro.network.local import LocalHub
from repro.network.manager import NetworkManager
from repro.network.tcp import TcpP2P
from repro.network.tob import SequencerTob


def collect_handler(store):
    async def handler(sender, data):
        store.append((sender, data))

    return handler


class TestLocalHub:
    def test_send_and_broadcast(self):
        async def scenario():
            hub = LocalHub()
            endpoints = {i: hub.endpoint(i) for i in (1, 2, 3)}
            received = {i: [] for i in endpoints}
            for i, ep in endpoints.items():
                ep.set_handler(collect_handler(received[i]))
            await endpoints[1].send(2, b"direct")
            await endpoints[1].broadcast(b"flood")
            await hub.drain()
            assert (1, b"direct") in received[2]
            assert (1, b"flood") in received[2]
            assert (1, b"flood") in received[3]
            assert received[1] == []  # no self-delivery

        asyncio.run(scenario())

    def test_latency_injection_orders_delivery(self):
        async def scenario():
            # 1→2 is slow, 1→3 fast: 3 must receive first.
            hub = LocalHub(latency=lambda a, b: 0.05 if b == 2 else 0.001)
            order = []

            async def make(i):
                async def handler(sender, data):
                    order.append(i)

                return handler

            for i in (1, 2, 3):
                hub.endpoint(i)
            hub.endpoint(2).set_handler(collect_handler([]) if False else None)

            async def record(i):
                async def handler(sender, data):
                    order.append(i)

                hub.endpoint(i).set_handler(handler)

            await record(2)
            await record(3)
            await hub.endpoint(1).broadcast(b"x")
            await hub.drain()
            assert order == [3, 2]

        asyncio.run(scenario())

    def test_drop_link_fault_injection(self):
        async def scenario():
            hub = LocalHub()
            received = []
            hub.endpoint(1)
            hub.endpoint(2).set_handler(collect_handler(received))
            hub.drop_link(1, 2)
            await hub.endpoint(1).send(2, b"lost")
            await hub.drain()
            assert received == []
            hub.restore_link(1, 2)
            await hub.endpoint(1).send(2, b"found")
            await hub.drain()
            assert received == [(1, b"found")]

        asyncio.run(scenario())

    def test_self_send_rejected(self):
        async def scenario():
            hub = LocalHub()
            ep = hub.endpoint(1)
            with pytest.raises(NetworkError):
                await ep.send(1, b"me")

        asyncio.run(scenario())

    def test_peer_ids(self):
        hub = LocalHub()
        for i in (1, 2, 3):
            hub.endpoint(i)
        assert hub.endpoint(2).peer_ids() == [1, 3]


@pytest.mark.integration
class TestTcpTransport:
    def test_bidirectional_exchange(self):
        async def scenario():
            peers = {1: ("127.0.0.1", 19401), 2: ("127.0.0.1", 19402)}
            node1 = TcpP2P(1, "127.0.0.1", 19401, {2: peers[2]})
            node2 = TcpP2P(2, "127.0.0.1", 19402, {1: peers[1]})
            received1, received2 = [], []
            node1.set_handler(collect_handler(received1))
            node2.set_handler(collect_handler(received2))
            await node1.start()
            await node2.start()
            try:
                await node1.send(2, b"hello from 1")
                await node2.send(1, b"hello from 2")
                await asyncio.sleep(0.2)
                assert received2 == [(1, b"hello from 1")]
                assert received1 == [(2, b"hello from 2")]
            finally:
                await node1.stop()
                await node2.stop()

        asyncio.run(scenario())

    def test_broadcast_and_large_frame(self):
        async def scenario():
            ports = {i: 19410 + i for i in (1, 2, 3)}
            peers = {i: ("127.0.0.1", p) for i, p in ports.items()}
            nodes = {
                i: TcpP2P(i, "127.0.0.1", ports[i], {j: peers[j] for j in ports if j != i})
                for i in ports
            }
            received = {i: [] for i in ports}
            for i, node in nodes.items():
                node.set_handler(collect_handler(received[i]))
                await node.start()
            try:
                big = bytes(range(256)) * 1024  # 256 KiB
                await nodes[1].broadcast(big)
                await asyncio.sleep(0.3)
                assert received[2] == [(1, big)]
                assert received[3] == [(1, big)]
            finally:
                for node in nodes.values():
                    await node.stop()

        asyncio.run(scenario())

    def test_unknown_peer_rejected(self):
        async def scenario():
            node = TcpP2P(1, "127.0.0.1", 19420, {})
            with pytest.raises(NetworkError):
                await node.send(9, b"x")

        asyncio.run(scenario())


class TestGossip:
    def _hub_overlays(self, n, fanout=2):
        hub = LocalHub()
        overlays = {
            i: GossipOverlay(hub.endpoint(i), fanout=fanout) for i in range(1, n + 1)
        }
        return hub, overlays

    def test_neighbors_subset_and_symmetric_ring(self):
        ids = list(range(1, 11))
        for node in ids:
            neighbors = _overlay_neighbors(ids, node, 4, seed=None)
            assert node not in neighbors
            assert len(neighbors) <= 4 or len(neighbors) <= len(ids) - 1

    def test_small_network_is_full_mesh(self):
        ids = [1, 2, 3]
        assert _overlay_neighbors(ids, 1, 4, None) == {2, 3}

    def test_broadcast_reaches_everyone(self):
        async def scenario():
            hub, overlays = self._hub_overlays(8, fanout=3)
            received = {i: [] for i in overlays}
            for i, overlay in overlays.items():
                overlay.set_handler(collect_handler(received[i]))
            await overlays[1].broadcast(b"gossip")
            await hub.drain()
            for i in range(2, 9):
                assert received[i] == [(1, b"gossip")], f"node {i} missed it"
            assert received[1] == []  # origin does not self-deliver

        asyncio.run(scenario())

    def test_no_duplicate_delivery(self):
        async def scenario():
            hub, overlays = self._hub_overlays(6, fanout=3)
            received = {i: [] for i in overlays}
            for i, overlay in overlays.items():
                overlay.set_handler(collect_handler(received[i]))
            for round_number in range(3):
                await overlays[2].broadcast(b"msg-%d" % round_number)
            await hub.drain()
            for i in (1, 3, 4, 5, 6):
                assert len(received[i]) == 3  # exactly once each

        asyncio.run(scenario())

    def test_directed_message_delivered_only_to_target(self):
        async def scenario():
            hub, overlays = self._hub_overlays(8, fanout=3)
            received = {i: [] for i in overlays}
            for i, overlay in overlays.items():
                overlay.set_handler(collect_handler(received[i]))
            await overlays[1].send(5, b"private")
            await hub.drain()
            assert received[5] == [(1, b"private")]
            for i in (2, 3, 4, 6, 7, 8):
                assert received[i] == []

        asyncio.run(scenario())


class TestSequencerTob:
    def _network(self, n, block_interval=0.0):
        hub = LocalHub()
        tobs = {
            i: SequencerTob(hub.endpoint(i), sequencer_id=1, block_interval=block_interval)
            for i in range(1, n + 1)
        }
        return hub, tobs

    def test_total_order_identical_everywhere(self):
        async def scenario():
            hub, tobs = self._network(4)
            delivered = {i: [] for i in tobs}
            for i, tob in tobs.items():
                tob.set_handler(collect_handler(delivered[i]))
            # Concurrent submissions from every node.
            await asyncio.gather(
                tobs[2].submit(b"from-2"),
                tobs[3].submit(b"from-3"),
                tobs[1].submit(b"from-1"),
                tobs[4].submit(b"from-4"),
            )
            await hub.drain()
            sequences = {i: [d for d in delivered[i]] for i in tobs}
            reference = sequences[1]
            assert len(reference) == 4
            for i in (2, 3, 4):
                assert sequences[i] == reference

        asyncio.run(scenario())

    def test_origin_attribution(self):
        async def scenario():
            hub, tobs = self._network(3)
            delivered = []
            tobs[2].set_handler(collect_handler(delivered))
            tobs[1].set_handler(collect_handler([]))
            tobs[3].set_handler(collect_handler([]))
            await tobs[3].submit(b"payload")
            await hub.drain()
            assert delivered == [(3, b"payload")]

        asyncio.run(scenario())

    def test_block_batching_preserves_order(self):
        async def scenario():
            hub, tobs = self._network(3, block_interval=0.02)
            delivered = {i: [] for i in tobs}
            for i, tob in tobs.items():
                tob.set_handler(collect_handler(delivered[i]))
            for k in range(5):
                await tobs[2].submit(b"m%d" % k)
            await asyncio.sleep(0.1)
            await hub.drain()
            assert delivered[1] == delivered[2] == delivered[3]
            assert len(delivered[1]) == 5

        asyncio.run(scenario())


class TestNetworkManager:
    def test_dispatch_p2p_broadcast(self, keys_cks05):
        async def scenario():
            hub = LocalHub()
            managers = {
                i: NetworkManager(hub.endpoint(i), enable_tob=False)
                for i in (1, 2, 3)
            }
            seen = {i: [] for i in managers}
            for i, manager in managers.items():
                async def handler(message, i=i):
                    seen[i].append(message)

                manager.set_protocol_handler(handler)
            message = ProtocolMessage("inst", 1, 0, Channel.P2P, b"payload")
            await managers[1].dispatch(message)
            await hub.drain()
            assert len(seen[2]) == 1 and len(seen[3]) == 1
            assert seen[2][0].payload == b"payload"

        asyncio.run(scenario())

    def test_dispatch_directed(self):
        async def scenario():
            hub = LocalHub()
            managers = {
                i: NetworkManager(hub.endpoint(i), enable_tob=False)
                for i in (1, 2, 3)
            }
            seen = {i: [] for i in managers}
            for i, manager in managers.items():
                async def handler(message, i=i):
                    seen[i].append(message)

                manager.set_protocol_handler(handler)
            message = ProtocolMessage("inst", 1, 0, Channel.P2P, b"x", recipient=3)
            await managers[1].dispatch(message)
            await hub.drain()
            assert seen[2] == [] and len(seen[3]) == 1

        asyncio.run(scenario())

    def test_dispatch_tob_delivers_in_same_order(self):
        async def scenario():
            hub = LocalHub()
            managers = {
                i: NetworkManager(hub.endpoint(i), enable_tob=True, sequencer_id=1)
                for i in (1, 2, 3)
            }
            seen = {i: [] for i in managers}
            for i, manager in managers.items():
                async def handler(message, i=i):
                    seen[i].append(message.payload)

                manager.set_protocol_handler(handler)
            await managers[2].dispatch(
                ProtocolMessage("inst", 2, 0, Channel.TOB, b"a")
            )
            await managers[3].dispatch(
                ProtocolMessage("inst", 3, 0, Channel.TOB, b"b")
            )
            await hub.drain()
            assert seen[1] == seen[2] == seen[3]
            assert sorted(seen[1]) == [b"a", b"b"]

        asyncio.run(scenario())

    def test_tob_unconfigured_raises(self):
        async def scenario():
            hub = LocalHub()
            manager = NetworkManager(hub.endpoint(1), enable_tob=False)
            with pytest.raises(ConfigurationError):
                await manager.dispatch(
                    ProtocolMessage("inst", 1, 0, Channel.TOB, b"x")
                )

        asyncio.run(scenario())

    def test_gossip_transport_composition(self):
        async def scenario():
            hub = LocalHub()
            managers = {
                i: NetworkManager(
                    hub.endpoint(i), enable_tob=False, gossip_fanout=2
                )
                for i in range(1, 7)
            }
            seen = {i: [] for i in managers}
            for i, manager in managers.items():
                async def handler(message, i=i):
                    seen[i].append(message)

                manager.set_protocol_handler(handler)
            await managers[1].dispatch(
                ProtocolMessage("inst", 1, 0, Channel.P2P, b"via gossip")
            )
            await hub.drain()
            for i in range(2, 7):
                assert len(seen[i]) == 1

        asyncio.run(scenario())
