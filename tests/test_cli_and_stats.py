"""The simulator CLI and the node monitoring endpoint."""

import asyncio
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.network.local import LocalHub
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs

# The subprocess needs to import ``repro`` like this process does; derive the
# source root from the imported package instead of hardcoding a layout.
_SRC_ROOT = str(pathlib.Path(repro.__file__).resolve().parent.parent)


@pytest.mark.integration
class TestSimCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.sim.cli", *args],
            capture_output=True,
            text=True,
            timeout=300,
            env={
                "REPRO_SIM_MAX_REQUESTS": "20",
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": os.pathsep.join(
                    [_SRC_ROOT] + [p for p in [os.environ.get("PYTHONPATH")] if p]
                ),
            },
        )

    def test_capacity_csv(self):
        result = self._run(
            "capacity", "--deployment", "DO-7-L", "--scheme", "sg02",
            "--duration", "2",
        )
        assert result.returncode == 0, result.stderr
        lines = result.stdout.strip().splitlines()
        assert lines[0].startswith("scheme,deployment,rate")
        assert len(lines) == 1 + 11  # header + rates 1..1024
        assert lines[1].startswith("sg02,DO-7-L,1")

    def test_knee_csv(self):
        result = self._run(
            "knee", "--deployment", "DO-7-L", "--scheme", "bls04",
            "--duration", "2",
        )
        assert result.returncode == 0, result.stderr
        assert len(result.stdout.strip().splitlines()) == 2

    def test_steady_requires_rate(self):
        result = self._run("steady", "--deployment", "DO-7-L", "--scheme", "sg02")
        assert result.returncode != 0

    def test_payload_csv(self):
        result = self._run(
            "payload", "--deployment", "DO-7-L", "--scheme", "cks05",
            "--rate", "4", "--duration", "2",
        )
        assert result.returncode == 0, result.stderr
        assert len(result.stdout.strip().splitlines()) == 1 + 5  # 5 sizes


class TestNodeStats:
    def test_stats_reflect_work(self, keys_cks05):
        async def scenario():
            configs = make_local_configs(4, 1, transport="local", rpc_base_port=0)
            hub = LocalHub()
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                node.install_key(
                    "coin",
                    keys_cks05.scheme,
                    keys_cks05.public_key,
                    keys_cks05.share_for(config.node_id),
                )
                await node.start()
                nodes.append(node)
            client = ThetacryptClient(
                {n.config.node_id: n.rpc_address for n in nodes}
            )
            try:
                before = await client.call(1, "node_stats", {})
                assert before["instances"] == {}
                assert before["keys"] == 1

                for round_number in range(3):
                    await client.flip_coin("coin", b"r%d" % round_number)

                after = await client.call(1, "node_stats", {})
                assert after["instances"].get("finished", 0) == 3
                assert after["latency"]["count"] == 3
                assert after["latency"]["p50"] > 0
                assert after["node_id"] == 1
            finally:
                await client.close()
                for node in nodes:
                    await node.stop()

        asyncio.run(scenario())

    def test_malformed_rpc_line_gets_error_response(self):
        # A 2-node network; send raw garbage on the RPC socket.
        async def scenario2():
            import json

            configs = make_local_configs(2, 1, transport="local", rpc_base_port=0)
            hub = LocalHub()
            nodes = []
            for config in configs:
                node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
                await node.start()
                nodes.append(node)
            try:
                host, port = nodes[0].rpc_address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert "error" in response
                # The connection survives for the next (valid) request.
                writer.write(
                    json.dumps({"id": 1, "method": "ping", "params": {}}).encode()
                    + b"\n"
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["result"]["node_id"] == 1
                writer.close()
            finally:
                for node in nodes:
                    await node.stop()

        asyncio.run(scenario2())
