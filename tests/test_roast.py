"""ROAST: robust threshold Schnorr despite deviating signers."""

import pytest

from repro.errors import ProtocolAbortedError
from repro.schemes import generate_keys, kg20
from repro.schemes.roast import RoastCoordinator, RoastSigner, roast_sign


@pytest.fixture(scope="module")
def material():
    return generate_keys("kg20", 2, 7)  # 3-of-7, the paper's small shape


def _honest_signers(material, ids):
    return {i: RoastSigner(material.share_for(i)) for i in ids}


class _GarbageSigner:
    """Byzantine: valid commitments, garbage signature shares."""

    def __init__(self, key_share):
        self._inner = RoastSigner(key_share)
        self.id = key_share.id

    def fresh_commitment(self):
        return self._inner.fresh_commitment()

    def sign(self, message, commitments):
        share, next_commitment = self._inner.sign(message, commitments)
        return kg20.Kg20SignatureShare(share.id, share.z + 1), next_commitment


class _SilentSigner:
    """Byzantine: registers, then never responds."""

    def __init__(self, key_share):
        self._inner = RoastSigner(key_share)
        self.id = key_share.id

    def fresh_commitment(self):
        return self._inner.fresh_commitment()

    def sign(self, message, commitments):
        return None, None  # the harness treats this as unresponsive


class TestHappyPath:
    def test_all_honest(self, material):
        signers = _honest_signers(material, range(1, 8))
        signature, coordinator = roast_sign(
            material.public_key, signers, b"roast msg"
        )
        kg20.Kg20SignatureScheme().verify(material.public_key, b"roast msg", signature)
        assert coordinator.excluded == set()

    def test_sessions_use_quorum_not_all(self, material):
        signers = _honest_signers(material, range(1, 8))
        _, coordinator = roast_sign(material.public_key, signers, b"quorum")
        # Unlike the plain FROST protocol (which waits for all n, §4.5),
        # ROAST sessions contain exactly t+1 signers.
        assert coordinator.quorum == 3

    def test_minimum_signers(self, material):
        signers = _honest_signers(material, [2, 5, 7])
        signature, _ = roast_sign(material.public_key, signers, b"minimal")
        kg20.Kg20SignatureScheme().verify(material.public_key, b"minimal", signature)


class TestRobustness:
    def test_garbage_shares_are_survived(self, material):
        """The headline property FROST lacks: bad shares cannot abort us."""
        honest = _honest_signers(material, [1, 2, 3, 4])
        byzantine = {
            i: _GarbageSigner(material.share_for(i)) for i in (5, 6, 7)
        }
        signature, coordinator = roast_sign(
            material.public_key, honest, b"attacked", byzantine=byzantine
        )
        kg20.Kg20SignatureScheme().verify(material.public_key, b"attacked", signature)
        # Exposed cheaters are excluded (those unlucky enough to be drafted).
        assert coordinator.excluded <= {5, 6, 7}

    def test_silent_signers_are_survived(self, material):
        honest = _honest_signers(material, [1, 2, 3])
        byzantine = {i: _SilentSigner(material.share_for(i)) for i in (4, 5, 6, 7)}
        signature, coordinator = roast_sign(
            material.public_key, honest, b"silence", byzantine=byzantine
        )
        kg20.Kg20SignatureScheme().verify(material.public_key, b"silence", signature)

    def test_mixed_faults(self, material):
        honest = _honest_signers(material, [1, 4, 6])
        byzantine = {
            2: _GarbageSigner(material.share_for(2)),
            3: _SilentSigner(material.share_for(3)),
            5: _GarbageSigner(material.share_for(5)),
            7: _SilentSigner(material.share_for(7)),
        }
        signature, coordinator = roast_sign(
            material.public_key, honest, b"mixed", byzantine=byzantine
        )
        kg20.Kg20SignatureScheme().verify(material.public_key, b"mixed", signature)

    def test_session_bound(self, material):
        """ROAST's bound: at most n − t sessions before success."""
        honest = _honest_signers(material, [1, 2, 3, 4])
        byzantine = {i: _GarbageSigner(material.share_for(i)) for i in (5, 6, 7)}
        _, coordinator = roast_sign(
            material.public_key, honest, b"bound", byzantine=byzantine
        )
        assert coordinator.sessions_opened <= 7 - 2  # n − t

    def test_too_few_honest_aborts(self, material):
        honest = _honest_signers(material, [1, 2])  # below the 3-signer quorum
        byzantine = {
            i: _GarbageSigner(material.share_for(i)) for i in (3, 4, 5, 6, 7)
        }
        with pytest.raises(ProtocolAbortedError):
            roast_sign(material.public_key, honest, b"hopeless", byzantine=byzantine)

    def test_plain_frost_aborts_where_roast_survives(self, material):
        """Contrast: the same attack kills a plain FROST run."""
        scheme = kg20.Kg20SignatureScheme()
        ids = [1, 2, 5]
        nonces = {i: scheme.commit(material.share_for(i)) for i in ids}
        commitments = [nonces[i][1] for i in ids]
        shares = []
        for i in ids:
            share = scheme.sign_round(
                material.share_for(i), b"attack", nonces[i][0], commitments
            )
            if i == 5:  # party 5 deviates
                share = kg20.Kg20SignatureShare(share.id, share.z + 1)
            shares.append(share)
        from repro.errors import InvalidSignatureError, InvalidShareError

        with pytest.raises((InvalidSignatureError, InvalidShareError)):
            scheme.combine(material.public_key, b"attack", shares, commitments)


class TestCoordinatorEdgeCases:
    def test_commitment_id_spoofing_excludes(self, material):
        coordinator = RoastCoordinator(material.public_key, b"m")
        honest = RoastSigner(material.share_for(1))
        spoofed = honest.fresh_commitment()
        coordinator.register(2, spoofed)  # claims to be 2, commitment says 1
        assert 2 in coordinator.excluded

    def test_late_input_after_signature_ignored(self, material):
        signers = _honest_signers(material, range(1, 8))
        signature, coordinator = roast_sign(material.public_key, signers, b"done")
        extra = RoastSigner(material.share_for(1))
        assert coordinator.register(1, extra.fresh_commitment()) == []
        assert coordinator.signature is signature

    def test_unknown_session_response_ignored(self, material):
        coordinator = RoastCoordinator(material.public_key, b"m")
        signer = RoastSigner(material.share_for(1))
        share = kg20.Kg20SignatureShare(1, 42)
        assert coordinator.receive_share(99, 1, share, signer.fresh_commitment()) == []

    def test_nonce_reuse_refused_by_signer(self, material):
        signer = RoastSigner(material.share_for(1))
        commitment = signer.fresh_commitment()
        peer = RoastSigner(material.share_for(2))
        commitments = [commitment, peer.fresh_commitment()]
        signer.sign(b"first", commitments)
        with pytest.raises(ProtocolAbortedError):
            signer.sign(b"second", commitments)  # same nonce again
