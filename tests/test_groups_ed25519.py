"""Ed25519 group: RFC 8032 conformance, group laws, encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.groups.ed25519 import COFACTOR, L, Ed25519Group, ed25519

scalars = st.integers(min_value=1, max_value=L - 1)


@pytest.fixture(scope="module")
def group() -> Ed25519Group:
    return ed25519()


class TestBasics:
    def test_base_point_matches_rfc8032(self, group):
        assert group.generator().to_bytes().hex() == "58" + "66" * 31

    def test_singleton(self):
        assert ed25519() is ed25519()

    def test_identity(self, group):
        g = group.generator()
        assert (g * group.identity()) == g
        assert group.identity().is_identity()

    def test_generator_has_order_l(self, group):
        assert group.generator()._mul_raw(L).is_identity()
        assert not group.generator()._mul_raw(L - 1).is_identity()

    def test_inverse(self, group):
        g = group.generator()
        assert (g * g.inverse()).is_identity()
        assert g / g == group.identity()

    def test_double_matches_add(self, group):
        g = group.generator()
        assert g._double() == g * g

    def test_exponent_zero(self, group):
        assert (group.generator() ** 0).is_identity()

    def test_negative_exponent(self, group):
        g = group.generator()
        assert g**-1 == g.inverse()
        assert g ** (L - 1) == g.inverse()


class TestAlgebra:
    @settings(max_examples=10)
    @given(scalars, scalars)
    def test_exponent_addition(self, a, b):
        group = ed25519()
        g = group.generator()
        assert (g**a) * (g**b) == g ** ((a + b) % L)

    @settings(max_examples=5)
    @given(scalars, scalars)
    def test_exponent_multiplication(self, a, b):
        group = ed25519()
        g = group.generator()
        assert (g**a) ** b == g ** ((a * b) % L)

    def test_commutativity(self, group):
        g = group.generator()
        p, q = g**123, g**456
        assert p * q == q * p

    def test_associativity(self, group):
        g = group.generator()
        p, q, r = g**3, g**5, g**7
        assert (p * q) * r == p * (q * r)


class TestEncoding:
    def test_round_trip(self, group):
        p = group.generator() ** 987654321
        assert group.element_from_bytes(p.to_bytes()) == p

    def test_identity_round_trip(self, group):
        e = group.identity()
        assert group.element_from_bytes(e.to_bytes()).is_identity()

    def test_wrong_length_rejected(self, group):
        with pytest.raises(SerializationError):
            group.element_from_bytes(b"\x01" * 31)

    def test_not_on_curve_rejected(self, group):
        # y = 2 with sign 0 is not on the curve.
        bad = (2).to_bytes(32, "little")
        with pytest.raises(SerializationError):
            group.element_from_bytes(bad)

    def test_out_of_range_y_rejected(self, group):
        bad = ((1 << 255) - 19).to_bytes(32, "little")  # y = p
        with pytest.raises(SerializationError):
            group.element_from_bytes(bad)

    def test_low_order_point_rejected(self, group):
        # The 8-torsion point (0, -1) encodes to p-1; it is on the curve but
        # outside the prime-order subgroup.
        bad = (2**255 - 19 - 1).to_bytes(32, "little")
        with pytest.raises(SerializationError):
            group.element_from_bytes(bad)

    def test_encoding_is_canonical(self, group):
        p = group.generator() ** 31337
        assert p.to_bytes() == group.element_from_bytes(p.to_bytes()).to_bytes()


class TestHashToElement:
    def test_deterministic(self, group):
        assert group.hash_to_element(b"x") == group.hash_to_element(b"x")

    def test_distinct_inputs(self, group):
        assert group.hash_to_element(b"x") != group.hash_to_element(b"y")

    def test_in_prime_order_subgroup(self, group):
        h = group.hash_to_element(b"subgroup-check")
        assert h._mul_raw(L).is_identity()
        assert not h.is_identity()

    def test_cofactor_cleared(self, group):
        # After clearing the cofactor no 8-torsion component survives.
        h = group.hash_to_element(b"torsion")
        assert not h._mul_raw(COFACTOR * 3).is_identity()


class TestScalars:
    def test_random_scalar_range(self, group):
        for _ in range(20):
            s = group.random_scalar()
            assert 0 < s < L

    def test_scalar_from_bytes_reduces(self, group):
        assert group.scalar_from_bytes(b"\xff" * 64) < L

    def test_element_size(self, group):
        assert group.element_size() == 32

    def test_multi_exp_matches_naive(self, group):
        g = group.generator()
        bases = [g**2, g**3, g**5]
        exps = [10, 20, 30]
        assert group.multi_exp(bases, exps) == g ** (20 + 60 + 150)
