"""BN254 G1/G2: group laws, encodings, subgroup checks, hash-to-curve."""

import pytest

from repro.errors import SerializationError
from repro.groups.bn254 import bn254_g1, bn254_g2
from repro.groups.bn254.fp import Fp2, P, R
from repro.groups.bn254.g2 import B2, G2_COFACTOR, BN254G2Element


@pytest.fixture(scope="module")
def g1():
    return bn254_g1()


@pytest.fixture(scope="module")
def g2():
    return bn254_g2()


class TestG1:
    def test_generator_on_curve(self, g1):
        x, y = g1.generator().affine()
        assert (y * y - x * x * x - 3) % P == 0

    def test_generator_is_one_two(self, g1):
        assert g1.generator().affine() == (1, 2)

    def test_order(self, g1):
        # Cofactor is 1, so the curve order equals R; use the raw ladder via
        # the unreduced doubling chain: (g^k)*g^(R-k) must be the identity.
        g = g1.generator()
        assert (g**5 * g ** (R - 5)).is_infinity()

    def test_identity_laws(self, g1):
        g = g1.generator()
        assert g * g1.identity() == g
        assert (g**0).is_infinity()

    def test_inverse(self, g1):
        g = g1.generator()
        assert (g * g.inverse()).is_infinity()

    def test_exponent_addition(self, g1):
        g = g1.generator()
        assert (g**11) * (g**31) == g**42

    def test_doubling_special_cases(self, g1):
        assert g1.identity()._double().is_infinity()
        g = g1.generator()
        assert (g * g) == g._double()

    def test_add_inverse_gives_identity(self, g1):
        g = g1.generator() ** 77
        assert (g * g.inverse()).is_infinity()

    def test_encoding_round_trip(self, g1):
        p = g1.generator() ** 123456
        assert g1.element_from_bytes(p.to_bytes()) == p

    def test_identity_encoding(self, g1):
        assert g1.element_from_bytes(g1.identity().to_bytes()).is_infinity()
        assert g1.identity().to_bytes() == bytes(64)

    def test_wrong_length_rejected(self, g1):
        with pytest.raises(SerializationError):
            g1.element_from_bytes(b"\x00" * 63)

    def test_off_curve_rejected(self, g1):
        bad = (1).to_bytes(32, "big") + (3).to_bytes(32, "big")
        with pytest.raises(SerializationError):
            g1.element_from_bytes(bad)

    def test_out_of_range_coordinate_rejected(self, g1):
        bad = P.to_bytes(32, "big") + (2).to_bytes(32, "big")
        with pytest.raises(SerializationError):
            g1.element_from_bytes(bad)

    def test_hash_to_element(self, g1):
        h = g1.hash_to_element(b"message")
        assert h == g1.hash_to_element(b"message")
        assert h != g1.hash_to_element(b"other")
        x, y = h.affine()
        assert (y * y - x * x * x - 3) % P == 0


class TestG2:
    def test_generator_on_twist(self, g2):
        gen = g2.generator()
        assert gen.y.square() == gen.x.square() * gen.x + B2

    def test_generator_in_subgroup(self, g2):
        assert g2.generator()._mul_raw(R).infinity

    def test_cofactor_value(self):
        assert G2_COFACTOR == 2 * P - R

    def test_identity_laws(self, g2):
        g = g2.generator()
        assert g * g2.identity() == g
        assert (g**0).infinity

    def test_exponent_addition(self, g2):
        g = g2.generator()
        assert (g**13) * (g**29) == g**42

    def test_inverse(self, g2):
        g = g2.generator() ** 9
        assert (g * g.inverse()).infinity

    def test_encoding_round_trip(self, g2):
        p = g2.generator() ** 55555
        assert g2.element_from_bytes(p.to_bytes()) == p
        assert len(p.to_bytes()) == 128

    def test_identity_encoding(self, g2):
        assert g2.element_from_bytes(bytes(128)).infinity

    def test_off_twist_rejected(self, g2):
        bad = bytes(127) + b"\x01"
        with pytest.raises(SerializationError):
            g2.element_from_bytes(bad)

    def test_non_subgroup_point_rejected(self, g2):
        # Find a twist point by solving the curve equation directly; with
        # overwhelming probability it lies outside the order-R subgroup.
        x = Fp2(1, 0)
        while True:
            y2 = x.square() * x + B2
            if y2.is_square():
                candidate = BN254G2Element(g2, x, y2.sqrt())
                if not candidate._mul_raw(R).infinity:
                    break
            x = x + Fp2(1, 0)
        with pytest.raises(SerializationError):
            g2.element_from_bytes(candidate.to_bytes())

    def test_hash_to_element_in_subgroup(self, g2):
        h = g2.hash_to_element(b"hash me")
        assert h._mul_raw(R).infinity
        assert not h.infinity
        assert h == g2.hash_to_element(b"hash me")

    def test_doubling_matches_addition(self, g2):
        g = g2.generator()
        assert g._double() == g * g
