"""Figure 4 — Server-side throughput–latency graphs (the capacity test).

For every deployment of Table 2 and every scheme, sweep the request rate in
factors of two and print the (throughput, L95) series — the data behind the
six panels of Fig. 4 — plus the knee points.  Checks the paper's headline
shapes:

* knee ordering at small scale: ECDH-based ≥ pairing-based > RSA-based;
* geographic distribution moves latency but not the knee;
* knees drop steeply from 7 to 31 nodes (the paper reports ≈2³);
* at 127 nodes the schemes converge (network-bound regime).

Full fidelity takes tens of minutes (it simulates ~10⁸ events); set
REPRO_FAST=1 for a reduced sweep.
"""

import asyncio
import os

import pytest

from repro.sim.deployments import DEPLOYMENTS
from repro.sim.experiments import capacity_test
from repro.sim.metrics import find_knee
from repro.sim.plotting import scatter_plot
from repro.workers.harness import run_ablation

from _common import fast_mode, host_cores, ms, print_table, requires_cores

SCHEMES = ["sg02", "cks05", "kg20", "bls04", "bz03", "sh00"]

#: Paper knee points (req/s) — DO-7 from §4.5 text, DO-31-G from Table 4,
#: DO-127 from §4.5 text.
PAPER_KNEES = {
    "DO-7-L": {"sg02": 64, "cks05": 64, "kg20": 64, "bls04": 32, "bz03": 32, "sh00": 8},
    "DO-7-G": {"sg02": 64, "cks05": 64, "kg20": 64, "bls04": 32, "bz03": 32, "sh00": 8},
    "DO-31-G": {"sg02": 8, "cks05": 8, "kg20": 4, "bls04": 4, "bz03": 4, "sh00": 2},
    # §4.5 text for the medium deployment (it quotes 16 for SG02; Table 4's
    # knee column says 8 — the paper is internally inconsistent by 2×).
    "DO-31-L": {"sg02": 16, "cks05": 16, "kg20": 8, "bls04": 4, "bz03": 4, "sh00": 4},
    "DO-127-L": {"sg02": 2, "cks05": 2, "kg20": 1, "bls04": 2, "bz03": 2, "sh00": 1},
    "DO-127-G": {"sg02": 2, "cks05": 2, "kg20": 1, "bls04": 1, "bz03": 2, "sh00": 1},
}

if fast_mode():
    PANELS = ["DO-7-L", "DO-7-G"]
else:
    PANELS = ["DO-7-L", "DO-7-G", "DO-31-L", "DO-31-G", "DO-127-L", "DO-127-G"]


#: Sweeps are deterministic, so panels and the cross-panel test share them.
_SWEEP_CACHE: dict[tuple[str, str], list] = {}


def _sweep(deployment, scheme):
    key = (deployment.acronym, scheme)
    if key not in _SWEEP_CACHE:
        rates = deployment.rates()
        if fast_mode():
            rates = rates[: min(len(rates), 8)]
        _SWEEP_CACHE[key] = capacity_test(
            deployment, scheme, rates=rates, duration=10.0
        )
    return _SWEEP_CACHE[key]


@pytest.mark.parametrize("acronym", PANELS)
def test_fig4_panel(benchmark, acronym):
    deployment = DEPLOYMENTS[acronym]
    curves = {}

    def run_panel():
        for scheme in SCHEMES:
            curves[scheme] = _sweep(deployment, scheme)

    benchmark.pedantic(run_panel, rounds=1, iterations=1)

    rows = []
    for scheme in SCHEMES:
        for point in curves[scheme]:
            rows.append(
                [
                    scheme,
                    f"{point.rate:g}",
                    f"{point.throughput:.2f}",
                    ms(point.l95),
                    f"{point.completed}/{point.offered}",
                    f"{point.max_utilization:.2f}",
                ]
            )
    print_table(
        f"Fig. 4 panel {acronym}: throughput vs L95",
        ["scheme", "rate (req/s)", "tput (req/s)", "L95 (ms)", "done", "max util"],
        rows,
    )

    print(
        scatter_plot(
            {
                scheme: [(p.throughput, p.l95) for p in curves[scheme]]
                for scheme in SCHEMES
            }
        )
    )

    knees = {scheme: find_knee(curves[scheme]) for scheme in SCHEMES}
    knee_rows = [
        [
            scheme,
            f"{knees[scheme].rate:g}",
            f"{PAPER_KNEES[acronym][scheme]}",
            ms(knees[scheme].l95),
        ]
        for scheme in SCHEMES
    ]
    print_table(
        f"Knee points {acronym} (ours vs paper)",
        ["scheme", "knee (ours)", "knee (paper)", "L95@knee (ms)"],
        knee_rows,
    )

    # --- shape assertions -------------------------------------------------
    knee_rate = {s: knees[s].rate for s in SCHEMES}
    # ECDH ≥ pairing > RSA at every size (§4.5 "the relative order of the
    # non-interactive schemes remains consistent").
    assert knee_rate["sg02"] >= knee_rate["bls04"] >= knee_rate["sh00"]
    assert knee_rate["cks05"] >= knee_rate["bz03"] >= knee_rate["sh00"]
    # Within a factor 2 of the paper's reported knee.
    for scheme in SCHEMES:
        paper = PAPER_KNEES[acronym][scheme]
        assert paper / 2 <= knee_rate[scheme] <= paper * 2, (
            f"{acronym}/{scheme}: knee {knee_rate[scheme]} vs paper {paper}"
        )
    # The system degrades past the knee: at the sweep's top rate it either
    # shows a latency blow-up or fails to keep up with the offered load.
    # Only checked when the sweep extends well past the knee and the knee
    # itself was a sustainable operating point (for schemes saturated at
    # every rate — SH00 at 127 nodes — the knee degenerates to the lowest
    # rate and its L95 is already the experiment-time bound).
    for scheme in SCHEMES:
        knee = knees[scheme]
        last = curves[scheme][-1]
        sustained = knee.offered and knee.completed >= 0.95 * knee.offered
        if sustained and last.rate >= 4 * knee.rate:
            blew_up = last.l95 > 3 * knee.l95
            fell_behind = last.offered and last.completed < 0.95 * last.offered
            assert blew_up or fell_behind, (
                f"{scheme}: no degradation visible at rate {last.rate}"
            )


def test_fig4_offload_ablation(benchmark):
    """Crypto worker-pool ablation on the *real* asyncio service.

    Unlike the simulator panels above, this boots an actual in-process
    BLS04 cluster twice over identical key material — once fully inline
    (``crypto_workers=0``) and once with a 2-worker pool under the
    adaptive offload policy — and compares throughput and event-loop
    lag.  What the pooled run must show depends on the host:

    * ``cpu_count >= 2``: the policy routes through the pool (tasks ran
      in workers, nothing degraded inline, no crashes);
    * ``cpu_count == 1``: the policy rules ``few_cores`` and keeps every
      op inline — the pool never runs a task, which is the fix for the
      measured sub-1× "speedup" static offload produced here;
    * ``cpu_count >= 4``: the throughput (≥1.5×) and loop-lag claims
      additionally apply — they need spare cores for the workers.
    """
    parties, threshold, requests = (4, 1, 3) if fast_mode() else (16, 3, 6)
    results = {}

    def run():
        results["pair"] = asyncio.run(
            run_ablation(
                "bls04", parties, threshold, requests=requests, workers=2
            )
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    off, on = results["pair"]

    rows = [
        [
            f"{result.workers}",
            f"{result.ops_per_sec:.2f}",
            ms(result.latency_p50),
            ms(result.latency_p99),
            ms(result.loop_lag_p99),
            f"{result.pool.get('tasks_ok', 0)}",
            f"{result.pool.get('fallbacks', 0)}",
        ]
        for result in (off, on)
    ]
    print_table(
        f"Worker-pool ablation: bls04 n={parties} t={threshold} "
        f"({requests} concurrent requests, {os.cpu_count()} cores)",
        ["workers", "ops/s", "p50 (ms)", "p99 (ms)", "lag p99 (ms)",
         "pool ok", "fallbacks"],
        rows,
    )

    cores = host_cores()
    policy = on.pool.get("policy", {})
    if cores >= 2:
        # Multi-core correctness: the pooled run really offloaded (tasks
        # ran in workers, none degraded to inline, no worker crashes).
        assert on.pool.get("tasks_ok", 0) > 0, "pool executed no tasks"
        assert on.pool.get("fallbacks", 0) == 0, "pooled run degraded inline"
        assert on.pool.get("crashes", 0) == 0
    else:
        # 1-core correctness: the adaptive policy must refuse to offload
        # (process-hopping with no spare core costs ~35% throughput) and
        # the never-used pool must not have spawned workers.
        assert on.pool.get("tasks_ok", 0) == 0, (
            f"policy offloaded on a 1-core host: {on.pool}"
        )
        assert policy.get("reasons", {}).get("few_cores", 0) > 0, (
            f"policy never ruled few_cores: {policy}"
        )
        assert on.pool.get("fallbacks", 0) == 0
        assert not on.pool.get("worker_pids"), "pool spawned workers unused"

    # The performance claims need real parallelism: with fewer cores than
    # event loop + workers, offload only buys loop responsiveness, not
    # wall-clock throughput.
    if requires_cores(4):
        assert on.ops_per_sec >= 1.5 * off.ops_per_sec, (
            f"workers-on {on.ops_per_sec:.2f} ops/s < 1.5x "
            f"workers-off {off.ops_per_sec:.2f} ops/s"
        )
        assert on.loop_lag_p99 < off.loop_lag_p99, (
            f"loop lag did not drop: {on.loop_lag_p99:.3f}s vs "
            f"{off.loop_lag_p99:.3f}s"
        )


@pytest.mark.skipif(fast_mode(), reason="needs the full panel sweep")
def test_fig4_cross_panel_shapes(benchmark):
    """Knees: unchanged by geography, steep drop 7→31, convergence at 127."""

    results = {}

    def run():
        for acronym in ("DO-7-L", "DO-7-G", "DO-31-G", "DO-127-G"):
            deployment = DEPLOYMENTS[acronym]
            results[acronym] = {
                scheme: find_knee(_sweep(deployment, scheme)).rate
                for scheme in ("sg02", "bls04", "sh00")
            }

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [scheme] + [f"{results[a][scheme]:g}" for a in results]
        for scheme in ("sg02", "bls04", "sh00")
    ]
    print_table("Knee capacity across deployments", ["scheme", *results], rows)

    for scheme in ("sg02", "bls04", "sh00"):
        # Geography does not move the knee (capacity is CPU-bound).  Under
        # the literal max-throughput/latency criterion the ~100 ms WAN floor
        # can absorb one doubling step of queueing delay, so allow exactly
        # one 2× step between local and global.
        local, global_ = results["DO-7-L"][scheme], results["DO-7-G"][scheme]
        assert local <= global_ <= 2 * local
        # Strong drop from 7 to 31 nodes (paper: ≈2³ for SG02).
        assert results["DO-7-L"][scheme] >= 4 * results["DO-31-G"][scheme] or (
            scheme == "sh00" and results["DO-7-L"][scheme] >= 2 * results["DO-31-G"][scheme]
        )
    # Convergence at 127 nodes: all schemes within a factor 4.
    knees_127 = list(results["DO-127-G"].values())
    assert max(knees_127) <= 4 * min(knees_127)
