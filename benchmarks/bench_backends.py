"""Math backends: batched fusion vs the pure reference, and gmpy2 when present.

The backend registry's performance claims (docs/performance.md, "Math
backends") are:

* **batched never regresses** — scalar entry points delegate verbatim to
  the pure backend, and the fused batch paths only engage where they win
  (≥768-bit moduli, enough work to amortize the shared window table), so
  every workload here must hold a ≥1.0× speedup gate (scalars get a 0.9×
  noise floor since both sides run literally the same code);
* **gmpy2 is a free upgrade** — when the library imports, auto-selection
  picks it and big-modulus exponentiation speeds up ≥3×; the gate arms
  only on hosts that have it (this container does not, so the column
  records ``null`` and the gate stays cold rather than silently passing).

Results persist to ``BENCH_backends.json`` at the repo root with a bounded
history, like the precompute and offload panels.  ``REPRO_FAST=1`` shrinks
the workloads.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path

from repro.mathutils.backends import available_backends, gmpy2_available, use_backend
from repro.mathutils.modular import (
    batch_inverse,
    modexp,
    modexp_many,
    multiexp_mod,
)

from _common import fast_mode, host_cores, print_table

OUT = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

HISTORY_LIMIT = 20

#: A 2048-bit odd modulus: the SH00/RSA regime where the fused windowed
#: paths are live (well above FUSE_MIN_BITS).
MODULUS = (2**2048 - 1942289) | 1

#: Fused paths must beat the reference outright; scalar delegation runs
#: the identical code, so it only gets a measurement-noise floor.
FUSED_GATE = 1.0
SCALAR_FLOOR = 0.9
GMPY2_GATE = 3.0


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _workloads(scale: int):
    """(name, kind, thunk) triples; ``kind`` picks the speedup gate."""
    rng = random.Random(0xBACC)
    base = rng.randrange(2, MODULUS)
    exponent = rng.randrange(MODULUS)
    exponents = [rng.randrange(MODULUS) for _ in range(8 * scale)]
    pairs = [
        (rng.randrange(2, MODULUS), rng.randrange(MODULUS))
        for _ in range(3 * scale)
    ]
    values = [rng.randrange(2, MODULUS) for _ in range(32 * scale)]
    return [
        (
            f"modexp_many x{len(exponents)}",
            "fused",
            lambda: modexp_many(base, exponents, MODULUS),
        ),
        (
            f"multiexp x{len(pairs)}",
            "fused",
            lambda: multiexp_mod(pairs, MODULUS),
        ),
        (
            f"batch_inverse x{len(values)}",
            "scalar",
            lambda: batch_inverse(values, MODULUS),
        ),
        (
            "modexp scalar",
            "scalar",
            lambda: modexp(base, exponent, MODULUS),
        ),
    ]


def _scheme_workloads():
    """Full sign+verify+combine flows, one per modulus regime.

    SH00 runs in the 2048-bit RSA regime where the fused multiexp paths
    are live (combine and share verification); BLS04 runs entirely on
    256-bit curve arithmetic, below every fuse threshold, so it pins the
    delegation-parity claim on a real scheme.  Both are gated as
    ``scalar`` — the flows mix fused and scalar work, so the honest gate
    is "never a regression", not a fixed fused win.
    """
    from repro.schemes import bls04, generate_keys, sh00

    km_sh00 = generate_keys("sh00", 1, 4, rsa_bits=2048)
    sh00_scheme = sh00.Sh00SignatureScheme()
    km_bls04 = generate_keys("bls04", 1, 4)
    bls04_scheme = bls04.Bls04SignatureScheme()
    message = b"backend scheme panel"

    def sh00_op():
        shares = [sh00_scheme.partial_sign(km_sh00.share_for(i), message) for i in (1, 2)]
        for share in shares:
            sh00_scheme.verify_signature_share(km_sh00.public_key, message, share)
        signature = sh00_scheme.combine(km_sh00.public_key, message, shares)
        sh00_scheme.verify(km_sh00.public_key, message, signature)

    def bls04_op():
        shares = [bls04_scheme.partial_sign(km_bls04.share_for(i), message) for i in (1, 2)]
        for share in shares:
            bls04_scheme.verify_signature_share(km_bls04.public_key, message, share)
        signature = bls04_scheme.combine(km_bls04.public_key, message, shares)
        bls04_scheme.verify(km_bls04.public_key, message, signature)

    return [
        ("sh00 sign 2048b", "scalar", sh00_op),
        ("bls04 sign bn254", "scalar", bls04_op),
    ]


def _load_history() -> list[dict]:
    if not OUT.exists():
        return []
    try:
        prior = json.loads(OUT.read_text())
    except (OSError, ValueError):
        return []
    history = list(prior.get("history", []))
    if "panels" in prior:
        history.append(
            {
                "timestamp": prior.get("timestamp"),
                "host": prior.get("host"),
                "speedups": {
                    panel["workload"]: panel["speedups"]
                    for panel in prior.get("panels", [])
                },
            }
        )
    return history[-HISTORY_LIMIT:]


def test_backend_speedups(benchmark):
    """Pure-reference vs batched (vs gmpy2 when importable), gated."""
    scale = 1 if fast_mode() else 2
    rounds = 2 if fast_mode() else 3
    backends = [name for name in available_backends() if name != "auto"]
    panels = []

    def run():
        panels.clear()
        for name, kind, thunk in _workloads(scale) + _scheme_workloads():
            timings = {}
            for backend in backends:
                with use_backend(backend):
                    thunk()  # one untimed warm-up (window tables, caches)
                    timings[backend] = _best_of(thunk, rounds)
            reference = timings["python"]
            panels.append(
                {
                    "workload": name,
                    "kind": kind,
                    "timings": timings,
                    "ops_per_sec": {
                        backend: (1.0 / took if took else 0.0)
                        for backend, took in timings.items()
                    },
                    "speedups": {
                        backend: (reference / took if took else 0.0)
                        for backend, took in timings.items()
                        if backend != "python"
                    },
                }
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"Math backends: 2048-bit primitives + scheme flows ({host_cores()} "
        f"cores, gmpy2 {'present' if gmpy2_available() else 'absent'})",
        ["workload", "kind"]
        + [f"{b} (ms)" for b in backends]
        + [f"{b} speedup" for b in backends if b != "python"],
        [
            [
                panel["workload"],
                panel["kind"],
                *(f"{panel['timings'][b] * 1000:.2f}" for b in backends),
                *(
                    f"{panel['speedups'][b]:.2f}x"
                    for b in backends
                    if b != "python"
                ),
            ]
            for panel in panels
        ],
    )

    payload = {
        "benchmark": "math_backends",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cores": host_cores(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "gmpy2": gmpy2_available(),
            "fast_mode": fast_mode(),
        },
        "modulus_bits": MODULUS.bit_length(),
        "gates": {
            "fused": FUSED_GATE,
            "scalar_floor": SCALAR_FLOOR,
            "gmpy2": GMPY2_GATE if gmpy2_available() else None,
        },
        "panels": panels,
        "history": _load_history(),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUT}")

    # -- gates ---------------------------------------------------------------
    for panel in panels:
        batched = panel["speedups"]["batched"]
        gate = FUSED_GATE if panel["kind"] == "fused" else SCALAR_FLOOR
        assert batched >= gate, (
            f"{panel['workload']}: batched speedup {batched:.2f}x "
            f"below the {gate:.2f}x gate"
        )
    if gmpy2_available():
        exp_panels = [p for p in panels if p["kind"] == "fused"]
        best = max(p["speedups"]["gmpy2"] for p in exp_panels)
        assert best >= GMPY2_GATE, (
            f"gmpy2 best fused speedup {best:.2f}x below {GMPY2_GATE}x"
        )
