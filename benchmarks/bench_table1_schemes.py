"""Table 1 — Threshold schemes in Thetacrypt.

Regenerates the scheme inventory (kind, hardness assumption, verification
strategy) from the live registry and checks it against the paper's rows, and
benchmarks one full protocol run per scheme as the functional witness that
each row is actually implemented.
"""

import pytest

from repro.groups import precompute_stats
from repro.mathutils.lagrange import lagrange_cache_stats
from repro.schemes import SCHEME_TABLE, generate_keys, get_scheme
from repro.schemes.base import SchemeKind

from _common import print_table

# The paper's Table 1, row for row.
PAPER_TABLE_1 = {
    "sh00": ("signature", "RSA", "ZKP"),
    "kg20": ("signature", "DL", "ZKP"),
    "bls04": ("signature", "DL", "Pairings"),
    "sg02": ("cipher", "DL", "ZKP"),
    "bz03": ("cipher", "DL", "Pairings"),
    "cks05": ("randomness", "DL", "ZKP"),
}


def test_table1_inventory(benchmark):
    rows = []
    for name, info in sorted(SCHEME_TABLE.items()):
        rows.append([info.kind.value.capitalize(), name.upper(), info.hardness,
                     info.verification, info.reference])
        expected = PAPER_TABLE_1[name]
        assert (info.kind.value, info.hardness, info.verification) == expected
    print_table(
        "Table 1: threshold schemes",
        ["Kind", "Scheme", "Hardness", "Verification", "Reference"],
        rows,
    )
    benchmark.pedantic(lambda: list(SCHEME_TABLE), rounds=1, iterations=1)


@pytest.mark.parametrize("name", sorted(SCHEME_TABLE))
def test_table1_scheme_is_functional(benchmark, name, small_modulus):
    """One complete threshold operation per Table 1 row."""
    if name == "sh00":
        keys = generate_keys(name, 1, 4, rsa_modulus=small_modulus)
    else:
        keys = generate_keys(name, 1, 4)
    scheme = get_scheme(name)

    def run_once():
        if SCHEME_TABLE[name].kind is SchemeKind.CIPHER:
            ct = scheme.encrypt(keys.public_key, b"bench", b"l")
            shares = [
                scheme.create_decryption_share(keys.share_for(i), ct)
                for i in (1, 2)
            ]
            assert scheme.combine(keys.public_key, ct, shares) == b"bench"
        elif name == "kg20":
            nonces = {i: scheme.commit(keys.share_for(i)) for i in (1, 2)}
            commitments = [nonces[i][1] for i in (1, 2)]
            z = [
                scheme.sign_round(keys.share_for(i), b"bench", nonces[i][0], commitments)
                for i in (1, 2)
            ]
            scheme.combine(keys.public_key, b"bench", z, commitments)
        elif SCHEME_TABLE[name].kind is SchemeKind.SIGNATURE:
            shares = [scheme.partial_sign(keys.share_for(i), b"bench") for i in (1, 2)]
            scheme.combine(keys.public_key, b"bench", shares)
        else:
            shares = [
                scheme.create_coin_share(keys.share_for(i), b"bench") for i in (1, 2)
            ]
            assert len(scheme.combine(keys.public_key, b"bench", shares)) == 32

    benchmark.pedantic(run_once, rounds=1, iterations=1)


def test_table1_cache_counters(benchmark):
    """Precompute-layer counters accumulated by the scheme runs above.

    Warm fixed-base tables (generators, verification keys) and cached
    Lagrange sets are what make the per-scheme numbers representative of a
    long-running service node rather than a cold process.
    """
    fixed = precompute_stats()
    lagrange = lagrange_cache_stats()
    print_table(
        "Precompute caches after Table 1 runs",
        ["Cache", "Hits", "Misses", "Entries", "Capacity"],
        [
            ["fixed-base", fixed["hits"], fixed["misses"], fixed["tables"],
             fixed["capacity"]],
            ["lagrange", lagrange["hits"], lagrange["misses"], lagrange["size"],
             lagrange["capacity"]],
        ],
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
