"""Table 3 — Schemes' parameters benchmark setup.

Regenerates the arithmetic structure, key length, and communication
complexity per scheme, introspected from live key material rather than
hard-coded, and checks the rows against the paper.
"""

from repro.groups import get_group
from repro.groups.bn254 import bn254_pairing
from repro.schemes import SCHEME_TABLE

from _common import print_table

PAPER_TABLE_3 = {
    "sg02": ("EC (Ed25519)", 256, "O(n)"),
    "bz03": ("EC (Bn254)", 254, "O(n)"),
    "sh00": ("RSA", 2048, "O(n)"),
    "bls04": ("EC (Bn254)", 254, "O(n)"),
    "kg20": ("EC (Ed25519)", 256, "O(n^2)"),
    "cks05": ("EC (Ed25519)", 256, "O(n)"),
}


def _arithmetic_structure(scheme: str) -> tuple[str, int]:
    info = SCHEME_TABLE[scheme]
    if info.default_group == "rsa":
        return "RSA", 2048  # the paper's default modulus size
    if info.default_group == "bn254":
        return "EC (Bn254)", bn254_pairing().key_bits
    group = get_group(info.default_group)
    return f"EC ({info.default_group.capitalize()})", group.key_bits


def test_table3_parameters(benchmark):
    rows = []
    for name in sorted(SCHEME_TABLE):
        structure, bits = _arithmetic_structure(name)
        complexity = SCHEME_TABLE[name].communication_complexity
        rows.append([name.upper(), structure, bits, complexity])
        assert (structure, bits, complexity) == PAPER_TABLE_3[name]
    print_table(
        "Table 3: scheme parameters",
        ["Scheme", "Arithmetic structure", "Key length (bit)", "Comm. complexity"],
        rows,
    )
    # Only KG20 needs two communication rounds (§4.4).
    assert [n for n, i in SCHEME_TABLE.items() if i.rounds > 1] == ["kg20"]
    benchmark.pedantic(
        lambda: [_arithmetic_structure(n) for n in SCHEME_TABLE], rounds=1, iterations=1
    )
