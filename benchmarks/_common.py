"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper artefact it regenerates
(the numbers land in the pytest output and EXPERIMENTS.md), and exercises
the code through ``benchmark.pedantic`` so ``pytest --benchmark-only`` also
records wall-clock cost.

Set ``REPRO_FAST=1`` to shrink the sweeps for a quick smoke run.
"""

from __future__ import annotations

import os

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")


def fast_mode() -> bool:
    return FAST


def host_cores() -> int:
    return os.cpu_count() or 1


def requires_cores(n: int) -> bool:
    """Host gate for performance assertions that need real parallelism.

    The correctness half of every benchmark runs everywhere; the
    throughput/latency claims only hold with enough cores (event loop +
    workers).  Returns True when the host qualifies, and prints the skip
    so a gated run is visible in the log rather than silently green.
    """
    cores = host_cores()
    if cores >= n:
        return True
    print(f"[gate] host has {cores} cores < {n}: performance asserts skipped")
    return False


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"
