"""Shared helpers for the benchmark harness.

Every benchmark prints the rows/series of the paper artefact it regenerates
(the numbers land in the pytest output and EXPERIMENTS.md), and exercises
the code through ``benchmark.pedantic`` so ``pytest --benchmark-only`` also
records wall-clock cost.

Set ``REPRO_FAST=1`` to shrink the sweeps for a quick smoke run.
"""

from __future__ import annotations

import os

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")


def fast_mode() -> bool:
    return FAST


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"
