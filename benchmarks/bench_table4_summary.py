"""Table 4 — Performance summary on DO-31-G: knee capacity, δ_res, η_θ.

Finds each scheme's knee capacity with a fresh capacity sweep, runs the
steady state at that knee, and derives the residual-delay factor and latency
fairness index — the full Table 4 pipeline.  Checks the paper's structure:

* knee ordering: DH-based (8) ≥ pairing-based (4) ≥ RSA (2);
* δ_res is largest for the cheap DH schemes and smallest for KG20;
* η_θ is the mirror image (η = 1/(1+δ)), with KG20 the fairest.
"""

from repro.sim.deployments import DEPLOYMENTS
from repro.sim.experiments import capacity_test, steady_state
from repro.sim.metrics import find_knee

from _common import fast_mode, print_table

PAPER_TABLE_4 = {
    # scheme: (knee req/s, delta_res, eta_theta)
    "sg02": (8, 2.764, 0.266),
    "bz03": (4, 1.074, 0.482),
    "sh00": (2, 0.986, 0.503),
    "bls04": (4, 0.953, 0.512),
    "kg20": (4, 0.260, 0.793),
    "cks05": (8, 3.285, 0.233),
}


def test_table4_summary(benchmark):
    deployment = DEPLOYMENTS["DO-31-G"]
    duration = 30.0 if fast_mode() else 90.0
    summary = {}

    def run():
        for scheme in PAPER_TABLE_4:
            rates = deployment.rates()[:6]  # knees all sit at ≤ 32 req/s
            knee = find_knee(
                capacity_test(deployment, scheme, rates=rates, duration=10.0)
            )
            steady = steady_state(
                deployment, scheme, rate=knee.rate, duration=duration
            )
            summary[scheme] = (knee.rate, steady)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scheme, (paper_knee, paper_delta, paper_eta) in PAPER_TABLE_4.items():
        knee_rate, steady = summary[scheme]
        rows.append(
            [
                scheme,
                f"{knee_rate:g}",
                paper_knee,
                f"{steady.delta_res:.3f}",
                f"{paper_delta:.3f}",
                f"{steady.eta_theta:.3f}",
                f"{paper_eta:.3f}",
            ]
        )
    print_table(
        "Table 4: performance summary, DO-31-G (ours vs paper)",
        ["scheme", "knee", "knee(paper)", "δ_res", "δ_res(paper)", "η_θ", "η_θ(paper)"],
        rows,
    )

    knee = {s: summary[s][0] for s in summary}
    delta = {s: summary[s][1].delta_res for s in summary}
    eta = {s: summary[s][1].eta_theta for s in summary}

    # Knee ordering and magnitude (within 2× of Table 4).
    for scheme, (paper_knee, _, _) in PAPER_TABLE_4.items():
        assert paper_knee / 2 <= knee[scheme] <= paper_knee * 2
    assert knee["sg02"] >= knee["bls04"] >= knee["sh00"]

    # δ_res structure: cheap DH schemes show the biggest residual delays;
    # KG20's wait-for-all semantics make it the most balanced.
    assert delta["sg02"] > delta["bls04"]
    assert delta["cks05"] > delta["bz03"]
    assert delta["kg20"] < delta["sg02"]
    assert delta["kg20"] < delta["bz03"]

    # η_θ is the inverse picture: the compute-dominated schemes (KG20 with
    # its wait-for-all rounds, SH00 with its heavy RSA work) are the most
    # balanced, the cheap DH schemes the least.  (Our simulated SH00 comes
    # out even *more* balanced than the paper's 0.503 — see EXPERIMENTS.md.)
    fairest_two = sorted(eta, key=eta.get, reverse=True)[:2]
    assert set(fairest_two) == {"kg20", "sh00"}
    assert eta["sg02"] < 0.5 < eta["kg20"]
    # δ and η are consistent by definition.
    for scheme in summary:
        assert abs(eta[scheme] - 1.0 / (1.0 + delta[scheme])) < 1e-9
