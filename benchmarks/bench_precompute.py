"""Precompute pipeline: warm-pool latency vs cold, and refill neutrality.

The pipeline's claim (docs/performance.md, "Precompute pipeline") is
two-sided:

* **announced requests get cheap** — with eager pipelining the whole
  threshold round runs ahead of demand, so a warm request's p50 must be
  at least 2× below the cold on-demand p50 (SG02 decrypt and BLS04 sign,
  host-gated at 4 cores like the fig4 ablation);
* **everyone else pays nothing** — refill is idle-gated, so foreground
  throughput with a busy refill queue must stay within 5% of the
  pipeline-disabled baseline (the neutrality gate, asserted on every
  host including 1-core runners).

Results persist to ``BENCH_precompute.json`` at the repo root with a
bounded history, like the offload and federation panels.  ``REPRO_FAST=1``
shrinks the request counts.
"""

from __future__ import annotations

import asyncio
import json
import platform
import statistics
import time
from pathlib import Path

from repro.core.orchestration.precompute import (
    PrecomputeConfig,
    derive_instance_id,
)
from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service.config import make_local_configs
from repro.service.node import ThetacryptNode

from _common import fast_mode, host_cores, print_table, requires_cores

OUT = Path(__file__).resolve().parent.parent / "BENCH_precompute.json"

#: 4-node t=1 cluster, the suite's standard small service shape.
PARTIES, THRESHOLD = 4, 1

#: Keep a bounded trajectory of prior runs in the JSON, like BENCH_offload.
HISTORY_LIMIT = 20


async def _start_cluster(materials: dict, precompute) -> list[ThetacryptNode]:
    configs = make_local_configs(
        PARTIES,
        THRESHOLD,
        transport="local",
        rpc_base_port=0,
        precompute=precompute,
    )
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, km in materials.items():
            node.install_key(
                key_id, km.scheme, km.public_key, km.share_for(config.node_id)
            )
        await node.start()
        nodes.append(node)
    return nodes


async def _stop_cluster(nodes: list[ThetacryptNode]) -> None:
    for node in nodes:
        await node.stop()


async def _timed_request(
    nodes: list[ThetacryptNode], kind: str, key_id: str, data: bytes
) -> tuple[float, bytes]:
    """One client-shaped fan-out: submit on every node, await the results."""
    started = time.perf_counter()
    results = await asyncio.gather(
        *(node.run_request(kind, key_id, data) for node in nodes)
    )
    return time.perf_counter() - started, results[0]


async def _measure_requests(
    nodes: list[ThetacryptNode], kind: str, key_id: str, datas: list[bytes]
) -> list[float]:
    latencies = []
    for data in datas:
        latency, _ = await _timed_request(nodes, kind, key_id, data)
        latencies.append(latency)
    return latencies


async def _warm_vs_cold(km, key_id: str, kind: str, requests: int) -> dict:
    """p50 of announced-and-pipelined requests vs strictly on-demand ones."""
    materials = {key_id: km}

    # -- cold: the pre-pipeline on-demand path --------------------------------
    nodes = await _start_cluster(materials, None)
    try:
        datas = [f"cold {kind} {i}".encode() for i in range(requests)]
        if kind == "decrypt":
            datas = [
                nodes[0].scheme_encrypt(key_id, payload, b"")
                for payload in datas
            ]
        cold = await _measure_requests(nodes, kind, key_id, datas)
    finally:
        await _stop_cluster(nodes)

    # -- warm: announce, let the pipeline finish, then request ----------------
    nodes = await _start_cluster(
        materials, PrecomputeConfig(depth=requests, eager=True)
    )
    try:
        datas = [f"warm {kind} {i}".encode() for i in range(requests)]
        if kind == "decrypt":
            datas = [
                nodes[0].scheme_encrypt(key_id, payload, b"")
                for payload in datas
            ]
        await asyncio.gather(
            *(node.precompute_requests(key_id, datas) for node in nodes)
        )
        # Eager pipelining drives every announced instance to completion;
        # the (untimed) wait here is the work the client no longer pays.
        instance_ids = [
            derive_instance_id(kind, key_id, data, b"") for data in datas
        ]
        await asyncio.gather(
            *(nodes[0].instances.result(iid) for iid in instance_ids)
        )
        warm = await _measure_requests(nodes, kind, key_id, datas)
        served = nodes[0].stats()["precompute"]["served"]
        assert served.get(f"{kind}/pool", 0) == requests, served
    finally:
        await _stop_cluster(nodes)

    return {
        "scheme": km.scheme,
        "kind": kind,
        "requests": requests,
        "cold_p50": statistics.median(cold),
        "warm_p50": statistics.median(warm),
        "cold_latencies": cold,
        "warm_latencies": warm,
        "speedup": (
            statistics.median(cold) / statistics.median(warm)
            if statistics.median(warm)
            else 0.0
        ),
    }


async def _foreground_run(
    km, key_id: str, requests: int, busy_refill: bool, tag: str
) -> dict:
    """Sequential foreground decrypts, optionally against a busy refill queue."""
    precompute = (
        PrecomputeConfig(depth=4 * requests, eager=False, idle_only=True)
        if busy_refill
        else None
    )
    nodes = await _start_cluster({key_id: km}, precompute)
    try:
        # One untimed warm-up request: excludes cold-start costs from both
        # modes and — in the busy-refill mode — arms the refill loop's
        # idle-grace window, as any live service's traffic would, so the
        # announce below cannot slip one refill job in front of the first
        # measured request.
        warmup = nodes[0].scheme_encrypt(key_id, f"{tag} warmup".encode(), b"")
        await _timed_request(nodes, "decrypt", key_id, warmup)
        if busy_refill:
            # Announce a backlog of *other* requests: the refill loop has
            # work queued for the whole foreground window, but idle gating
            # must keep it out of the foreground's way.
            backlog = [
                nodes[0].scheme_encrypt(key_id, f"{tag} backlog {i}".encode(), b"")
                for i in range(4 * requests)
            ]
            announces = [
                asyncio.ensure_future(node.precompute_requests(key_id, backlog))
                for node in nodes
            ]
        datas = [
            nodes[0].scheme_encrypt(key_id, f"{tag} fg {i}".encode(), b"")
            for i in range(requests)
        ]
        started = time.perf_counter()
        latencies = await _measure_requests(nodes, "decrypt", key_id, datas)
        duration = time.perf_counter() - started
        refills = {}
        if busy_refill:
            await asyncio.gather(*announces)
            refills = nodes[0].stats()["precompute"]["refills"]
        return {
            "busy_refill": busy_refill,
            "requests": requests,
            "duration": duration,
            "ops_per_sec": requests / duration if duration else 0.0,
            "p50": statistics.median(latencies),
            "refills": refills,
        }
    finally:
        await _stop_cluster(nodes)


def _load_history() -> list[dict]:
    if not OUT.exists():
        return []
    try:
        prior = json.loads(OUT.read_text())
    except (OSError, ValueError):
        return []
    history = list(prior.get("history", []))
    if "panels" in prior:
        history.append(
            {
                "timestamp": prior.get("timestamp"),
                "host": prior.get("host"),
                "speedups": {
                    panel["scheme"]: panel["speedup"]
                    for panel in prior.get("panels", [])
                },
                "neutrality_ratio": prior.get("neutrality", {}).get("ratio"),
            }
        )
    return history[-HISTORY_LIMIT:]


def test_precompute_pipeline(benchmark):
    """Warm vs cold p50 for SG02 decrypt + BLS04 sign, and the neutrality gate."""
    requests = 2 if fast_mode() else 5
    sign_requests = 2 if fast_mode() else 3
    neutrality_reps = 2 if fast_mode() else 3
    foreground = 2 if fast_mode() else 4
    cores = host_cores()

    km_sg02 = generate_keys("sg02", THRESHOLD, PARTIES)
    km_bls04 = generate_keys("bls04", THRESHOLD, PARTIES)
    results = {}

    def run():
        async def all_panels():
            panels = [
                await _warm_vs_cold(km_sg02, "sg02", "decrypt", requests),
                await _warm_vs_cold(km_bls04, "bls04", "sign", sign_requests),
            ]
            # Interleave disabled/enabled repeats so drift (caches, cpu
            # frequency) hits both sides of the neutrality ratio equally.
            baseline, pipelined = [], []
            for rep in range(neutrality_reps):
                baseline.append(
                    await _foreground_run(
                        km_sg02, "sg02", foreground, False, f"off{rep}"
                    )
                )
                pipelined.append(
                    await _foreground_run(
                        km_sg02, "sg02", foreground, True, f"on{rep}"
                    )
                )
            return panels, baseline, pipelined

        results["panels"], results["baseline"], results["pipelined"] = (
            asyncio.run(all_panels())
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    panels = results["panels"]
    baseline_ops = statistics.median(
        run["ops_per_sec"] for run in results["baseline"]
    )
    pipelined_ops = statistics.median(
        run["ops_per_sec"] for run in results["pipelined"]
    )
    ratio = pipelined_ops / baseline_ops if baseline_ops else 0.0

    print_table(
        f"Precompute pipeline: warm vs cold p50, {PARTIES}-node t={THRESHOLD} "
        f"cluster, {cores} cores",
        ["scheme", "op", "requests", "cold p50 (ms)", "warm p50 (ms)", "speedup"],
        [
            [
                panel["scheme"],
                panel["kind"],
                f"{panel['requests']}",
                f"{panel['cold_p50'] * 1000:.1f}",
                f"{panel['warm_p50'] * 1000:.1f}",
                f"{panel['speedup']:.1f}x",
            ]
            for panel in panels
        ],
    )
    print_table(
        f"Refill neutrality: {foreground} foreground sg02 decrypts vs a "
        f"{4 * foreground}-deep refill backlog ({neutrality_reps} reps)",
        ["pipeline", "ops/s (median)", "ratio"],
        [
            ["disabled", f"{baseline_ops:.2f}", "1.00"],
            ["busy refill", f"{pipelined_ops:.2f}", f"{ratio:.3f}"],
        ],
    )

    payload = {
        "benchmark": "precompute_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cores": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "fast_mode": fast_mode(),
        },
        "panels": panels,
        "neutrality": {
            "reps": neutrality_reps,
            "foreground_requests": foreground,
            "baseline": results["baseline"],
            "pipelined": results["pipelined"],
            "baseline_ops_per_sec": baseline_ops,
            "pipelined_ops_per_sec": pipelined_ops,
            "ratio": ratio,
        },
        "history": _load_history(),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")

    # Correctness on every host: every warm request was served from the
    # pipeline (asserted inside _warm_vs_cold) and the refill backlog
    # eventually staged without errors.
    for run_stats in results["pipelined"]:
        refills = run_stats["refills"]
        assert refills.get("decrypt/error", 0) == 0, refills

    # Neutrality holds everywhere, including 1-core hosts: a busy refill
    # queue must not starve foreground requests.
    assert ratio >= 0.95, (
        f"foreground throughput dropped to {ratio:.3f}x with refill busy "
        f"({pipelined_ops:.2f} vs {baseline_ops:.2f} ops/s)"
    )

    # The latency claim needs spare cores (same gate as the fig4 panels).
    if requires_cores(4):
        for panel in panels:
            assert panel["speedup"] >= 2.0, (
                f"{panel['scheme']} {panel['kind']}: warm p50 "
                f"{panel['warm_p50'] * 1000:.1f}ms is only "
                f"{panel['speedup']:.2f}x below cold "
                f"{panel['cold_p50'] * 1000:.1f}ms"
            )
