"""Federation scale-out: aggregate throughput of sharded groups.

The router tier's capacity claim (docs/federation.md): G independent
threshold groups behind stateless routers should deliver close to G× the
aggregate ops/s of a single group, because groups share no transport, no
instance state, and — with crypto worker pools — no interpreter lock.

This bench drives identical per-shard workloads (SG02 threshold
decryptions of pre-dealt ciphertexts, every request a distinct instance)
through a router against a 1-group and a 3-group federation and compares
aggregate throughput.  Results, including the per-shard breakdown from
the router's ``repro_router_requests_total`` counter, persist to
``BENCH_federation.json`` at the repo root.

Like the fig4 offload ablation, the speedup gate is host-gated: the
≥2.2× assertion needs at least 4 cores (one per group's workers plus the
event loop); on smaller hosts the run is informational and only the
JSON is produced.  ``REPRO_FAST=1`` shrinks the request count.
"""

from __future__ import annotations

import asyncio
import json
import platform
import time
from pathlib import Path

import pytest

from repro.router.federation import FederatedCluster
from repro.schemes import generate_keys

from _common import fast_mode, host_cores, print_table, requires_cores

OUT = Path(__file__).resolve().parent.parent / "BENCH_federation.json"

#: Per-group shape: a 2-of-2 group keeps the in-process node count low
#: (the bench runs up to 3 groups × 2 nodes on one event loop).
PARTIES, THRESHOLD = 2, 1

#: Keep a bounded trajectory of prior runs in the JSON, like BENCH_offload.
HISTORY_LIMIT = 20


async def _run_shape(
    group_ids: tuple[str, ...],
    material,
    requests_per_group: int,
    concurrency: int,
    workers: int,
) -> dict:
    """One federation shape: returns aggregate ops/s + per-shard stats."""
    key_ids = {gid: f"{gid}/sg02" for gid in group_ids}
    cluster = FederatedCluster(
        group_ids=group_ids,
        parties=PARTIES,
        threshold=THRESHOLD,
        routers=1,
        assignments={key_id: gid for gid, key_id in key_ids.items()},
        crypto_workers=workers,
        offload_policy="always" if workers else "adaptive",
    )
    await cluster.start({key_id: material for key_id in key_ids.values()})
    client = cluster.client(max_retries=5)
    try:
        # Deal the work up front (encryption is local and untimed): every
        # ciphertext is distinct, so every decrypt is a fresh instance.
        ciphertexts = {
            gid: [
                await client.encrypt(
                    key_ids[gid], f"{gid}-{i}".encode(), b"bench"
                )
                for i in range(requests_per_group)
            ]
            for gid in group_ids
        }
        semaphores = {gid: asyncio.Semaphore(concurrency) for gid in group_ids}

        async def decrypt(gid: str, index: int) -> None:
            async with semaphores[gid]:
                plaintext = await client.decrypt(
                    key_ids[gid], ciphertexts[gid][index], b"bench"
                )
                assert plaintext == f"{gid}-{index}".encode()

        started = time.perf_counter()
        await asyncio.gather(
            *(
                decrypt(gid, i)
                for gid in group_ids
                for i in range(requests_per_group)
            )
        )
        duration = time.perf_counter() - started
        total = requests_per_group * len(group_ids)
        router = cluster.routers[0].router
        shards = router.stats()["shards"]
        # Per-method per-shard counts (the untimed encrypts go through the
        # router too; the gate below wants the decrypts alone).
        by_method: dict[str, dict[str, float]] = {}
        family = router.registry.get("repro_router_requests_total")
        for child in family.children() if family is not None else ():
            labels = dict(child.label_items)
            shard = by_method.setdefault(labels["group"], {})
            shard[labels["method"]] = (
                shard.get(labels["method"], 0) + child.value
            )
        return {
            "groups": list(group_ids),
            "parties": PARTIES,
            "threshold": THRESHOLD,
            "crypto_workers": workers,
            "requests_per_group": requests_per_group,
            "concurrency_per_group": concurrency,
            "total_requests": total,
            "duration": duration,
            "ops_per_sec": total / duration if duration else 0.0,
            "shards": shards,
            "shard_methods": by_method,
        }
    finally:
        await client.close()
        await cluster.stop()


def _load_history() -> list[dict]:
    if not OUT.exists():
        return []
    try:
        prior = json.loads(OUT.read_text())
    except (OSError, ValueError):
        return []
    history = list(prior.get("history", []))
    if "speedup" in prior:
        history.append(
            {
                "timestamp": prior.get("timestamp"),
                "host": prior.get("host"),
                "single_ops_per_sec": prior.get("single", {}).get("ops_per_sec"),
                "federated_ops_per_sec": prior.get("federated", {}).get(
                    "ops_per_sec"
                ),
                "speedup": prior.get("speedup"),
            }
        )
    return history[-HISTORY_LIMIT:]


def test_federation_scaling(benchmark):
    """3-group aggregate vs 1-group baseline through a router."""
    requests = 2 if fast_mode() else 6
    concurrency = 2 if fast_mode() else 4
    cores = host_cores()
    # Worker pools only help with spare cores; on small hosts they cost
    # throughput, so the bench (like a real deployment) keeps crypto
    # inline there and records an unscaled, GIL-bound comparison.
    workers = 1 if cores >= 4 else 0
    material = generate_keys("sg02", THRESHOLD, PARTIES)
    results = {}

    def run():
        async def both():
            single = await _run_shape(
                ("solo",), material, requests, concurrency, workers
            )
            federated = await _run_shape(
                ("alpha", "beta", "gamma"),
                material,
                requests,
                concurrency,
                workers,
            )
            return single, federated

        results["single"], results["federated"] = asyncio.run(both())

    benchmark.pedantic(run, rounds=1, iterations=1)
    single, federated = results["single"], results["federated"]
    speedup = (
        federated["ops_per_sec"] / single["ops_per_sec"]
        if single["ops_per_sec"]
        else 0.0
    )

    rows = [
        [
            "+".join(shape["groups"]),
            f"{shape['total_requests']}",
            f"{shape['duration']:.2f}",
            f"{shape['ops_per_sec']:.2f}",
            " ".join(
                f"{gid}:{int(stats['requests'].get('ok', 0))}"
                for gid, stats in shape["shards"].items()
            ),
        ]
        for shape in (single, federated)
    ]
    print_table(
        f"Federation scale-out: sg02 decrypt, {PARTIES}-node groups, "
        f"{cores} cores, crypto_workers={workers} (speedup {speedup:.2f}x)",
        ["groups", "requests", "duration (s)", "ops/s", "per-shard ok"],
        rows,
    )

    payload = {
        "benchmark": "federation_scaling",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "cores": cores,
            "platform": platform.platform(),
            "python": platform.python_version(),
            "fast_mode": fast_mode(),
        },
        "single": single,
        "federated": federated,
        "speedup": speedup,
        "history": _load_history(),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT}")

    # Correctness on every host: the router spread the load exactly as
    # dealt — each shard decrypted only its own keyspace.
    for gid, methods in federated["shard_methods"].items():
        assert methods.get("decrypt", 0) == requests, (
            f"shard {gid} served {methods} of {requests} decrypts"
        )
    assert "error" not in {
        outcome
        for stats in federated["shards"].values()
        for outcome in stats["requests"]
    }

    # The scale-out claim needs real parallelism: one core per group's
    # crypto worker plus the shared event loop.
    if requires_cores(4):
        assert speedup >= 2.2, (
            f"3-group federation {federated['ops_per_sec']:.2f} ops/s is only "
            f"{speedup:.2f}x the single group's "
            f"{single['ops_per_sec']:.2f} ops/s on a {cores}-core host"
        )
