"""Microbenchmarks of the cryptographic substrates.

The paper argues microbenchmarks alone mislead (§1, §4.5); these exist to
ground the simulator's cost model and to document the pure-Python constant
factor.  The *relative* costs here must reproduce the paper's hierarchy:
ECDH ops < pairing ops < RSA ops.
"""

import pytest

from repro.groups import get_group
from repro.groups.bn254 import bn254_pairing
from repro.rsa.keygen import modulus_for_bits
from repro.schemes import generate_keys, get_scheme
from repro.symmetric import ChaCha20Poly1305

SCALAR = 0x6B21FD2A9C3F5E1804D7C90B35FA6E82


def test_ed25519_scalar_mult(benchmark):
    group = get_group("ed25519")
    base = group.generator()
    benchmark(lambda: base**SCALAR)


def test_bn254_g1_scalar_mult(benchmark):
    g1 = bn254_pairing().g1
    base = g1.generator()
    benchmark(lambda: base**SCALAR)


def test_bn254_g2_scalar_mult(benchmark):
    g2 = bn254_pairing().g2
    base = g2.generator()
    benchmark(lambda: base**SCALAR)


def test_bn254_pairing(benchmark):
    ctx = bn254_pairing()
    p, q = ctx.g1.generator(), ctx.g2.generator()
    benchmark(lambda: ctx.pair(p, q))


def test_rsa2048_exponentiation(benchmark):
    mod = modulus_for_bits(2048)
    base = mod.random_square()
    exponent = mod.n // 3
    benchmark(lambda: pow(base, exponent, mod.n))


def test_hash_to_g1(benchmark):
    g1 = bn254_pairing().g1
    counter = iter(range(10**9))
    benchmark(lambda: g1.hash_to_element(b"bench-%d" % next(counter)))


def test_chacha20poly1305_4kib(benchmark):
    aead = ChaCha20Poly1305(bytes(32))
    payload = bytes(4096)
    benchmark(lambda: aead.encrypt(bytes(12), payload))


def test_sg02_share_generation(benchmark, keys_by_scheme):
    keys = keys_by_scheme["sg02"]
    scheme = get_scheme("sg02")
    ct = scheme.encrypt(keys.public_key, b"bench", b"l")
    benchmark(lambda: scheme.create_decryption_share(keys.share_for(1), ct))


def test_sg02_share_verification(benchmark, keys_by_scheme):
    keys = keys_by_scheme["sg02"]
    scheme = get_scheme("sg02")
    ct = scheme.encrypt(keys.public_key, b"bench", b"l")
    share = scheme.create_decryption_share(keys.share_for(1), ct)
    benchmark(lambda: scheme.verify_decryption_share(keys.public_key, ct, share))


def test_bls04_share_verification(benchmark, keys_by_scheme):
    keys = keys_by_scheme["bls04"]
    scheme = get_scheme("bls04")
    share = scheme.partial_sign(keys.share_for(1), b"bench")
    benchmark(
        lambda: scheme.verify_signature_share(keys.public_key, b"bench", share)
    )


def test_sh00_share_generation(benchmark, keys_by_scheme):
    keys = keys_by_scheme["sh00"]
    scheme = get_scheme("sh00")
    benchmark(lambda: scheme.partial_sign(keys.share_for(1), b"bench"))


def test_cks05_coin_share(benchmark, keys_by_scheme):
    keys = keys_by_scheme["cks05"]
    scheme = get_scheme("cks05")
    benchmark(lambda: scheme.create_coin_share(keys.share_for(1), b"bench"))


def test_kg20_sign_round(benchmark, keys_by_scheme):
    keys = keys_by_scheme["kg20"]
    scheme = get_scheme("kg20")
    ids = [1, 2]
    nonces = {i: scheme.commit(keys.share_for(i)) for i in ids}
    commitments = [nonces[i][1] for i in ids]
    benchmark(
        lambda: scheme.sign_round(
            keys.share_for(1), b"bench", nonces[1][0], commitments
        )
    )


def test_relative_cost_hierarchy(benchmark):
    """ECDH < pairing and EC < RSA — the paper's Table 1/§4.5 hierarchy."""
    import time

    group = get_group("ed25519")
    ctx = bn254_pairing()
    mod = modulus_for_bits(2048)
    base_ec = group.generator()
    p, q = ctx.g1.generator(), ctx.g2.generator()
    square = mod.random_square()

    def best_of(fn, repeat=3):
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    ec = best_of(lambda: base_ec**SCALAR)
    pairing_cost = best_of(lambda: ctx.pair(p, q))
    rsa = best_of(lambda: pow(square, mod.n // 3, mod.n))
    print(
        f"\nec mult {ec*1e3:.2f} ms | pairing {pairing_cost*1e3:.2f} ms | "
        f"rsa-2048 exp {rsa*1e3:.2f} ms"
    )
    assert ec < pairing_cost
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
