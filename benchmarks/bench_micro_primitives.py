"""Microbenchmarks of the cryptographic substrates.

The paper argues microbenchmarks alone mislead (§1, §4.5); these exist to
ground the simulator's cost model and to document the pure-Python constant
factor.  The *relative* costs here must reproduce the paper's hierarchy:
ECDH ops < pairing ops < RSA ops.
"""

import pytest

from repro.groups import fixed_base_table, get_group, precompute_stats
from repro.groups.bn254 import bn254_pairing
from repro.mathutils.lagrange import (
    clear_lagrange_cache,
    lagrange_cache_stats,
    lagrange_coefficients_at_zero,
)
from repro.rsa.keygen import modulus_for_bits
from repro.schemes import generate_keys, get_scheme
from repro.symmetric import ChaCha20Poly1305

SCALAR = 0x6B21FD2A9C3F5E1804D7C90B35FA6E82


def test_ed25519_scalar_mult(benchmark):
    group = get_group("ed25519")
    base = group.generator()
    benchmark(lambda: base**SCALAR)


def test_ed25519_fixed_base_scalar_mult(benchmark):
    group = get_group("ed25519")
    table = fixed_base_table(group.generator())
    benchmark(lambda: table.pow(SCALAR))


def test_secp256k1_fixed_base_scalar_mult(benchmark):
    group = get_group("secp256k1")
    table = fixed_base_table(group.generator())
    benchmark(lambda: table.pow(SCALAR))


def test_bn254_g1_fixed_base_scalar_mult(benchmark):
    table = fixed_base_table(bn254_pairing().g1.generator())
    benchmark(lambda: table.pow(SCALAR))


def test_bn254_g2_fixed_base_scalar_mult(benchmark):
    table = fixed_base_table(bn254_pairing().g2.generator())
    benchmark(lambda: table.pow(SCALAR))


def test_lagrange_coefficients_uncached(benchmark):
    q = get_group("ed25519").order
    ids = list(range(1, 12))

    def run():
        clear_lagrange_cache()
        return lagrange_coefficients_at_zero(ids, q)

    benchmark(run)


def test_lagrange_coefficients_cached(benchmark):
    q = get_group("ed25519").order
    ids = list(range(1, 12))
    lagrange_coefficients_at_zero(ids, q)  # warm
    benchmark(lambda: lagrange_coefficients_at_zero(ids, q))


def test_bn254_g1_scalar_mult(benchmark):
    g1 = bn254_pairing().g1
    base = g1.generator()
    benchmark(lambda: base**SCALAR)


def test_bn254_g2_scalar_mult(benchmark):
    g2 = bn254_pairing().g2
    base = g2.generator()
    benchmark(lambda: base**SCALAR)


def test_bn254_pairing(benchmark):
    ctx = bn254_pairing()
    p, q = ctx.g1.generator(), ctx.g2.generator()
    benchmark(lambda: ctx.pair(p, q))


def test_rsa2048_exponentiation(benchmark):
    mod = modulus_for_bits(2048)
    base = mod.random_square()
    exponent = mod.n // 3
    benchmark(lambda: pow(base, exponent, mod.n))


def test_hash_to_g1(benchmark):
    g1 = bn254_pairing().g1
    counter = iter(range(10**9))
    benchmark(lambda: g1.hash_to_element(b"bench-%d" % next(counter)))


def test_chacha20poly1305_4kib(benchmark):
    aead = ChaCha20Poly1305(bytes(32))
    payload = bytes(4096)
    benchmark(lambda: aead.encrypt(bytes(12), payload))


def test_sg02_share_generation(benchmark, keys_by_scheme):
    keys = keys_by_scheme["sg02"]
    scheme = get_scheme("sg02")
    ct = scheme.encrypt(keys.public_key, b"bench", b"l")
    benchmark(lambda: scheme.create_decryption_share(keys.share_for(1), ct))


def test_sg02_share_verification(benchmark, keys_by_scheme):
    keys = keys_by_scheme["sg02"]
    scheme = get_scheme("sg02")
    ct = scheme.encrypt(keys.public_key, b"bench", b"l")
    share = scheme.create_decryption_share(keys.share_for(1), ct)
    benchmark(lambda: scheme.verify_decryption_share(keys.public_key, ct, share))


def test_bls04_share_verification(benchmark, keys_by_scheme):
    keys = keys_by_scheme["bls04"]
    scheme = get_scheme("bls04")
    share = scheme.partial_sign(keys.share_for(1), b"bench")
    benchmark(
        lambda: scheme.verify_signature_share(keys.public_key, b"bench", share)
    )


def test_sh00_share_generation(benchmark, keys_by_scheme):
    keys = keys_by_scheme["sh00"]
    scheme = get_scheme("sh00")
    benchmark(lambda: scheme.partial_sign(keys.share_for(1), b"bench"))


def test_cks05_coin_share(benchmark, keys_by_scheme):
    keys = keys_by_scheme["cks05"]
    scheme = get_scheme("cks05")
    benchmark(lambda: scheme.create_coin_share(keys.share_for(1), b"bench"))


def test_kg20_sign_round(benchmark, keys_by_scheme):
    keys = keys_by_scheme["kg20"]
    scheme = get_scheme("kg20")
    ids = [1, 2]
    nonces = {i: scheme.commit(keys.share_for(i)) for i in ids}
    commitments = [nonces[i][1] for i in ids]
    benchmark(
        lambda: scheme.sign_round(
            keys.share_for(1), b"bench", nonces[1][0], commitments
        )
    )


def test_precompute_speedup_report(benchmark):
    """Before/after numbers for the precomputation layer (ISSUE 1 witness).

    Fixed-base exponentiation must beat naive double-and-add on every curve,
    and warm-cache t-of-n combine must beat the cold path for at least two
    schemes.  Printed so the numbers land in the benchmark log.
    """
    import time

    def best_of(fn, repeat=3):
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    print()
    for name in ("ed25519", "secp256k1", "bn254g1", "bn254g2"):
        group = get_group(name)
        base = group.generator()
        table = fixed_base_table(base)
        naive = best_of(lambda: base**SCALAR)
        fast = best_of(lambda: table.pow(SCALAR))
        print(
            f"fixed-base {name}: naive {naive*1e3:.2f} ms -> table "
            f"{fast*1e3:.2f} ms ({naive/fast:.1f}x)"
        )
        assert fast < naive

    # t-of-n share combination: the seed path (per-share double-and-add plus
    # per-coefficient inversions) vs the new path (cached Lagrange sets with
    # one batched inversion + interleaved Straus multi-exp).
    from repro.mathutils.lagrange import lagrange_coefficient

    combine_speedups = {}
    for scheme_name in ("cks05", "bls04"):
        keys = generate_keys(scheme_name, 2, 5)
        scheme = get_scheme(scheme_name)
        # Non-consecutive responder ids: consecutive ids (1, 2, 3) have
        # binomial-sized Lagrange coefficients, which would make the seed
        # path artificially cheap (one full-size exponentiation instead of
        # three).  Ids (1, 3, 5) are the realistic any-t+1-responders case.
        if scheme_name == "cks05":
            shares = [
                scheme.create_coin_share(keys.share_for(i), b"bench") for i in (1, 3, 5)
            ]
            group = keys.public_key.group
            elements = [s.sigma for s in shares]
        else:
            shares = [
                scheme.partial_sign(keys.share_for(i), b"bench") for i in (1, 3, 5)
            ]
            group = keys.public_key.pairing.g1
            elements = [s.sigma for s in shares]
        ids = [s.id for s in shares]

        def seed_path():
            coefficients = {
                i: lagrange_coefficient(ids, i, 0, group.order) for i in ids
            }
            acc = group.identity()
            for element, i in zip(elements, ids):
                acc = acc * element ** coefficients[i]
            return acc

        def new_path():
            coefficients = lagrange_coefficients_at_zero(ids, group.order)
            return group.multi_exp(elements, [coefficients[i] for i in ids])

        assert seed_path() == new_path()
        before = best_of(seed_path)
        after = best_of(new_path)
        combine_speedups[scheme_name] = before / after
        print(
            f"combine core {scheme_name} (t=2): seed {before*1e3:.2f} ms -> new "
            f"{after*1e3:.2f} ms ({before/after:.2f}x)"
        )
    print(f"fixed-base cache: {precompute_stats()}")
    print(f"lagrange cache:   {lagrange_cache_stats()}")
    assert all(s > 1.0 for s in combine_speedups.values())
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_relative_cost_hierarchy(benchmark):
    """ECDH < pairing and EC < RSA — the paper's Table 1/§4.5 hierarchy."""
    import time

    group = get_group("ed25519")
    ctx = bn254_pairing()
    mod = modulus_for_bits(2048)
    base_ec = group.generator()
    p, q = ctx.g1.generator(), ctx.g2.generator()
    square = mod.random_square()

    def best_of(fn, repeat=3):
        times = []
        for _ in range(repeat):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    ec = best_of(lambda: base_ec**SCALAR)
    pairing_cost = best_of(lambda: ctx.pair(p, q))
    rsa = best_of(lambda: pow(square, mod.n // 3, mod.n))
    print(
        f"\nec mult {ec*1e3:.2f} ms | pairing {pairing_cost*1e3:.2f} ms | "
        f"rsa-2048 exp {rsa*1e3:.2f} ms"
    )
    assert ec < pairing_cost
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
