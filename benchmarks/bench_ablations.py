"""Ablation benchmarks for the design choices called out in DESIGN.md.

* TRI/executor overhead vs. calling scheme primitives directly;
* FROST with precomputation (1 online round) vs. the full 2-round run;
* routing the interactive scheme over TOB vs. plain P2P;
* hybrid encryption: threshold-layer cost is payload-independent.
"""

import asyncio
import time

from repro.network.local import LocalHub
from repro.schemes import generate_keys, get_scheme
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs
from repro.sim.deployments import Deployment
from repro.sim.experiments import run_once
from repro.sim.latency import Region

from _common import ms, print_table


async def _network(keys_by_id, parties=4, threshold=1, latency=0.001):
    configs = make_local_configs(parties, threshold, transport="local", rpc_base_port=0)
    hub = LocalHub(latency=lambda a, b: latency)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        for key_id, km in keys_by_id.items():
            node.install_key(key_id, km.scheme, km.public_key, km.share_for(config.node_id))
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    return hub, nodes, client


async def _shutdown(nodes, client):
    await client.close()
    for node in nodes:
        await node.stop()


def test_ablation_tri_executor_overhead(benchmark, keys_by_scheme):
    """Service-path cost vs. raw primitive cost for one coin flip."""
    keys = keys_by_scheme["cks05"]
    scheme = get_scheme("cks05")

    # Raw primitives: share generation at 2 parties + combine, no stack.
    start = time.perf_counter()
    for round_number in range(10):
        name = b"raw-%d" % round_number
        shares = [scheme.create_coin_share(keys.share_for(i), name) for i in (1, 2)]
        for share in shares:
            scheme.verify_coin_share(keys.public_key, name, share)
        scheme.combine(keys.public_key, name, shares)
    raw = (time.perf_counter() - start) / 10

    async def service_flips():
        hub, nodes, client = await _network({"coin": keys}, latency=0.0)
        start = time.perf_counter()
        for round_number in range(10):
            await client.flip_coin("coin", b"svc-%d" % round_number)
        elapsed = (time.perf_counter() - start) / 10
        await _shutdown(nodes, client)
        return elapsed

    service = asyncio.run(service_flips())
    print_table(
        "Ablation: TRI executor + service overhead (one coin flip)",
        ["path", "latency (ms)"],
        [["raw primitives", ms(raw)], ["full service stack", ms(service)]],
    )
    # The generic executor adds overhead but not an order of magnitude.
    assert service < raw * 50
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_frost_precomputation(benchmark):
    """Paper §3.5: precomputation turns FROST into a one-round protocol."""
    keys = generate_keys("kg20", 1, 4)

    async def scenario():
        # 10 ms links make the saved round clearly visible.
        hub, nodes, client = await _network({"wallet": keys}, latency=0.010)
        # Two-round latency.
        start = time.perf_counter()
        await client.sign("wallet", b"cold path")
        two_round = time.perf_counter() - start
        # Precompute, then one-round latency.
        await client.precompute("wallet", 4)
        start = time.perf_counter()
        await client.sign("wallet", b"hot path")
        one_round = time.perf_counter() - start
        await _shutdown(nodes, client)
        return two_round, one_round

    two_round, one_round = asyncio.run(scenario())
    print_table(
        "Ablation: FROST precomputation (10 ms links)",
        ["mode", "signing latency (ms)"],
        [["two rounds (worst case, as benchmarked in §4.4)", ms(two_round)],
         ["one round (precomputed nonces)", ms(one_round)]],
    )
    assert one_round < two_round
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_tob_vs_p2p_for_kg20(benchmark):
    """Routing FROST's rounds through the sequencer TOB costs extra hops."""
    tiny_global = Deployment(
        "ABL-4-G", "tiny", 4, 1,
        (Region.FRA1, Region.SYD1, Region.TOR1, Region.SFO3), 64,
    )
    results = {}

    def run():
        results["p2p"] = run_once(tiny_global, "kg20", 1, 2.0)
        results["tob"] = run_once(tiny_global, "kg20", 1, 2.0, kg20_over_tob=True)

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: KG20 over P2P vs sequencer TOB (global 4-node)",
        ["channel", "L50 (ms)", "L95 (ms)"],
        [
            ["P2P (direct)", ms(results["p2p"].l50), ms(results["p2p"].l95)],
            ["TOB (via sequencer)", ms(results["tob"].l50), ms(results["tob"].l95)],
        ],
    )
    assert results["tob"].l95 > results["p2p"].l95


def test_ablation_gossip_vs_full_mesh(benchmark):
    """Gossip overlay (libp2p's role) vs direct full mesh on the live stack."""
    keys = generate_keys("cks05", 1, 6)

    async def measure(fanout):
        configs = make_local_configs(
            6, 1, transport="local", rpc_base_port=0, gossip_fanout=fanout
        )
        hub = LocalHub(latency=lambda a, b: 0.005)
        nodes = []
        for config in configs:
            node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
            node.install_key(
                "coin", keys.scheme, keys.public_key, keys.share_for(config.node_id)
            )
            await node.start()
            nodes.append(node)
        client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
        await client.flip_coin("coin", b"warmup")
        start = time.perf_counter()
        for k in range(5):
            await client.flip_coin("coin", b"g%d" % k)
        elapsed = (time.perf_counter() - start) / 5
        await _shutdown(nodes, client)
        return elapsed

    async def scenario():
        return await measure(None), await measure(2)

    mesh, gossip = asyncio.run(scenario())
    print_table(
        "Ablation: full mesh vs gossip overlay (6 nodes, 5 ms links)",
        ["topology", "coin latency (ms)"],
        [["full mesh (direct)", ms(mesh)], ["gossip overlay (fanout 2)", ms(gossip)]],
    )
    # Gossip adds store-and-forward hops; it must not be *faster*.
    assert gossip >= mesh * 0.8
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_hybrid_encryption_payload(benchmark, keys_by_scheme):
    """The threshold layer's cost is constant in the payload size."""
    keys = keys_by_scheme["sg02"]
    scheme = get_scheme("sg02")
    rows = []
    share_times = {}
    for size in (256, 4096, 262144):
        payload = bytes(size)
        ct = scheme.encrypt(keys.public_key, payload, b"l")
        start = time.perf_counter()
        for _ in range(5):
            scheme.create_decryption_share(keys.share_for(1), ct)
        share_times[size] = (time.perf_counter() - start) / 5
        rows.append([f"{size} B", ms(share_times[size])])
    print_table(
        "Ablation: SG02 decryption-share cost vs payload (hybrid encryption)",
        ["payload", "share time (ms)"],
        rows,
    )
    # 1 KiB → 256 KiB: share generation (the threshold part) barely moves.
    assert share_times[262144] < share_times[256] * 2.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
