"""Figure 5a — Five-minute experiments at knee capacity (DO-31-G).

Long steady-state runs at each scheme's knee rate on the medium global
deployment, reporting the per-node latency distribution: L_θ^net, L_50^net,
L_95^net — the bars of Fig. 5a.  Checks the paper's qualitative findings:
schemes with expensive local computation (SH00, KG20) sit highest, and the
L_θ→L_95 gap is widest for the cheap DH-based schemes.
"""

import pytest

from repro.sim.deployments import DEPLOYMENTS
from repro.sim.experiments import steady_state
from repro.sim.plotting import bar_chart

from _common import fast_mode, ms, print_table

#: Knee capacities from Table 4 (the load for the steady-state runs).
KNEE_RATES = {"sg02": 8, "bz03": 4, "sh00": 2, "bls04": 4, "kg20": 4, "cks05": 8}


def test_fig5a_steady_state(benchmark):
    deployment = DEPLOYMENTS["DO-31-G"]
    duration = 30.0 if fast_mode() else 120.0
    results = {}

    def run():
        for scheme, rate in KNEE_RATES.items():
            results[scheme] = steady_state(
                deployment, scheme, rate=rate, duration=duration
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scheme in ("sg02", "bz03", "sh00", "bls04", "kg20", "cks05"):
        m = results[scheme]
        rows.append(
            [
                scheme,
                f"{m.rate:g}",
                ms(m.l_theta_net),
                ms(m.l50_net),
                ms(m.l95_net),
                f"{m.completed}/{m.offered}",
            ]
        )
    print_table(
        "Fig. 5a: steady state at knee capacity (DO-31-G)",
        ["scheme", "rate", "Lθ^net (ms)", "L50^net (ms)", "L95^net (ms)", "done"],
        rows,
    )

    print("\nLθ^net bars (Fig. 5a shape):")
    print(
        bar_chart(
            {s: results[s].l_theta_net * 1000 for s in
             ("sg02", "bz03", "sh00", "bls04", "kg20", "cks05")}
        )
    )

    # Expensive local computation pushes the whole distribution up: SH00 has
    # the highest threshold latency (Fig. 5a's tallest bars).
    assert results["sh00"].l_theta_net > results["sg02"].l_theta_net
    assert results["sh00"].l_theta_net > results["bls04"].l_theta_net
    # KG20's two rounds put it above the one-round DH schemes.
    assert results["kg20"].l_theta_net > results["sg02"].l_theta_net
    # The visible Lθ → L95 gap is widest for the cheap DH-based schemes
    # (their nodes finish at network-staggered times).
    gap = lambda m: m.l95_net - m.l_theta_net  # noqa: E731
    assert gap(results["sg02"]) > gap(results["kg20"])
    assert gap(results["cks05"]) > gap(results["kg20"])
    # Every node completed work and the runs were genuinely loaded.
    for m in results.values():
        assert m.completed == m.offered
