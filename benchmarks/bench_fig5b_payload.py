"""Figure 5b — Impact of the request payload size on L_θ.

Repeats the steady-state run while sweeping the payload from 256 B to 4 KiB
(§4.2).  The paper's finding: payload size does not significantly affect
latency, because signatures and coins hash the message first and the
ciphers use hybrid encryption (§4.5).
"""

from repro.sim.deployments import DEPLOYMENTS
from repro.sim.experiments import payload_sweep

from _common import fast_mode, ms, print_table

KNEE_RATES = {"sg02": 8, "bz03": 4, "sh00": 2, "bls04": 4, "kg20": 4, "cks05": 8}
PAYLOADS = (256, 512, 1024, 2048, 4096)


def test_fig5b_payload_size(benchmark):
    deployment = DEPLOYMENTS["DO-31-G"]
    duration = 15.0 if fast_mode() else 45.0
    schemes = ("sg02", "sh00") if fast_mode() else tuple(KNEE_RATES)
    results = {}

    def run():
        for scheme in schemes:
            results[scheme] = payload_sweep(
                deployment,
                scheme,
                rate=KNEE_RATES[scheme],
                payload_sizes=PAYLOADS,
                duration=duration,
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scheme in schemes:
        for point in results[scheme]:
            rows.append([scheme, point.payload_bytes, ms(point.l_theta_net)])
    print_table(
        "Fig. 5b: payload size vs Lθ (DO-31-G at knee capacity)",
        ["scheme", "payload (B)", "Lθ^net (ms)"],
        rows,
    )

    # Flatness: the largest payload costs at most 10% over the smallest.
    for scheme in schemes:
        lthetas = [p.l_theta_net for p in results[scheme]]
        assert max(lthetas) <= 1.10 * min(lthetas), (
            f"{scheme}: payload size visibly affects latency {lthetas}"
        )
