"""Table 2 — Deployment configurations.

Regenerates the deployment table: sizes, regions, measured average network
latency (from the simulator's latency matrix, standing in for the paper's
ping measurements), and the maximum capacity-sweep rate.
"""

from repro.sim.deployments import DEPLOYMENTS
from repro.sim.latency import LatencyModel, Region, rtt

from _common import print_table

# Paper's Table 2 expectations.
PAPER_MAX_RATE = {
    "DO-7-L": 1024, "DO-7-G": 1024,
    "DO-31-L": 512, "DO-31-G": 512,
    "DO-127-L": 64, "DO-127-G": 64,
}


def test_table2_deployments(benchmark):
    model = LatencyModel()
    rows = []
    for acronym, deployment in sorted(DEPLOYMENTS.items()):
        regions = deployment.node_regions()
        avg_rtt = model.average_rtt(regions)
        region_names = ", ".join(sorted({r.value.upper() for r in regions}))
        rows.append(
            [
                acronym,
                deployment.size_label,
                f"{deployment.quorum}-of-{deployment.parties}",
                region_names,
                f"{avg_rtt * 1000:.2f} ms",
                f"{deployment.max_rate} req/s",
            ]
        )
        assert deployment.max_rate == PAPER_MAX_RATE[acronym]
        # The BFT shape n = 3t + 1 with quorum t + 1.
        assert deployment.parties == 3 * deployment.threshold + 1
    print_table(
        "Table 2: deployment configurations",
        ["Acronym", "Size", "Threshold", "Region(s)", "Avg RTT", "Max rate"],
        rows,
    )

    # Representative latencies the paper quotes: ≈0.65 ms local, ≈100/43 ms
    # global.
    assert abs(rtt(Region.FRA1, Region.FRA1) - 0.00065) < 1e-6
    assert abs(rtt(Region.FRA1, Region.SYD1) - 0.100) < 1e-6
    assert abs(rtt(Region.TOR1, Region.SFO3) - 0.043) < 1e-6

    benchmark.pedantic(
        lambda: [model.average_rtt(d.node_regions()) for d in DEPLOYMENTS.values()],
        rounds=1,
        iterations=1,
    )
