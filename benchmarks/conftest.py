"""Benchmark fixtures: cached key material and a small RSA modulus."""

from __future__ import annotations

import pytest

from repro.rsa.keygen import generate_shoup_modulus
from repro.schemes import generate_keys


@pytest.fixture(scope="session")
def small_modulus():
    return generate_shoup_modulus(256)


@pytest.fixture(scope="session")
def keys_by_scheme(small_modulus):
    """(t=1, n=4) material for every scheme, dealt once."""
    keys = {}
    for name in ("sg02", "bz03", "bls04", "kg20", "cks05"):
        keys[name] = generate_keys(name, 1, 4)
    keys["sh00"] = generate_keys("sh00", 1, 4, rsa_modulus=small_modulus)
    return keys
