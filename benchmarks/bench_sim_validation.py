"""Simulator validity check: the live service vs. the DES, same conditions.

The evaluation rests on the discrete-event simulator, so this benchmark
closes the loop: run a small *real* Θ-network (4 nodes, in-process
transport, 1 ms links) under increasing load and measure server-side
latency from the instance records — then run the simulator on the same
deployment with the *measured* cost model (priced from this machine's
pure-Python primitives) and compare.

We require agreement in shape, not in microseconds: latency flat at low
rates, the same throughput ordering, and saturation appearing in the same
rate region.
"""

import asyncio
import time

from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs
from repro.sim.cluster import SimulatedThetaNetwork
from repro.sim.deployments import Deployment
from repro.sim.latency import LatencyModel, Region
from repro.sim.metrics import latency_percentile, summarize
from repro.sim.workload import Workload

from _common import fast_mode, ms, print_table

PARTIES, THRESHOLD = 4, 1
RATES = (2, 8) if fast_mode() else (2, 8, 32)
SECONDS_PER_RATE = 2.0


async def _measure_live(rates):
    keys = generate_keys("cks05", THRESHOLD, PARTIES)
    configs = make_local_configs(PARTIES, THRESHOLD, transport="local", rpc_base_port=0)
    hub = LocalHub(latency=lambda a, b: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            "coin", keys.scheme, keys.public_key, keys.share_for(config.node_id)
        )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    results = {}
    sequence = 0
    try:
        await client.flip_coin("coin", b"warmup")
        for rate in rates:
            count = max(4, int(rate * SECONDS_PER_RATE))
            # Open-loop: fire requests on schedule without awaiting results.
            tasks = []
            start = time.perf_counter()
            for k in range(count):
                target = start + k / rate
                delay = max(0.0, target - time.perf_counter())
                if delay:
                    await asyncio.sleep(delay)
                sequence += 1
                tasks.append(
                    asyncio.ensure_future(
                        client.flip_coin("coin", b"load-%d" % sequence)
                    )
                )
            await asyncio.gather(*tasks)
            elapsed = time.perf_counter() - start
            latencies = sorted(
                record.latency
                for node in nodes
                for record in node.instances.records()
                if record.latency is not None
            )
            results[rate] = (
                count / elapsed,
                latency_percentile(latencies, 95),
            )
            for node in nodes:  # reset records between rates
                node.instances._records.clear()
                node.instances._executors.clear()
    finally:
        await client.close()
        for node in nodes:
            await node.stop()
    return results


def _scaled_measured_model():
    """Measured primitives scaled by n: the live harness timeshares one
    core among all nodes, while the DES gives each node its own CPU."""
    from repro.sim.costs import CostModel, _derive_scheme_costs, measure_primitives

    primitives = {
        name: value * PARTIES for name, value in measure_primitives().items()
    }
    primitives["per_party_cap"] = 40  # not a duration; undo the scaling
    return CostModel(_derive_scheme_costs(primitives), label="measured×n")


def _measure_sim(rates):
    deployment = Deployment("LIVE-4", "tiny", PARTIES, THRESHOLD, (Region.FRA1,), 64)
    # 1 ms links to match the live hub; costs measured from this machine's
    # own pure-Python primitives (scaled for the shared core), because that
    # is what the live stack runs.
    model = _scaled_measured_model()
    results = {}
    for rate in rates:
        network = SimulatedThetaNetwork(
            deployment,
            "cks05",
            cost_model=model,
            latency_model=_FixedLatency(0.001),
        )
        workload = Workload(rate=rate, duration=SECONDS_PER_RATE, max_requests=256)
        metrics = summarize(network.run(workload), deployment.quorum, PARTIES)
        results[rate] = (metrics.throughput, metrics.l95)
    return results


class _FixedLatency(LatencyModel):
    """Constant one-way delay, matching the live LocalHub configuration."""

    def __init__(self, delay: float):
        super().__init__(jitter_fraction=0.0)
        self._delay = delay

    def one_way(self, src, dst):
        return self._delay


def test_simulator_matches_live_service(benchmark):
    live = asyncio.run(_measure_live(RATES))
    sim = _measure_sim(RATES)
    rows = []
    for rate in RATES:
        live_tput, live_l95 = live[rate]
        sim_tput, sim_l95 = sim[rate]
        rows.append(
            [rate, f"{live_tput:.1f}", ms(live_l95), f"{sim_tput:.1f}", ms(sim_l95)]
        )
    print_table(
        "Simulator validation: live 4-node service vs DES (cks05)",
        ["rate", "live tput", "live L95 (ms)", "sim tput", "sim L95 (ms)"],
        rows,
    )
    # Shape agreement:
    # 1. both sustain the offered load at low rates;
    for rate in RATES[:2]:
        assert live[rate][0] > rate * 0.5
        assert sim[rate][0] > rate * 0.5
    # 2. latencies are the same order of magnitude at the low rate (the
    #    live stack adds asyncio/RPC overhead the cost model only
    #    approximates — a factor 5 band is the agreement we claim);
    low = RATES[0]
    ratio = live[low][1] / sim[low][1]
    assert 0.2 < ratio < 5.0, f"live/sim L95 ratio {ratio:.2f} out of band"
    # 3. latency is non-decreasing with load in both systems.
    assert live[RATES[-1]][1] >= live[RATES[0]][1] * 0.5
    assert sim[RATES[-1]][1] >= sim[RATES[0]][1] * 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
