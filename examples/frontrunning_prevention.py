#!/usr/bin/env python3
"""Front-running prevention with threshold encryption (paper §2.3).

The classic blockchain use case: users encrypt transactions under the
service-wide SG02 key, validators order the *ciphertexts* with total-order
broadcast, and only after the order is fixed do the validators jointly
decrypt and execute.  A front-runner watching the mempool sees only
ciphertexts, so it cannot react to transaction contents before they are
committed.

Run from the repository root:

    python3 examples/frontrunning_prevention.py
"""

import asyncio

from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs

PARTIES = 4
THRESHOLD = 1

# The transactions users want to keep private until ordered: a DEX swap that
# a front-runner would love to sandwich.
TRANSACTIONS = [
    b"swap 1000 USDC -> ETH, max slippage 0.1%",
    b"swap 55 ETH -> USDC, limit 3500",
    b"add liquidity: 10 ETH + 35000 USDC",
]


async def main() -> None:
    key_material = generate_keys("sg02", THRESHOLD, PARTIES)
    configs = make_local_configs(
        PARTIES, THRESHOLD, transport="local", rpc_base_port=0
    )
    hub = LocalHub(latency=lambda src, dst: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            "mempool-key",
            key_material.scheme,
            key_material.public_key,
            key_material.share_for(config.node_id),
        )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})

    # --- phase 1: users submit encrypted transactions ----------------------
    # The label binds the ciphertext to its consensus epoch, so decryption
    # shares for one epoch are useless in another.
    epoch = b"epoch-000042"
    encrypted_mempool = []
    for tx in TRANSACTIONS:
        ciphertext = await client.encrypt("mempool-key", tx, epoch)
        encrypted_mempool.append(ciphertext)
        print(f"mempool <- ciphertext ({len(ciphertext)} bytes), plaintext hidden")

    # --- phase 2: consensus orders the ciphertexts -------------------------
    # Here the host blockchain's TOB would fix the order; we use arrival
    # order for the demo.  Crucially the ORDER IS NOW FINAL and was decided
    # without anyone seeing transaction contents.
    ordered_block = list(encrypted_mempool)
    print(f"\nblock sealed with {len(ordered_block)} encrypted transactions")

    # --- phase 3: validators jointly decrypt, then execute -----------------
    print("\nvalidators decrypt after ordering:")
    executed = []
    for position, ciphertext in enumerate(ordered_block):
        plaintext = await client.decrypt("mempool-key", ciphertext, epoch)
        executed.append(plaintext)
        print(f"  [{position}] execute: {plaintext.decode()}")

    assert executed == TRANSACTIONS

    # --- what a front-runner cannot do --------------------------------------
    # Fewer than t+1 = 2 colluding validators learn nothing: a single node's
    # decryption share never leaves its process, and a tampered ciphertext
    # is rejected before any share is produced (CCA security).
    from repro.errors import RpcError

    tampered = bytearray(ordered_block[0])
    tampered[-1] ^= 0xFF  # flip a payload bit: the AEAD layer catches it
    try:
        await client.decrypt("mempool-key", bytes(tampered), epoch)
        raise AssertionError("tampered ciphertext must not decrypt")
    except RpcError:
        print("\ntampered payload rejected (authenticated encryption) ✓")
    # Flipping the threshold part instead trips the TDH2 validity proof, so
    # nodes refuse to even produce decryption shares (the CCA guard).
    tampered = bytearray(ordered_block[0])
    tampered[20] ^= 0xFF  # inside the masked key / proof region
    try:
        await client.decrypt("mempool-key", bytes(tampered), epoch)
        raise AssertionError("tampered ciphertext must not decrypt")
    except RpcError:
        print("tampered KEM rejected before any share was produced (CCA) ✓")

    await client.close()
    for node in nodes:
        await node.stop()


if __name__ == "__main__":
    asyncio.run(main())
