#!/usr/bin/env python3
"""Dealerless setup: distributed key generation as a TRI protocol (§2.2).

The paper's evaluation assumes a trusted dealer, but notes setup can instead
run "through a distributed key-generation protocol, which is run by the
parties themselves".  This example runs the Joint-Feldman DKG over the
network layer — each party deals sub-shares in directed P2P messages — and
then uses the resulting dealerless key for a threshold coin.

Run from the repository root:

    python3 examples/distributed_keygen.py
"""

import asyncio

from repro.core.orchestration import InstanceManager
from repro.core.protocols import DkgProtocol
from repro.groups import get_group
from repro.network.local import LocalHub
from repro.network.manager import NetworkManager
from repro.schemes.cks05 import Cks05Coin, Cks05KeyShare, Cks05PublicKey

PARTIES = 5
THRESHOLD = 2


async def main() -> None:
    group = get_group("ed25519")
    hub = LocalHub(latency=lambda src, dst: 0.001)

    # Wire a bare core stack per node: network manager + instance manager.
    networks = {
        i: NetworkManager(hub.endpoint(i), enable_tob=False)
        for i in range(1, PARTIES + 1)
    }
    managers = {
        i: InstanceManager(i, networks[i].dispatch) for i in networks
    }
    for i, network in networks.items():
        network.set_protocol_handler(managers[i].handle_network_message)

    # Each node runs its DKG protocol instance; no dealer anywhere.
    protocols = {
        i: DkgProtocol("dkg-ceremony-1", i, THRESHOLD, PARTIES, group)
        for i in managers
    }
    for i, protocol in protocols.items():
        managers[i].start_instance(protocol, "cks05")
    group_keys = await asyncio.gather(
        *(managers[i].result("dkg-ceremony-1") for i in managers)
    )
    assert len(set(group_keys)) == 1
    print(f"DKG complete; group key: {group_keys[0].hex()[:32]}…")
    print(f"qualified dealers at node 1: {protocols[1].result.qualified}")

    # Plug the DKG output into the CKS05 scheme exactly like dealer output.
    result_1 = protocols[1].result
    public = Cks05PublicKey(
        "ed25519",
        THRESHOLD,
        PARTIES,
        result_1.group_key,
        tuple(result_1.verification_keys),
    )
    shares = {
        i: Cks05KeyShare(i, protocols[i].result.key_share, public)
        for i in protocols
    }

    coin = Cks05Coin()
    name = b"first dealerless coin"
    coin_shares = [coin.create_coin_share(shares[i], name) for i in (1, 3, 5)]
    for share in coin_shares:
        coin.verify_coin_share(public, name, share)
    value = coin.combine(public, name, coin_shares)
    print(f"coin from the dealerless key: {value.hex()}")

    # Any other quorum agrees.
    other = [coin.create_coin_share(shares[i], name) for i in (2, 4, 5)]
    assert coin.combine(public, name, other) == value
    print("a disjoint quorum derives the identical value ✓")

    for manager in managers.values():
        await manager.shutdown()


if __name__ == "__main__":
    asyncio.run(main())
