#!/usr/bin/env python3
"""Quickstart: a 4-node Thetacrypt service doing threshold BLS signing.

Run from the repository root:

    python3 examples/quickstart.py

What happens:
  1. A trusted dealer creates (t=1, n=4) BLS key material.
  2. Four Thetacrypt nodes start in one process, connected by the in-process
     transport (swap in the TCP transport for a real deployment).
  3. A client asks the Θ-network for a signature; any 2 of the 4 nodes are
     enough to assemble it.
  4. The assembled signature verifies like an ordinary BLS signature.
"""

import asyncio

from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs

PARTIES = 4
THRESHOLD = 1  # any t+1 = 2 nodes can sign; up to t = 1 may be corrupt


async def main() -> None:
    # --- 1. setup: the trusted dealer (see examples/distributed_keygen.py
    # for the dealerless alternative) --------------------------------------
    key_material = generate_keys("bls04", THRESHOLD, PARTIES)
    print(f"dealt bls04 key material: {THRESHOLD + 1}-of-{PARTIES}")

    # --- 2. start the Θ-network -------------------------------------------
    configs = make_local_configs(
        PARTIES, THRESHOLD, transport="local", rpc_base_port=0
    )
    hub = LocalHub(latency=lambda src, dst: 0.001)  # 1 ms links
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            "demo-key",
            key_material.scheme,
            key_material.public_key,
            key_material.share_for(config.node_id),
        )
        await node.start()
        nodes.append(node)
    print(f"started {PARTIES} Thetacrypt nodes")

    # --- 3. sign through the protocol API ----------------------------------
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})
    message = b"hello, threshold world"
    signature = await client.sign("demo-key", message)
    print(f"assembled signature ({len(signature)} bytes): {signature.hex()[:48]}…")

    # --- 4. verify through the scheme API -----------------------------------
    valid = await client.verify_signature("demo-key", message, signature)
    print(f"signature valid: {valid}")
    forged = await client.verify_signature("demo-key", b"other message", signature)
    print(f"signature on a different message valid: {forged}")

    await client.close()
    for node in nodes:
        await node.stop()
    assert valid and not forged


if __name__ == "__main__":
    asyncio.run(main())
