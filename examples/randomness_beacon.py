#!/usr/bin/env python3
"""A distributed randomness beacon from the CKS05 threshold coin (§2.3).

Emulates a drand-style beacon: every round, the Θ-network jointly evaluates
the threshold-random function on the round name chained with the previous
value.  The output is unpredictable to any t nodes, unbiased, and *unique* —
every quorum derives the same value, so the beacon never forks.

Run from the repository root:

    python3 examples/randomness_beacon.py
"""

import asyncio

from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs

PARTIES = 7
THRESHOLD = 2  # 3-of-7, the paper's small deployment shape
ROUNDS = 5


async def main() -> None:
    key_material = generate_keys("cks05", THRESHOLD, PARTIES)
    configs = make_local_configs(
        PARTIES, THRESHOLD, transport="local", rpc_base_port=0
    )
    hub = LocalHub(latency=lambda src, dst: 0.001)
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            "beacon-key",
            key_material.scheme,
            key_material.public_key,
            key_material.share_for(config.node_id),
        )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})

    print(f"beacon online: {THRESHOLD + 1}-of-{PARTIES} threshold coin\n")

    # --- emit a chain of beacon values ---------------------------------------
    previous = b"genesis"
    chain = []
    for round_number in range(1, ROUNDS + 1):
        name = b"round-%d|" % round_number + previous
        value = await client.flip_coin("beacon-key", name)
        chain.append((round_number, name, value))
        print(f"round {round_number}: {value.hex()}")
        previous = value

    # --- uniqueness: re-evaluate a past round, must match exactly ------------
    replay_round, replay_name, original = chain[2]
    replayed = await client.flip_coin("beacon-key", replay_name)
    assert replayed == original
    print(f"\nround {replay_round} re-evaluated by a fresh quorum: identical ✓")

    # --- liveness under faults: a crashed node does not stop the beacon ------
    await nodes[-1].stop()
    await nodes[-2].stop()
    survivors = ThetacryptClient(
        {n.config.node_id: n.rpc_address for n in nodes[:-2]}
    )
    name = b"round-%d|" % (ROUNDS + 1) + previous
    value = await survivors.flip_coin("beacon-key", name)
    print(f"round {ROUNDS + 1} with 2 of 7 nodes down: {value.hex()} ✓")
    await survivors.close()

    # --- applications: unbiased dice for a blockchain game -------------------
    dice = value[0] % 6 + 1
    print(f"\nprovably fair dice roll from the beacon: {dice}")

    await client.close()
    for node in nodes[:-2]:
        await node.stop()


if __name__ == "__main__":
    asyncio.run(main())
