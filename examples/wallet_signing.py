#!/usr/bin/env python3
"""Threshold wallet key management with FROST (paper §2.3, KG20 §3.5).

A cryptocurrency custodian splits a wallet's Schnorr signing key across
signer nodes so no single machine can ever spend funds.  FROST's
precomputation phase runs during quiet periods; at spend time only one round
of interaction is needed, and the output is an ordinary Schnorr signature
the chain verifies as usual.

Run from the repository root:

    python3 examples/wallet_signing.py
"""

import asyncio
import time

from repro.network.local import LocalHub
from repro.schemes import generate_keys
from repro.schemes.kg20 import Kg20Signature, Kg20SignatureScheme
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs

PARTIES = 5
THRESHOLD = 2

WITHDRAWALS = [
    b"withdraw 0.5 BTC to bc1q-alice",
    b"withdraw 12 BTC to bc1q-treasury",
    b"withdraw 0.01 BTC to bc1q-coffee",
]


async def main() -> None:
    key_material = generate_keys("kg20", THRESHOLD, PARTIES)
    configs = make_local_configs(
        PARTIES, THRESHOLD, transport="local", rpc_base_port=0
    )
    hub = LocalHub(latency=lambda src, dst: 0.002)  # 2 ms data-center links
    nodes = []
    for config in configs:
        node = ThetacryptNode(config, transport=hub.endpoint(config.node_id))
        node.install_key(
            "wallet-key",
            key_material.scheme,
            key_material.public_key,
            key_material.share_for(config.node_id),
        )
        await node.start()
        nodes.append(node)
    client = ThetacryptClient({n.config.node_id: n.rpc_address for n in nodes})

    print(f"wallet online: FROST {THRESHOLD + 1}-of-{PARTIES}")
    print(f"wallet public key: {key_material.public_key.y.to_bytes().hex()[:32]}…\n")

    # --- cold path: two-round signing ----------------------------------------
    start = time.perf_counter()
    signature = await client.sign("wallet-key", WITHDRAWALS[0])
    two_round_ms = (time.perf_counter() - start) * 1000
    print(f"two-round signing: {two_round_ms:7.1f} ms  {WITHDRAWALS[0].decode()}")

    # --- hot path: precompute nonces during a quiet period --------------------
    await client.precompute("wallet-key", count=8)
    print("precomputed a batch of 8 nonce commitments\n")

    for withdrawal in WITHDRAWALS[1:]:
        start = time.perf_counter()
        signature = await client.sign("wallet-key", withdrawal)
        one_round_ms = (time.perf_counter() - start) * 1000
        print(f"one-round signing:  {one_round_ms:7.1f} ms  {withdrawal.decode()}")

    # --- the chain-side verifier needs no threshold machinery ----------------
    scheme = Kg20SignatureScheme()
    sig = Kg20Signature.from_bytes(signature, key_material.public_key.group)
    scheme.verify(key_material.public_key, WITHDRAWALS[-1], sig)
    print("\non-chain verifier accepts the plain Schnorr signature ✓")

    # g^z == R · Y^c — spell the equation out for the skeptical auditor.
    group = key_material.public_key.group
    c = scheme.challenge(group, sig.r, key_material.public_key.y, WITHDRAWALS[-1])
    assert group.generator() ** sig.z == sig.r * key_material.public_key.y**c
    print("Schnorr equation g^z = R·Y^c holds ✓")

    await client.close()
    for node in nodes:
        await node.stop()


if __name__ == "__main__":
    asyncio.run(main())
