#!/usr/bin/env python3
"""The full Fig. 1 deployment: Thetacrypt embedded in a blockchain network.

Four "machines", each hosting a blockchain validator and a Thetacrypt
instance in the same security domain.  The Θ instances have no network of
their own: their P2P traffic and TOB submissions ride the chain's networks
through the proxy modules (§3.6).  The application is the paper's flagship
use case — an encrypted mempool that defeats front-running (§2.3).

Run from the repository root:

    python3 examples/blockchain_integration.py
"""

import asyncio

from repro.chain import Transaction, ValidatorNode
from repro.network.local import LocalHub
from repro.network.proxy import P2PProxy, TobProxy
from repro.schemes import generate_keys, get_scheme
from repro.service import ThetacryptClient, ThetacryptNode, make_local_configs

PARTIES = 4
THRESHOLD = 1


async def main() -> None:
    # --- the host platform: a 4-validator blockchain -----------------------
    chain_hub = LocalHub(latency=lambda a, b: 0.001)
    key_material = generate_keys("sg02", THRESHOLD, PARTIES)

    theta_client: ThetacryptClient | None = None

    async def decryptor(ciphertext: bytes) -> bytes:
        assert theta_client is not None
        return await theta_client.decrypt("mempool", ciphertext)

    validators = [
        ValidatorNode(
            i,
            PARTIES,
            chain_hub.endpoint(i),
            decryptor=decryptor,
            bridge_host="127.0.0.1",
            bridge_port=0,
        )
        for i in range(1, PARTIES + 1)
    ]
    for validator in validators:
        await validator.start()
    print(f"chain online: {PARTIES} validators, round-robin ordering")

    # --- Θ attaches to each validator through the proxy modules -------------
    theta_nodes = []
    for config, validator in zip(
        make_local_configs(PARTIES, THRESHOLD, transport="local", rpc_base_port=0),
        validators,
    ):
        host, port = validator.bridge_address
        node = ThetacryptNode(
            config,
            transport=P2PProxy(config.node_id, host, port, peer_count=PARTIES),
            tob=TobProxy(config.node_id, host, port),
        )
        node.install_key(
            "mempool",
            key_material.scheme,
            key_material.public_key,
            key_material.share_for(config.node_id),
        )
        await node.start()
        theta_nodes.append(node)
    theta_client = ThetacryptClient(
        {t.config.node_id: t.rpc_address for t in theta_nodes}
    )
    print("Θ module attached to every validator via P2P/TOB proxies\n")

    # --- users submit ENCRYPTED transactions --------------------------------
    cipher = get_scheme("sg02")
    secret_commands = [
        b"mint whale 1000000",
        b"transfer whale dex 250000",  # the trade a front-runner wants to see
        b"transfer whale charity 100",
    ]
    for command in secret_commands:
        ciphertext = cipher.encrypt(key_material.public_key, command, b"").to_bytes()
        validators[0].submit_transaction(
            Transaction("user", ciphertext, encrypted=True)
        )
        print(f"mempool <- {len(ciphertext)} ciphertext bytes (plaintext hidden)")

    # What the adversary watching the mempool sees: ciphertexts only.
    assert all(b"whale" not in tx.payload for tx in validators[0].mempool)
    print("\nfront-runner inspecting the mempool learns nothing ✓")

    # --- the chain orders first, the Θ-network decrypts after ---------------
    await validators[0].propose()
    await asyncio.gather(*(v.await_height(1) for v in validators))
    print("\nblock 1 committed; transactions decrypted post-ordering:")
    for line in validators[0].state.applied:
        print(f"  executed: {line}")

    roots = {v.state_root().hex() for v in validators}
    assert len(roots) == 1
    print(f"\nall replicas agree, state root {roots.pop()[:16]}…")
    balances = validators[0].state.balances
    assert balances == {"whale": 749900, "dex": 250000, "charity": 100}
    print(f"balances: {balances}")

    await theta_client.close()
    for node in theta_nodes:
        await node.stop()
    for validator in validators:
        await validator.stop()


if __name__ == "__main__":
    asyncio.run(main())
