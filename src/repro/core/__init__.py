"""Core layer: protocol logic (TRI), orchestration, and key management.

This is "the main part of Thetacrypt" (§3.5): it connects the cryptographic
primitives of :mod:`repro.schemes` with the network layer, strictly
separating local computation (schemes) from inter-node coordination
(protocols + orchestration).
"""

from .tri import ThresholdRoundProtocol
from .messages import Channel, ProtocolMessage

__all__ = ["ThresholdRoundProtocol", "Channel", "ProtocolMessage"]
