"""Protocol messages exchanged between Thetacrypt instances.

Every message produced by :meth:`ThresholdRoundProtocol.do_round` "indicates
whether it is to be transported to other parties using P2P communication or
broadcast to all using TOB" (§3.5) — that is the :class:`Channel` flag.
Directed messages (``recipient`` set) support protocols like DKG whose
sub-shares are addressed to a single party.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SerializationError
from ..serialization import Reader, encode_bytes, encode_int, encode_str


class Channel(enum.Enum):
    """Transport requested by the protocol for a message."""

    P2P = "p2p"
    TOB = "tob"


@dataclass(frozen=True)
class ProtocolMessage:
    """One unit of protocol communication.

    ``instance_id`` routes the message to the right protocol instance on the
    receiving node; ``round`` lets receivers buffer early messages;
    ``recipient`` of ``0`` means "all peers".  ``trace_id`` carries the
    sender's telemetry trace across the wire (empty when the sender traced
    nothing), letting the receiver attribute the hop to the peer trace.
    """

    instance_id: str
    sender: int
    round: int
    channel: Channel
    payload: bytes
    recipient: int = 0  # 0 = broadcast to all parties
    trace_id: str = ""  # telemetry correlation id ("" = untraced)

    def is_directed(self) -> bool:
        return self.recipient != 0

    def to_bytes(self) -> bytes:
        return (
            encode_str(self.instance_id)
            + encode_int(self.sender)
            + encode_int(self.round)
            + encode_str(self.channel.value)
            + encode_bytes(self.payload)
            + encode_int(self.recipient)
            + encode_str(self.trace_id)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "ProtocolMessage":
        reader = Reader(data)
        instance_id = reader.read_str()
        sender = reader.read_int()
        round_number = reader.read_int()
        channel_name = reader.read_str()
        payload = reader.read_bytes()
        recipient = reader.read_int()
        trace_id = reader.read_str()
        reader.finish()
        try:
            channel = Channel(channel_name)
        except ValueError as exc:
            raise SerializationError(f"unknown channel {channel_name!r}") from exc
        return ProtocolMessage(
            instance_id, sender, round_number, channel, payload, recipient, trace_id
        )
