"""The Threshold Round Interface (TRI).

The paper's central abstraction (§3.5): every threshold protocol — whatever
its number of rounds — is a state machine driven by exactly five functions.
A *round* is "the local computation performed by one party in response to
receiving a message over the network until the party produces a result or a
message that may be sent to other parties".

The :class:`~repro.core.orchestration.executor.ProtocolExecutor` drives any
implementation of this interface without knowing the scheme behind it; this
is what lets new protocols plug in without touching the management code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ProtocolError
from .messages import ProtocolMessage


class ThresholdRoundProtocol(ABC):
    """State machine of one protocol instance at one party."""

    #: Globally unique identifier of the protocol instance; all parties
    #: derive the same id for the same request so messages route correctly.
    instance_id: str
    #: This party's 1-based id.
    party_id: int

    def __init__(self, instance_id: str, party_id: int):
        self.instance_id = instance_id
        self.party_id = party_id
        self.round = 0
        self._finalized = False

    @abstractmethod
    def do_round(self) -> list[ProtocolMessage]:
        """Perform the local computation of the current round.

        Returns the protocol messages to forward to the other parties (each
        tagged with its transport channel).  Called once at protocol start
        and once more each time :meth:`is_ready_for_next_round` fires.
        """

    @abstractmethod
    def update(self, message: ProtocolMessage) -> None:
        """Record a message received from the network and update state.

        Invalid messages (bad proofs, bogus shares) must be rejected here by
        raising a :class:`~repro.errors.CryptoError` subclass; the executor
        logs and drops them so a faulty party cannot stall a robust scheme.
        """

    @abstractmethod
    def is_ready_for_next_round(self) -> bool:
        """True when enough valid messages arrived to advance a round."""

    @abstractmethod
    def is_ready_to_finalize(self) -> bool:
        """True when the termination condition holds."""

    @abstractmethod
    def finalize(self) -> bytes:
        """Compute the final result locally (e.g. assemble partial shares)."""

    def progress(self) -> tuple[int, int] | None:
        """(collected, needed) for the current round, or None if unknown.

        Optional: lets the executor classify a timeout as
        ``insufficient_shares`` (quorum never formed) versus a plain
        ``timeout`` (stalled despite apparent progress).
        """
        return None

    # -- optional worker-pool offload hooks ----------------------------------
    #
    # A protocol that can describe its hot crypto as pickle-safe worker
    # tasks (see repro.workers) overrides these; the executor then runs
    # do_round's computation and share verification in a CryptoPool worker
    # instead of blocking the event loop.  The defaults keep every
    # protocol correct with the pool disabled or absent.

    @property
    def supports_offload(self) -> bool:
        """True when this protocol provides offload task descriptions."""
        return False

    def offload_round(self) -> tuple[str, object, tuple] | None:
        """``(op_name, task_fn, args)`` computing this round's crypto in a
        worker, or None to run :meth:`do_round` inline."""
        return None

    def apply_round(self, result) -> list[ProtocolMessage]:
        """Fold a worker-computed :meth:`offload_round` result into local
        state, returning the messages :meth:`do_round` would have sent."""
        raise ProtocolError(
            f"instance {self.instance_id}: protocol does not offload rounds"
        )

    def offload_verify(self, payloads: list[bytes]) -> tuple[str, object, tuple] | None:
        """``(op_name, task_fn, args)`` batch-verifying peer payloads in a
        worker (returning per-index verdicts), or None to verify inline."""
        return None

    def admit_verified(self, payload: bytes) -> None:
        """Store a peer payload whose cryptographic checks already ran in
        a worker; decode and duplicate policing still happen locally."""
        raise ProtocolError(
            f"instance {self.instance_id}: protocol does not offload verification"
        )

    # -- optional precompute hooks -------------------------------------------
    #
    # A protocol whose first round can be materialized ahead of the request
    # (a presignature, a decryption share for an announced ciphertext, a
    # FROST nonce/commitment set) overrides these; the node stages the
    # pooled entry on the protocol at submission time and the executor
    # consumes it instead of computing round 0.  The defaults keep every
    # protocol on the on-demand path.

    @property
    def supports_precompute(self) -> bool:
        """True when this protocol accepts pre-staged round material."""
        return False

    def stage_precomputed(self, entry) -> None:
        """Install a pooled entry (shape is protocol-specific) before run().

        Must be called at most once, before the first round ran; the entry
        is consumed exactly once by :meth:`consume_precomputed`.
        """
        raise ProtocolError(
            f"instance {self.instance_id}: protocol does not precompute"
        )

    def consume_precomputed(self) -> list[ProtocolMessage] | None:
        """Fold the staged entry into local state and return the messages
        the precomputed round would have sent, or None to fall back to the
        on-demand :meth:`do_round` path (nothing staged, or already run)."""
        return None

    # -- shared bookkeeping --------------------------------------------------

    def advance_round(self) -> None:
        """Move to the next round (executor bookkeeping)."""
        self.round += 1

    def mark_finalized(self) -> None:
        if self._finalized:
            raise ProtocolError(f"instance {self.instance_id} finalized twice")
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized
