"""Protocol implementations against the Threshold Round Interface.

* :mod:`noninteractive` — the generic one-round protocol covering the five
  non-interactive schemes (partial result → t+1 valid shares → combine);
* :mod:`frost` — the two-round KG20/FROST signing protocol (with the
  optional precomputation mode);
* :mod:`dkg_protocol` — distributed key generation as a TRI protocol.
"""

from .operations import OperationRequest, make_operation
from .noninteractive import NonInteractiveProtocol
from .frost import FrostProtocol, FrostPrecomputationPool, FrostPrecomputeProtocol
from .dkg_protocol import DkgProtocol
from .reshare_protocol import ReshareProtocol

__all__ = [
    "OperationRequest",
    "make_operation",
    "NonInteractiveProtocol",
    "FrostProtocol",
    "FrostPrecomputationPool",
    "FrostPrecomputeProtocol",
    "DkgProtocol",
    "ReshareProtocol",
]
