"""Proactive share refresh as a TRI protocol.

Runs :mod:`repro.schemes.resharing` over the network layer: the first t+1
nodes act as dealers, re-sharing their Lagrange-weighted key shares with
Feldman commitments; sub-shares travel in directed P2P messages.  When all
deals arrived, every node holds a brand-new share of the *same* secret —
the group public key is untouched, old shares become useless.

One round, directed messages, same shape as :class:`DkgProtocol`.
"""

from __future__ import annotations

from ...errors import ProtocolError
from ...groups.base import Group
from ...schemes.resharing import (
    ReshareDeal,
    ReshareResult,
    reshare_deal,
    reshare_finalize,
)
from ...serialization import Reader, encode_bytes, encode_int
from ...sharing.feldman import FeldmanCommitment
from ...sharing.shamir import ShamirShare
from ..messages import Channel, ProtocolMessage
from ..tri import ThresholdRoundProtocol


def _encode_deal_for(deal: ReshareDeal, recipient: int) -> bytes:
    body = encode_int(deal.dealer_id)
    body += encode_int(len(deal.commitment.commitments))
    for commitment in deal.commitment.commitments:
        body += encode_bytes(commitment.to_bytes())
    share = deal.sub_shares[recipient]
    body += encode_int(share.id) + encode_int(share.value)
    return body


def _decode_deal(
    data: bytes, group: Group, recipient: int
) -> ReshareDeal:
    reader = Reader(data)
    dealer_id = reader.read_int()
    count = reader.read_int()
    commitments = tuple(
        group.element_from_bytes(reader.read_bytes()) for _ in range(count)
    )
    share = ShamirShare(reader.read_int(), reader.read_int())
    reader.finish()
    if share.id != recipient:
        raise ProtocolError("reshare sub-share addressed to another party")
    return ReshareDeal(dealer_id, FeldmanCommitment(commitments), {recipient: share})


class ReshareProtocol(ThresholdRoundProtocol):
    """One node's view of a proactive refresh of an installed key."""

    def __init__(
        self,
        instance_id: str,
        party_id: int,
        threshold: int,
        parties: int,
        group: Group,
        current_share_value: int,
        channel: Channel = Channel.P2P,
    ):
        super().__init__(instance_id, party_id)
        self._threshold = threshold
        self._parties = parties
        self._group = group
        self._share_value = current_share_value
        self._channel = channel
        # Deterministic dealer quorum: the first t+1 party ids.
        self._dealers = tuple(range(1, threshold + 2))
        self._deals: dict[int, ReshareDeal] = {}
        self._result: ReshareResult | None = None
        self._started = False

    @property
    def is_dealer(self) -> bool:
        return self.party_id in self._dealers

    def do_round(self) -> list[ProtocolMessage]:
        if self._started:
            raise ProtocolError("reshare deals once")
        self._started = True
        if not self.is_dealer:
            return []
        deal = reshare_deal(
            self.party_id,
            self._share_value,
            self._dealers,
            self._threshold,
            self._parties,
            self._group,
        )
        self._deals[self.party_id] = deal
        messages = []
        for recipient in range(1, self._parties + 1):
            if recipient == self.party_id:
                continue
            messages.append(
                ProtocolMessage(
                    self.instance_id,
                    self.party_id,
                    round=0,
                    channel=self._channel,
                    payload=_encode_deal_for(deal, recipient),
                    recipient=recipient,
                )
            )
        return messages

    def update(self, message: ProtocolMessage) -> None:
        if message.sender == self.party_id:
            return
        deal = _decode_deal(message.payload, self._group, self.party_id)
        if deal.dealer_id != message.sender:
            raise ProtocolError(
                f"deal claims dealer {deal.dealer_id}, sender is {message.sender}"
            )
        if deal.dealer_id not in self._dealers:
            raise ProtocolError(f"party {deal.dealer_id} is not a refresh dealer")
        self._deals[deal.dealer_id] = deal

    def is_ready_for_next_round(self) -> bool:
        return False

    def is_ready_to_finalize(self) -> bool:
        return self._started and set(self._deals) >= set(self._dealers)

    def finalize(self) -> bytes:
        if not self.is_ready_to_finalize():
            raise ProtocolError("refresh finalize before all deals arrived")
        self._result = reshare_finalize(
            self.party_id, self._deals, self._dealers, self._parties, self._group
        )
        self.mark_finalized()
        return self._result.group_key.to_bytes()

    @property
    def result(self) -> ReshareResult:
        if self._result is None:
            raise ProtocolError("refresh not finalized yet")
        return self._result
