"""The generic one-round protocol for non-interactive threshold schemes.

All five non-interactive schemes (SG02, BZ03, SH00, BLS04, CKS05) follow the
same pattern: in the single round each party computes its partial result and
sends it to every peer over P2P; upon collecting t+1 valid partial results
(its own included) each party finalizes by combining them locally.  The
scheme specifics live entirely in the :class:`ShareOperation` adapter.
"""

from __future__ import annotations

from ...errors import ProtocolError
from ..messages import Channel, ProtocolMessage
from ..tri import ThresholdRoundProtocol
from .operations import ShareOperation


class NonInteractiveProtocol(ThresholdRoundProtocol):
    """TRI wrapper around a single :class:`ShareOperation`."""

    def __init__(
        self,
        instance_id: str,
        party_id: int,
        operation: ShareOperation,
        channel: Channel = Channel.P2P,
    ):
        super().__init__(instance_id, party_id)
        self._operation = operation
        self._channel = channel
        self._started = False
        self._precomputed: bytes | None = None

    def do_round(self) -> list[ProtocolMessage]:
        if self._started:
            raise ProtocolError(
                f"instance {self.instance_id}: non-interactive protocol "
                "has a single round"
            )
        self._started = True
        payload = self._operation.create_own_share()
        return [
            ProtocolMessage(
                instance_id=self.instance_id,
                sender=self.party_id,
                round=0,
                channel=self._channel,
                payload=payload,
            )
        ]

    def update(self, message: ProtocolMessage) -> None:
        if message.sender == self.party_id:
            return  # our own broadcast echoed back
        self._operation.accept_share(message.payload)

    # -- worker-pool offload (repro.workers) ---------------------------------
    #
    # The one-round protocol is the ideal offload target: its round is a
    # single share creation and its updates are pure share verifications,
    # both stateless given the operation spec.  The imports are lazy so
    # that core.protocols never needs repro.workers unless a pool exists.

    @property
    def supports_offload(self) -> bool:
        return self._operation.offload_spec() is not None

    def offload_round(self):
        if self._started:
            return None
        spec = self._operation.offload_spec(include_share=True)
        if spec is None:
            return None
        from ...workers import tasks

        return (f"{spec['scheme']}:create_share", tasks.create_share, (spec,))

    def apply_round(self, payload: bytes) -> list[ProtocolMessage]:
        if self._started:
            raise ProtocolError(
                f"instance {self.instance_id}: non-interactive protocol "
                "has a single round"
            )
        self._started = True
        self._operation.admit_own(payload)
        return [
            ProtocolMessage(
                instance_id=self.instance_id,
                sender=self.party_id,
                round=0,
                channel=self._channel,
                payload=payload,
            )
        ]

    # -- precompute pipeline (repro.core.orchestration.precompute) -----------
    #
    # The single round is a pure function of the request, so its payload
    # can be created ahead of demand and staged here; consuming it is
    # exactly the offload apply path (admit the pre-made own share and
    # broadcast it), with zero crypto at request time.

    @property
    def supports_precompute(self) -> bool:
        return True

    def stage_precomputed(self, entry) -> None:
        if self._started:
            raise ProtocolError(
                f"instance {self.instance_id}: cannot stage a precomputed "
                "share after the round ran"
            )
        self._precomputed = bytes(entry)

    def consume_precomputed(self) -> list[ProtocolMessage] | None:
        if self._precomputed is None or self._started:
            return None
        payload, self._precomputed = self._precomputed, None
        return self.apply_round(payload)

    def offload_verify(self, payloads: list[bytes]):
        spec = self._operation.offload_spec()
        if spec is None:
            return None
        from ...workers import tasks

        return (
            f"{spec['scheme']}:verify_shares",
            tasks.verify_shares,
            (spec, list(payloads)),
        )

    def admit_verified(self, payload: bytes) -> None:
        self._operation.admit_verified(payload)

    def is_ready_for_next_round(self) -> bool:
        return False  # single-round protocol

    def progress(self) -> tuple[int, int]:
        return (
            self._operation.share_count,
            self._operation.threshold + 1,
        )

    def is_ready_to_finalize(self) -> bool:
        return self._started and self._operation.have_quorum

    def finalize(self) -> bytes:
        if not self.is_ready_to_finalize():
            raise ProtocolError(
                f"instance {self.instance_id}: finalize before quorum "
                f"({self._operation.share_count}/{self._operation.threshold + 1})"
            )
        self.mark_finalized()
        return self._operation.combine()
