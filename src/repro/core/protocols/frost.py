"""FROST (KG20) as a two-round TRI protocol.

"FROST is the first multi-round protocol to have been implemented in
Thetacrypt, and served as a model and test case for the proposed design"
(§3.5).  Round 0 exchanges nonce commitments; round 1 exchanges signature
shares.  Following the paper's evaluation semantics, the signing group is
the whole Θ-network and both rounds wait for *all* members (which is what
gives KG20 its distinctive fairness profile in Table 4).

The precomputation mode of the paper is supported through
:class:`FrostPrecomputationPool`: a batch of commitment lists exchanged in
advance (via :class:`FrostPrecomputeProtocol`) lets the signing protocol
start directly in round 1, needing a single round of interaction online.
"""

from __future__ import annotations

from collections import deque

from ...errors import ProtocolAbortedError, ProtocolError
from ...schemes import kg20
from ..messages import Channel, ProtocolMessage
from ..tri import ThresholdRoundProtocol


class FrostPrecomputationPool:
    """Per-node store of precomputed nonces and everyone's commitments.

    Entries are consumed in FIFO order; all nodes must consume in the same
    request order for indices to line up, which holds when signing requests
    are ordered by the TOB channel (documented requirement, as in FROST's
    batch preprocessing).
    """

    def __init__(self) -> None:
        self._own: deque[kg20.NoncePair] = deque()
        self._commitment_lists: deque[list[kg20.NonceCommitment]] = deque()

    def add_batch(
        self,
        own_nonces: list[kg20.NoncePair],
        commitment_lists: list[list[kg20.NonceCommitment]],
    ) -> None:
        if len(own_nonces) != len(commitment_lists):
            raise ProtocolError("nonce/commitment batch length mismatch")
        self._own.extend(own_nonces)
        self._commitment_lists.extend(commitment_lists)

    def pop(self) -> tuple[kg20.NoncePair, list[kg20.NonceCommitment]]:
        if not self._own:
            raise ProtocolError("precomputation pool exhausted")
        return self._own.popleft(), self._commitment_lists.popleft()

    @property
    def available(self) -> int:
        return len(self._own)


class FrostProtocol(ThresholdRoundProtocol):
    """One FROST signing run at one party."""

    def __init__(
        self,
        instance_id: str,
        key_share: kg20.Kg20KeyShare,
        message: bytes,
        channel: Channel = Channel.P2P,
        pool: FrostPrecomputationPool | None = None,
    ):
        super().__init__(instance_id, key_share.id)
        self._scheme = kg20.Kg20SignatureScheme()
        self._key_share = key_share
        self._message = message
        self._channel = channel
        self._parties = key_share.public.parties
        self._nonce: kg20.NoncePair | None = None
        self._commitments: dict[int, kg20.NonceCommitment] = {}
        self._share_payloads: dict[int, bytes] = {}
        self._own_share: kg20.Kg20SignatureShare | None = None
        self._signing_round_done = False
        if pool is not None and pool.available:
            # Precomputed mode: commitments already agreed, skip round 0.
            self.stage_precomputed(pool.pop())

    # -- precompute hooks (repro.core.orchestration.precompute) --------------

    @property
    def supports_precompute(self) -> bool:
        return True

    def stage_precomputed(self, entry) -> None:
        """Install a pooled ``(NoncePair, [NonceCommitment])`` set.

        The commitments were agreed by a prior preprocessing round, so the
        signing protocol starts directly in round 1 (one online round).
        """
        if self.round != 0 or self._signing_round_done:
            raise ProtocolError(
                f"instance {self.instance_id}: cannot stage nonces after "
                "round 0 ran"
            )
        nonce, commitment_list = entry
        self._nonce = nonce
        self._commitments = {c.id: c for c in commitment_list}
        self.round = 1

    def consume_precomputed(self) -> list[ProtocolMessage] | None:
        if self.round != 1 or self._signing_round_done or self._nonce is None:
            return None
        return self.do_round()

    # -- TRI implementation --------------------------------------------------

    def do_round(self) -> list[ProtocolMessage]:
        if self.round == 0:
            self._nonce, own_commitment = self._scheme.commit(self._key_share)
            self._commitments[self.party_id] = own_commitment
            return [
                ProtocolMessage(
                    self.instance_id,
                    self.party_id,
                    round=0,
                    channel=self._channel,
                    payload=own_commitment.to_bytes(),
                )
            ]
        if self.round == 1 and not self._signing_round_done:
            self._signing_round_done = True
            commitment_list = list(self._commitments.values())
            self._own_share = self._scheme.sign_round(
                self._key_share, self._message, self._nonce, commitment_list
            )
            self._share_payloads[self.party_id] = self._own_share.to_bytes()
            return [
                ProtocolMessage(
                    self.instance_id,
                    self.party_id,
                    round=1,
                    channel=self._channel,
                    payload=self._own_share.to_bytes(),
                )
            ]
        raise ProtocolError(f"FROST has no round {self.round}")

    def update(self, message: ProtocolMessage) -> None:
        if message.sender == self.party_id:
            return
        if message.round == 0:
            commitment = kg20.NonceCommitment.from_bytes(
                message.payload, self._key_share.public.group
            )
            if commitment.id != message.sender:
                raise ProtocolAbortedError(
                    f"commitment id {commitment.id} does not match "
                    f"sender {message.sender}"
                )
            self._commitments[commitment.id] = commitment
        elif message.round == 1:
            # Stored raw and verified at finalize so that late round-0 state
            # does not block buffering; FROST is not robust anyway.
            self._share_payloads[message.sender] = message.payload
        else:
            raise ProtocolError(f"unexpected FROST round {message.round}")

    def is_ready_for_next_round(self) -> bool:
        return (
            self.round == 0
            and not self._signing_round_done
            and len(self._commitments) == self._parties
        )

    def is_ready_to_finalize(self) -> bool:
        return (
            self._signing_round_done
            and len(self._share_payloads) == self._parties
        )

    def progress(self) -> tuple[int, int]:
        if self.round == 0:
            return len(self._commitments), self._parties
        return len(self._share_payloads), self._parties

    def finalize(self) -> bytes:
        if not self.is_ready_to_finalize():
            raise ProtocolError("FROST finalize before all shares arrived")
        public_key = self._key_share.public
        commitment_list = list(self._commitments.values())
        shares = []
        for sender, payload in sorted(self._share_payloads.items()):
            share = kg20.Kg20SignatureShare.from_bytes(payload)
            if share.id != sender:
                raise ProtocolAbortedError(
                    f"share id {share.id} does not match sender {sender}"
                )
            if sender != self.party_id:
                # Identify deviating parties: FROST aborts but names them.
                self._scheme.verify_signature_share(
                    public_key, self._message, share, commitment_list
                )
            shares.append(share)
        signature = self._scheme.combine(
            public_key, self._message, shares, commitment_list
        )
        self.mark_finalized()
        return signature.to_bytes()


class FrostPrecomputeProtocol(ThresholdRoundProtocol):
    """One-round batch exchange of nonce commitments (FROST preprocessing).

    Each party broadcasts ``batch_size`` commitments; once everyone's batch
    arrived, finalize() fills the supplied pool and returns the batch size.
    """

    def __init__(
        self,
        instance_id: str,
        key_share: kg20.Kg20KeyShare,
        batch_size: int,
        pool: FrostPrecomputationPool,
        channel: Channel = Channel.P2P,
    ):
        super().__init__(instance_id, key_share.id)
        self._scheme = kg20.Kg20SignatureScheme()
        self._key_share = key_share
        self._batch_size = batch_size
        self._pool = pool
        self._channel = channel
        self._parties = key_share.public.parties
        self._own: list[tuple[kg20.NoncePair, kg20.NonceCommitment]] = []
        self._batches: dict[int, list[kg20.NonceCommitment]] = {}
        self._started = False

    def do_round(self) -> list[ProtocolMessage]:
        if self._started:
            raise ProtocolError("precompute protocol has a single round")
        self._started = True
        self._own = self._scheme.precompute(self._key_share, self._batch_size)
        self._batches[self.party_id] = [c for _, c in self._own]
        payload = b"".join(
            len(c.to_bytes()).to_bytes(4, "big") + c.to_bytes()
            for _, c in self._own
        )
        return [
            ProtocolMessage(
                self.instance_id, self.party_id, 0, self._channel, payload
            )
        ]

    def update(self, message: ProtocolMessage) -> None:
        if message.sender == self.party_id:
            return
        batch = []
        data = message.payload
        offset = 0
        group = self._key_share.public.group
        while offset < len(data):
            length = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
            batch.append(
                kg20.NonceCommitment.from_bytes(data[offset : offset + length], group)
            )
            offset += length
        if len(batch) != self._batch_size:
            raise ProtocolAbortedError(
                f"party {message.sender} sent a batch of {len(batch)}, "
                f"expected {self._batch_size}"
            )
        self._batches[message.sender] = batch

    def is_ready_for_next_round(self) -> bool:
        return False

    def is_ready_to_finalize(self) -> bool:
        return self._started and len(self._batches) == self._parties

    def finalize(self) -> bytes:
        if not self.is_ready_to_finalize():
            raise ProtocolError("precompute finalize before all batches arrived")
        commitment_lists = []
        for index in range(self._batch_size):
            commitment_lists.append(
                [self._batches[party][index] for party in sorted(self._batches)]
            )
        self._pool.add_batch([n for n, _ in self._own], commitment_lists)
        self.mark_finalized()
        return self._batch_size.to_bytes(4, "big")
