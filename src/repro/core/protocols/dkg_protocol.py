"""Distributed key generation as a (multi-message) TRI protocol.

Each party deals a random secret: the Feldman commitments are broadcast and
every sub-share travels in a *directed* P2P message to its recipient.  Once
deals from all parties arrived, each party finalizes locally per
:func:`repro.schemes.dkg.finalize`.  A dealer whose sub-share fails the VSS
check is disqualified there; the run aborts only if fewer than t+1 dealers
remain.
"""

from __future__ import annotations

from ...errors import ProtocolError
from ...groups.base import Group
from ...schemes.dkg import DkgDeal, DkgResult, deal, finalize
from ...serialization import Reader, encode_bytes, encode_int
from ...sharing.feldman import FeldmanCommitment
from ...sharing.shamir import ShamirShare
from ..messages import Channel, ProtocolMessage
from ..tri import ThresholdRoundProtocol


def _encode_deal_for(deal_: DkgDeal, recipient: int) -> bytes:
    body = encode_int(deal_.dealer_id)
    body += encode_int(len(deal_.commitment.commitments))
    for commitment in deal_.commitment.commitments:
        body += encode_bytes(commitment.to_bytes())
    share = deal_.sub_shares[recipient]
    body += encode_int(share.id) + encode_int(share.value)
    return body


def _decode_deal(data: bytes, group: Group) -> tuple[int, FeldmanCommitment, ShamirShare]:
    reader = Reader(data)
    dealer_id = reader.read_int()
    count = reader.read_int()
    commitments = tuple(
        group.element_from_bytes(reader.read_bytes()) for _ in range(count)
    )
    share = ShamirShare(reader.read_int(), reader.read_int())
    reader.finish()
    return dealer_id, FeldmanCommitment(commitments), share


class DkgProtocol(ThresholdRoundProtocol):
    """Joint-Feldman DKG at one party."""

    def __init__(
        self,
        instance_id: str,
        party_id: int,
        threshold: int,
        parties: int,
        group: Group,
        channel: Channel = Channel.P2P,
    ):
        super().__init__(instance_id, party_id)
        self._threshold = threshold
        self._parties = parties
        self._group = group
        self._channel = channel
        self._own_deal: DkgDeal | None = None
        self._received: dict[int, DkgDeal] = {}
        self._result: DkgResult | None = None
        self._started = False

    def do_round(self) -> list[ProtocolMessage]:
        if self._started:
            raise ProtocolError("DKG deals once")
        self._started = True
        self._own_deal = deal(self.party_id, self._threshold, self._parties, self._group)
        self._received[self.party_id] = self._own_deal
        messages = []
        for recipient in range(1, self._parties + 1):
            if recipient == self.party_id:
                continue
            messages.append(
                ProtocolMessage(
                    self.instance_id,
                    self.party_id,
                    round=0,
                    channel=self._channel,
                    payload=_encode_deal_for(self._own_deal, recipient),
                    recipient=recipient,
                )
            )
        return messages

    def update(self, message: ProtocolMessage) -> None:
        if message.sender == self.party_id:
            return
        dealer_id, commitment, share = _decode_deal(message.payload, self._group)
        if dealer_id != message.sender:
            raise ProtocolError(
                f"deal claims dealer {dealer_id} but came from {message.sender}"
            )
        if share.id != self.party_id:
            raise ProtocolError("received a sub-share addressed to another party")
        # Reconstruct a single-recipient view of the deal for finalize().
        self._received[dealer_id] = DkgDeal(
            dealer_id, commitment, {self.party_id: share}
        )

    def is_ready_for_next_round(self) -> bool:
        return False

    def is_ready_to_finalize(self) -> bool:
        return self._started and len(self._received) == self._parties

    def finalize(self) -> bytes:
        if not self.is_ready_to_finalize():
            raise ProtocolError("DKG finalize before all deals arrived")
        self._result = finalize(
            self.party_id, self._threshold, self._parties, self._group, self._received
        )
        self.mark_finalized()
        return self._result.group_key.to_bytes()

    @property
    def result(self) -> DkgResult:
        if self._result is None:
            raise ProtocolError("DKG not finalized yet")
        return self._result
