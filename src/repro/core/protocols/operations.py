"""Scheme adapters: the bridge between the protocols and schemes modules.

A :class:`ShareOperation` gives the generic one-round protocol a uniform
view of "make my partial result / verify and store a peer's partial result /
combine", hiding whether the underlying operation is a decryption, a
signature, or a coin toss.  Adding a scheme to the suite means adding an
adapter here — the protocol module "will automatically support the new
scheme" (§3.5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ...errors import (
    ConfigurationError,
    DuplicateShareError,
    InvalidShareError,
    ThetacryptError,
)
from ...schemes import bls04, bz03, cks05, sg02, sh00
from ...schemes.base import (
    ThresholdCipher,
    ThresholdCoin,
    ThresholdSignature,
    get_scheme,
)
from ...schemes.keystore import export_key_share, export_public_key
from ...workers.blobs import register_export


@dataclass(frozen=True)
class OperationRequest:
    """What the application asked for, scheme-agnostically.

    ``kind`` is one of ``decrypt``, ``sign``, ``coin``; ``data`` is the
    ciphertext / message / coin name respectively.
    """

    kind: str
    data: bytes
    label: bytes = b""


class ShareOperation(ABC):
    """One threshold operation in progress at one party."""

    def __init__(self, threshold: int, party_id: int):
        self.threshold = threshold
        self.party_id = party_id
        self._shares: dict[int, object] = {}
        # offload_spec() memo, keyed by include_share.  Everything the spec
        # derives from (keys, request bytes) is fixed at construction, and
        # the executor consults the spec per admitted message — without the
        # memo a decrypt instance would re-serialize its ciphertext on
        # every share.
        self._spec_cache: dict[bool, dict | None] = {}

    @abstractmethod
    def create_own_share(self) -> bytes:
        """Compute this party's partial result, store it, and serialize it."""

    @abstractmethod
    def _decode(self, payload: bytes) -> object:
        """Decode a peer's serialized share (no cryptographic checks)."""

    @abstractmethod
    def _verify_decoded(self, share: object) -> None:
        """Verify a decoded share (raising CryptoError if bad)."""

    @abstractmethod
    def combine(self) -> bytes:
        """Assemble the stored shares into the final serialized result."""

    def _deserialize_and_verify(self, payload: bytes) -> object:
        """Decode a peer's share and verify it (raising CryptoError if bad)."""
        share = self._decode(payload)
        self._verify_decoded(share)
        return share

    def accept_share(self, payload: bytes) -> None:
        """Verify and store a peer's partial result.

        Rejection is total: a byzantine peer controls every payload byte,
        so decode errors of any flavour (not just the library's own) are
        normalised to :class:`InvalidShareError` — the executor drops the
        share and the aggregate is never poisoned.
        """
        try:
            share = self._deserialize_and_verify(payload)
        except ThetacryptError:
            raise
        except Exception as exc:  # noqa: BLE001 - arbitrary bytes, arbitrary errors
            raise InvalidShareError(f"malformed share payload: {exc}") from exc
        if share.id in self._shares:
            raise DuplicateShareError(f"duplicate share from party {share.id}")
        self._shares[share.id] = share

    def admit_verified(self, payload: bytes) -> None:
        """Store a share whose cryptographic validity a pool worker already
        established.  Decode errors and duplicates are still policed here —
        they are local-state questions, not crypto ones — so a worker
        verdict can never bypass them.
        """
        try:
            share = self._decode(payload)
        except ThetacryptError:
            raise
        except Exception as exc:  # noqa: BLE001 - arbitrary bytes, arbitrary errors
            raise InvalidShareError(f"malformed share payload: {exc}") from exc
        if share.id in self._shares:
            raise DuplicateShareError(f"duplicate share from party {share.id}")
        self._shares[share.id] = share

    def admit_own(self, payload: bytes) -> None:
        """Store this party's own share from its worker-serialized payload."""
        self._store_own(self._decode(payload))

    def offload_spec(self, include_share: bool = False) -> dict | None:
        """Pickle-safe description for :mod:`repro.workers.tasks`.

        The spec re-creates this operation inside a worker process from
        primitives alone; ``include_share`` adds the exported key share
        (needed by ``create_share``, not by ``verify_shares``).  None
        means the adapter has no worker tasks and must stay inline.

        Key material is referenced by content digest, not carried inline:
        the export blob is serialized once per key object (memoized by
        :func:`repro.workers.blobs.register_export`), parked in the
        parent-side blob store, and shipped to each worker at most once —
        at spawn time or on a cache-miss retry.

        The result is memoized per ``include_share`` (callers must not
        mutate it): the executor asks for the spec on every admission
        cycle, and rebuilding it would re-serialize the request each time.
        """
        if include_share in self._spec_cache:
            return self._spec_cache[include_share]
        spec = self._build_spec(include_share)
        self._spec_cache[include_share] = spec
        return spec

    def _build_spec(self, include_share: bool) -> dict | None:
        kind_data = self._request_tuple()
        if kind_data is None:
            return None
        kind, data = kind_data
        scheme_name = self._scheme.name
        spec = {
            "scheme": scheme_name,
            "public_digest": register_export(
                "public",
                scheme_name,
                self._public_key,
                lambda: export_public_key(scheme_name, self._public_key),
            ),
            "kind": kind,
            "data": data,
        }
        if include_share:
            spec["share_digest"] = register_export(
                "share",
                scheme_name,
                self._key_share,
                lambda: export_key_share(scheme_name, self._key_share),
            )
        return spec

    def _request_tuple(self) -> tuple[str, bytes] | None:
        """(kind, request bytes) for the offload spec; None = no offload."""
        return None

    def _store_own(self, share: object) -> None:
        self._shares[share.id] = share

    @property
    def share_count(self) -> int:
        return len(self._shares)

    @property
    def have_quorum(self) -> bool:
        return self.share_count >= self.threshold + 1


class DecryptOperation(ShareOperation):
    """Threshold decryption for SG02 and BZ03."""

    def __init__(
        self,
        scheme: ThresholdCipher,
        public_key,
        key_share,
        ciphertext,
    ):
        super().__init__(public_key.threshold, key_share.id)
        self._scheme = scheme
        self._public_key = public_key
        self._key_share = key_share
        self._ciphertext = ciphertext

    def create_own_share(self) -> bytes:
        share = self._scheme.create_decryption_share(self._key_share, self._ciphertext)
        self._store_own(share)
        return share.to_bytes()

    def _decode(self, payload: bytes):
        if isinstance(self._scheme, sg02.Sg02Cipher):
            return sg02.Sg02DecryptionShare.from_bytes(
                payload, self._public_key.group
            )
        return bz03.Bz03DecryptionShare.from_bytes(payload)

    def _verify_decoded(self, share) -> None:
        self._scheme.verify_decryption_share(self._public_key, self._ciphertext, share)

    def _request_tuple(self) -> tuple[str, bytes]:
        return "decrypt", self._ciphertext.to_bytes()

    def combine(self) -> bytes:
        return self._scheme.combine(
            self._public_key, self._ciphertext, list(self._shares.values())
        )


class SignOperation(ShareOperation):
    """Non-interactive threshold signing for SH00 and BLS04."""

    def __init__(
        self,
        scheme: ThresholdSignature,
        public_key,
        key_share,
        message: bytes,
    ):
        super().__init__(public_key.threshold, key_share.id)
        self._scheme = scheme
        self._public_key = public_key
        self._key_share = key_share
        self._message = message

    def create_own_share(self) -> bytes:
        share = self._scheme.partial_sign(self._key_share, self._message)
        self._store_own(share)
        return share.to_bytes()

    def _decode(self, payload: bytes):
        if isinstance(self._scheme, sh00.Sh00SignatureScheme):
            return sh00.Sh00SignatureShare.from_bytes(payload)
        return bls04.Bls04SignatureShare.from_bytes(payload)

    def _verify_decoded(self, share) -> None:
        self._scheme.verify_signature_share(self._public_key, self._message, share)

    def _request_tuple(self) -> tuple[str, bytes]:
        return "sign", self._message

    def combine(self) -> bytes:
        signature = self._scheme.combine(
            self._public_key, self._message, list(self._shares.values())
        )
        return signature.to_bytes()


class CoinOperation(ShareOperation):
    """Threshold randomness for CKS05."""

    def __init__(self, scheme: ThresholdCoin, public_key, key_share, name: bytes):
        super().__init__(public_key.threshold, key_share.id)
        self._scheme = scheme
        self._public_key = public_key
        self._key_share = key_share
        self._name = name

    def create_own_share(self) -> bytes:
        share = self._scheme.create_coin_share(self._key_share, self._name)
        self._store_own(share)
        return share.to_bytes()

    def _decode(self, payload: bytes):
        return cks05.Cks05CoinShare.from_bytes(payload, self._public_key.group)

    def _verify_decoded(self, share) -> None:
        self._scheme.verify_coin_share(self._public_key, self._name, share)

    def _request_tuple(self) -> tuple[str, bytes]:
        return "coin", self._name

    def combine(self) -> bytes:
        return self._scheme.combine(
            self._public_key, self._name, list(self._shares.values())
        )


def make_operation(
    scheme_name: str,
    public_key,
    key_share,
    request: OperationRequest,
) -> ShareOperation:
    """Instantiate the right adapter for (scheme, request kind)."""
    scheme = get_scheme(scheme_name)
    if request.kind == "decrypt":
        if not isinstance(scheme, ThresholdCipher):
            raise ConfigurationError(f"{scheme_name} cannot decrypt")
        if isinstance(scheme, sg02.Sg02Cipher):
            ciphertext = sg02.Sg02Ciphertext.from_bytes(
                request.data, public_key.group
            )
        else:
            ciphertext = bz03.Bz03Ciphertext.from_bytes(request.data)
        return DecryptOperation(scheme, public_key, key_share, ciphertext)
    if request.kind == "sign":
        if not isinstance(scheme, ThresholdSignature):
            raise ConfigurationError(f"{scheme_name} cannot sign")
        return SignOperation(scheme, public_key, key_share, request.data)
    if request.kind == "coin":
        if not isinstance(scheme, ThresholdCoin):
            raise ConfigurationError(f"{scheme_name} cannot toss coins")
        return CoinOperation(scheme, public_key, key_share, request.data)
    raise ConfigurationError(f"unknown operation kind {request.kind!r}")
