"""The instance manager: creation, progression, and termination tracking.

"Its main component is the instance manager that keeps track of the
instances and is responsible for managing the state of every new instance"
(§3.5).  The manager also owns the message backlog: protocol messages can
arrive from fast peers *before* the local node has created the matching
instance (the request races the first share), so undeliverable messages are
buffered and drained at creation time.
"""

from __future__ import annotations

import asyncio
import logging
from collections import defaultdict

from ...errors import ProtocolAbortedError, ProtocolError
from ...telemetry import CoreMetrics, MetricRegistry, default_registry
from ..messages import ProtocolMessage
from ..tri import ThresholdRoundProtocol
from .executor import ProtocolExecutor, SendFn
from .instance import InstanceRecord, InstanceStatus

logger = logging.getLogger(__name__)

#: Upper bound on buffered early messages per instance; beyond this the
#: sender is either byzantine or the request was dropped locally.
_BACKLOG_LIMIT = 4096


class InstanceManager:
    """Tracks every protocol instance running on one node."""

    def __init__(
        self,
        party_id: int,
        send: SendFn,
        default_timeout: float | None = 60.0,
        registry: MetricRegistry | None = None,
    ):
        self.party_id = party_id
        self._send = send
        self._default_timeout = default_timeout
        self.metrics = CoreMetrics(
            registry if registry is not None else default_registry()
        )
        self._executors: dict[str, ProtocolExecutor] = {}
        self._records: dict[str, InstanceRecord] = {}
        self._backlog: dict[str, list[ProtocolMessage]] = defaultdict(list)
        self._tasks: set[asyncio.Task] = set()

    # -- creation -------------------------------------------------------------

    def start_instance(
        self,
        protocol: ThresholdRoundProtocol,
        scheme: str,
        timeout: float | None = None,
    ) -> InstanceRecord:
        """Create and launch an instance; idempotent on instance id."""
        instance_id = protocol.instance_id
        if instance_id in self._records:
            return self._records[instance_id]
        record = InstanceRecord(instance_id, scheme)
        executor = ProtocolExecutor(
            protocol,
            record,
            self._send,
            timeout=timeout if timeout is not None else self._default_timeout,
            metrics=self.metrics,
        )
        self._records[instance_id] = record
        self._executors[instance_id] = executor
        self.metrics.inflight.inc()
        task = asyncio.get_running_loop().create_task(executor.run())
        self._tasks.add(task)
        task.add_done_callback(
            lambda t, instance_id=instance_id: self._on_task_done(t, instance_id)
        )
        # Drain messages that beat the request to this node.
        for message in self._backlog.pop(instance_id, []):
            executor.inbox.put_nowait(message)
        return record

    def _on_task_done(self, task: asyncio.Task, instance_id: str) -> None:
        self._tasks.discard(task)
        self.metrics.inflight.dec()
        # Terminated instances must not pin state: drop any backlog entries
        # that raced in and drain the executor's inbox so residual shares
        # from slow peers are released rather than accumulated.
        self._backlog.pop(instance_id, None)
        executor = self._executors.get(instance_id)
        if executor is not None:
            while not executor.inbox.empty():
                executor.inbox.get_nowait()

    # -- message routing --------------------------------------------------------

    async def handle_network_message(self, message: ProtocolMessage) -> None:
        """Route an incoming protocol message to its instance (or buffer it)."""
        executor = self._executors.get(message.instance_id)
        if executor is not None:
            record = self._records[message.instance_id]
            if record.status in (InstanceStatus.FINISHED, InstanceStatus.FAILED):
                return  # residual message from a slow peer; §4.5 discusses these
            await executor.deliver(message)
            return
        backlog = self._backlog[message.instance_id]
        if len(backlog) >= _BACKLOG_LIMIT:
            logger.warning(
                "backlog overflow for unknown instance %s; dropping message",
                message.instance_id,
            )
            self.metrics.backlog_dropped.inc()
            return
        backlog.append(message)
        self.metrics.backlog_buffered.inc()

    # -- results ------------------------------------------------------------------

    async def result(self, instance_id: str) -> bytes:
        """Await the result of an instance (raises on abort/timeout)."""
        executor = self._executors.get(instance_id)
        if executor is None:
            raise ProtocolError(f"unknown instance {instance_id!r}")
        return await asyncio.shield(executor.result_future)

    def record(self, instance_id: str) -> InstanceRecord:
        if instance_id not in self._records:
            raise ProtocolError(f"unknown instance {instance_id!r}")
        return self._records[instance_id]

    def records(self) -> list[InstanceRecord]:
        return list(self._records.values())

    @property
    def active_count(self) -> int:
        return sum(
            1
            for record in self._records.values()
            if record.status in (InstanceStatus.CREATED, InstanceStatus.RUNNING)
        )

    async def shutdown(self) -> None:
        """Cancel all running executors (node shutdown)."""
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, ProtocolAbortedError):
                pass
        self._backlog.clear()
