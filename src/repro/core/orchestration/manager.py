"""The instance manager: creation, progression, and termination tracking.

"Its main component is the instance manager that keeps track of the
instances and is responsible for managing the state of every new instance"
(§3.5).  The manager also owns the message backlog: protocol messages can
arrive from fast peers *before* the local node has created the matching
instance (the request races the first share), so undeliverable messages are
buffered and drained at creation time.

Durability (docs/robustness.md, "Durability & recovery"): with a
``journal`` attached, every instance lifecycle transition (submitted /
finalized / aborted) is appended to the write-ahead log before or as it
happens, and finalized results additionally go to the durable ``results``
cache — after a crash, :meth:`restore_finished` / :meth:`restore_aborted`
rebuild the records a restarted node must be able to answer for.

Overload shedding: ``max_pending`` bounds the number of concurrently
active instances; excess submissions are rejected *before* an executor is
created, with a structured ``overloaded`` error carrying a retry-after
hint, so a saturated node degrades into fast rejections instead of a
growing pile of doomed timeouts.
"""

from __future__ import annotations

import asyncio
import logging
from collections import defaultdict

from ...errors import ProtocolAbortedError, ProtocolError, RpcError
from ...telemetry import CoreMetrics, MetricRegistry, default_registry
from ..messages import ProtocolMessage
from ..tri import ThresholdRoundProtocol
from .executor import ProtocolExecutor, SendFn
from .instance import InstanceRecord, InstanceStatus

logger = logging.getLogger(__name__)

#: Upper bound on buffered early messages per instance; beyond this the
#: sender is either byzantine or the request was dropped locally.
_BACKLOG_LIMIT = 4096


class InstanceManager:
    """Tracks every protocol instance running on one node."""

    def __init__(
        self,
        party_id: int,
        send: SendFn,
        default_timeout: float | None = 60.0,
        registry: MetricRegistry | None = None,
        journal=None,
        results=None,
        max_pending: int | None = None,
        overload_retry_after: float = 0.25,
        crypto_pool=None,
        coalescer=None,
    ):
        self.party_id = party_id
        self._send = send
        self._default_timeout = default_timeout
        # Shared by every executor this manager launches; None keeps all
        # crypto inline on the event loop (the pre-offload behaviour).
        self._crypto_pool = crypto_pool
        # Cross-request batching layer over the pool (same sharing scope).
        self._coalescer = coalescer
        self.metrics = CoreMetrics(
            registry if registry is not None else default_registry()
        )
        self._journal = journal
        self._results = results
        self._max_pending = max_pending
        self._overload_retry_after = overload_retry_after
        self._executors: dict[str, ProtocolExecutor] = {}
        self._records: dict[str, InstanceRecord] = {}
        self._backlog: dict[str, list[ProtocolMessage]] = defaultdict(list)
        self._tasks: set[asyncio.Task] = set()
        #: Live executor count; kept explicitly (not derived from records)
        #: so the overload check stays O(1) on the submission hot path.
        self._active = 0

    # -- creation -------------------------------------------------------------

    def start_instance(
        self,
        protocol: ThresholdRoundProtocol,
        scheme: str,
        timeout: float | None = None,
    ) -> InstanceRecord:
        """Create and launch an instance; idempotent on instance id.

        Identical-payload requests derive identical instance ids
        (``derive_instance_id``), so the two idempotency branches below
        *are* the duplicate-request coalescing path: joining an instance
        already in flight, or answering from the durable result cache.
        Both folds are counted as ``repro_requests_coalesced_total``.
        """
        instance_id = protocol.instance_id
        if instance_id in self._records:
            self.metrics.coalesced_requests.labels("inflight").inc()
            return self._records[instance_id]
        # Idempotency across restarts: a duplicate of a request finalized
        # in a previous process life is answered from the durable result
        # cache without re-running the protocol.
        if self._results is not None:
            cached = self._results.get(instance_id)
            if cached is not None:
                self.metrics.coalesced_requests.labels("result_cache").inc()
                return self.restore_finished(instance_id, cached[0], cached[1])
        if self._max_pending is not None and self._active >= self._max_pending:
            self.metrics.rejected.labels("overloaded").inc()
            raise RpcError(
                f"node overloaded: {self._active} instances pending "
                f"(limit {self._max_pending})",
                reason="overloaded",
                retry_after=self._overload_retry_after,
            )
        self._journal_event(
            {"event": "submitted", "id": instance_id, "scheme": scheme}
        )
        record = InstanceRecord(instance_id, scheme)
        executor = ProtocolExecutor(
            protocol,
            record,
            self._send,
            timeout=timeout if timeout is not None else self._default_timeout,
            metrics=self.metrics,
            crypto_pool=self._crypto_pool,
            coalescer=self._coalescer,
        )
        self._records[instance_id] = record
        self._executors[instance_id] = executor
        self._active += 1
        self.metrics.inflight.inc()
        task = asyncio.get_running_loop().create_task(executor.run())
        self._tasks.add(task)
        task.add_done_callback(
            lambda t, instance_id=instance_id: self._on_task_done(t, instance_id)
        )
        # Drain messages that beat the request to this node.
        for message in self._backlog.pop(instance_id, []):
            executor.inbox.put_nowait(message)
        return record

    def _on_task_done(self, task: asyncio.Task, instance_id: str) -> None:
        self._tasks.discard(task)
        self._active -= 1
        self.metrics.inflight.dec()
        # Terminated instances must not pin state: drop any backlog entries
        # that raced in and drain the executor's inbox so residual shares
        # from slow peers are released rather than accumulated.
        self._backlog.pop(instance_id, None)
        executor = self._executors.get(instance_id)
        if executor is not None:
            while not executor.inbox.empty():
                executor.inbox.get_nowait()
        record = self._records.get(instance_id)
        if record is None:
            return
        if record.status is InstanceStatus.FINISHED:
            if self._results is not None and record.result is not None:
                self._persist_guarded(
                    lambda: self._results.put(
                        instance_id, record.scheme, record.result
                    )
                )
            self._journal_event({"event": "finalized", "id": instance_id})
        elif record.status is InstanceStatus.FAILED:
            self._journal_event(
                {
                    "event": "aborted",
                    "id": instance_id,
                    "reason": record.abort_reason or "aborted",
                }
            )
        # A cancelled executor (node shutdown) leaves no terminal journal
        # record on purpose: replay classifies it as in-flight at crash
        # time and recovery marks it ``crash_recovery``.

    def _journal_event(self, record: dict) -> None:
        if self._journal is None:
            return
        self._persist_guarded(lambda: self._journal.append(record))

    @staticmethod
    def _persist_guarded(write) -> None:
        """Durability writes must not take down a live protocol instance;
        a full disk degrades the node to memory-only, loudly."""
        try:
            write()
        except Exception:  # noqa: BLE001 - log and keep serving
            logger.exception("durable-state write failed; continuing in-memory")

    # -- crash recovery --------------------------------------------------------

    def restore_finished(
        self, instance_id: str, scheme: str, result: bytes
    ) -> InstanceRecord:
        """Rebuild a finalized record from the durable result cache."""
        existing = self._records.get(instance_id)
        if existing is not None:
            return existing
        record = InstanceRecord.restored_finished(instance_id, scheme, result)
        self._records[instance_id] = record
        return record

    def restore_aborted(
        self, instance_id: str, scheme: str, reason: str = "crash_recovery"
    ) -> InstanceRecord:
        """Mark an instance that was in-flight at crash time as aborted."""
        existing = self._records.get(instance_id)
        if existing is not None:
            return existing
        record = InstanceRecord.restored_aborted(
            instance_id,
            scheme,
            f"instance {instance_id} was in flight when the node crashed",
            reason,
        )
        self._records[instance_id] = record
        self.metrics.aborts.labels(scheme, reason).inc()
        return record

    # -- message routing --------------------------------------------------------

    async def handle_network_message(self, message: ProtocolMessage) -> None:
        """Route an incoming protocol message to its instance (or buffer it)."""
        executor = self._executors.get(message.instance_id)
        if executor is not None:
            record = self._records[message.instance_id]
            if record.status in (InstanceStatus.FINISHED, InstanceStatus.FAILED):
                return  # residual message from a slow peer; §4.5 discusses these
            await executor.deliver(message)
            return
        if message.instance_id in self._records:
            return  # restored (recovered) instance: terminal, no executor
        backlog = self._backlog[message.instance_id]
        if len(backlog) >= _BACKLOG_LIMIT:
            logger.warning(
                "backlog overflow for unknown instance %s; dropping message",
                message.instance_id,
            )
            self.metrics.backlog_dropped.inc()
            return
        backlog.append(message)
        self.metrics.backlog_buffered.inc()

    # -- results ------------------------------------------------------------------

    async def result(self, instance_id: str) -> bytes:
        """Await the result of an instance (raises on abort/timeout).

        Executor-less records exist after crash recovery: finalized ones
        answer from their restored result, aborted ones re-raise their
        structured abort reason.
        """
        executor = self._executors.get(instance_id)
        if executor is None:
            record = self._records.get(instance_id)
            if record is not None and record.status is InstanceStatus.FINISHED:
                assert record.result is not None
                return record.result
            if record is not None and record.status is InstanceStatus.FAILED:
                raise ProtocolAbortedError(
                    record.error or f"instance {instance_id} aborted",
                    record.abort_reason or "aborted",
                )
            raise ProtocolError(f"unknown instance {instance_id!r}")
        return await asyncio.shield(executor.result_future)

    def record(self, instance_id: str) -> InstanceRecord:
        if instance_id not in self._records:
            raise ProtocolError(f"unknown instance {instance_id!r}")
        return self._records[instance_id]

    def records(self) -> list[InstanceRecord]:
        return list(self._records.values())

    @property
    def active_count(self) -> int:
        return sum(
            1
            for record in self._records.values()
            if record.status in (InstanceStatus.CREATED, InstanceStatus.RUNNING)
        )

    async def shutdown(self) -> None:
        """Cancel all running executors (node shutdown)."""
        for task in list(self._tasks):
            task.cancel()
        for task in list(self._tasks):
            try:
                await task
            except (asyncio.CancelledError, ProtocolAbortedError):
                pass
        self._backlog.clear()
