"""The precomputed-share pipeline: threshold latency hidden behind pools.

The paper serves every threshold operation strictly on-demand, so each
request pays share creation, share verification, and combination in line
with the caller.  "The Latency Price of Threshold Cryptosystems in
Blockchains" (PAPERS.md) identifies preprocessing as the lever that
removes that price; FROST's nonce pool (``core.protocols.frost``) is the
design's own sketch of it.  This module generalizes that sketch to every
scheme behind one per-(key, operation) **precompute pool**:

* **Announce** — a client names upcoming requests (the ciphertexts an
  ordering layer has accepted, the messages awaiting signature slots).
  Each node derives the same deterministic instance id it would derive
  for the real request.
* **Refill** — a background task materializes this node's own share for
  each announced request during idle cycles, through the adaptive
  :class:`~repro.workers.pool.CryptoPool` when the offload policy rules
  for it, and stages it in the pool.  With ``eager`` refill the node
  also starts the protocol instance immediately, so share exchange,
  verification, and combination all run ahead of demand and the real
  request folds into the finished instance via the idempotent instance
  id (PR-4 result cache / in-flight coalescing).
* **Consume** — the real request takes the staged entry (strict
  consume-once: the consumption is journaled durably *before* the entry
  is served, so a crash-and-restart can never double-use it) and the
  executor skips the first round's crypto via the TRI precompute hooks.
  Unannounced requests fall back to the on-demand path untouched.

KG20 keeps its nonce-commitment pools (filled by the explicit
preprocessing round); the service fronts them so consumption, depth
telemetry, and the TRI staging path are uniform across schemes.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Awaitable, Callable

from ...errors import ConfigurationError
from ...storage.pool_journal import PoolJournal
from ...telemetry import MetricRegistry, PrecomputeMetrics
from ...workers.pool import CryptoPool, CryptoPoolUnavailable
from ..protocols.frost import FrostPrecomputationPool

logger = logging.getLogger(__name__)

#: Refill yields to foreground instances; this is the re-check cadence
#: while the node is busy (idle-cycles-only refill, docs/performance.md).
_IDLE_POLL = 0.002

#: Hysteresis for the idle gate: refill only starts after the node has
#: been free of foreground instances this long.  Without it, the sub-ms
#: gap between two back-to-back requests — or the tail of a fan-out this
#: node finalized early — reads as "idle" and a refill job's synchronous
#: share creation lands in front of the next request, exactly the
#: starvation the idle gate exists to prevent.  Longer than a typical
#: request so a steady stream never interleaves with refill.
_IDLE_GRACE = 0.25

#: Eagerly pipelined instances in flight at once.  All nodes process the
#: same announce order, so the windows are prefixes of one sequence and
#: always overlap — the cap bounds background load without deadlocking.
_EAGER_WINDOW = 4

#: Bound on the remembered eagerly-started instance ids (served-source
#: accounting); FIFO-evicted, like the instance manager's backlog cap.
_PIPELINED_LIMIT = 4096


def derive_instance_id(
    kind: str, key_id: str, data: bytes, label: bytes = b""
) -> str:
    """Deterministic instance id shared by all nodes for the same request.

    Lives here (not in the service layer) because the precompute pool is
    keyed by it: an announced request and the real request must collide.
    """
    digest = hashlib.sha256(
        b"repro-instance" + kind.encode() + b"\x00" + key_id.encode() + b"\x00"
        + len(label).to_bytes(4, "big") + label + data
    ).hexdigest()
    return f"{kind}-{digest[:24]}"


@dataclass(frozen=True)
class PrecomputeConfig:
    """Behaviour of one node's precompute pipeline (``NodeConfig.precompute``)."""

    #: Maximum staged-but-unconsumed entries per (key, operation) pool;
    #: announces beyond it are deferred, never queued unboundedly.
    depth: int = 8
    #: Start the protocol instance as soon as this node's share is staged,
    #: so the whole threshold round (exchange + verify + combine) runs
    #: ahead of the request, not just share creation.
    eager: bool = True
    #: Defer refill work while foreground instances are active.
    idle_only: bool = True
    #: Persist staged entries (and their consumption) in the PR-4 WAL
    #: layer under ``data_dir/precompute`` so restarts restore unconsumed
    #: shares and can never re-serve consumed ones.
    journal: bool = True

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigurationError(
                f"precompute depth must be >= 1, got {self.depth}"
            )

    def to_dict(self) -> dict:
        return {
            "depth": self.depth,
            "eager": self.eager,
            "idle_only": self.idle_only,
            "journal": self.journal,
        }

    @staticmethod
    def from_dict(payload: dict) -> "PrecomputeConfig":
        return PrecomputeConfig(**payload)


@dataclass(frozen=True)
class PrecomputeJob:
    """One announced request, ready for refill.

    ``operation_factory`` defers building the ShareOperation (ciphertext
    parsing, point decompression) to the refill loop: announce handling
    runs on the foreground event loop and must stay cheap, while the
    factory call happens under the idle gate with the rest of the
    refill crypto.
    """

    instance_id: str
    key_id: str
    kind: str  # "decrypt" / "sign" / "coin" — the served operation
    data: bytes
    label: bytes
    operation_factory: Callable[[], object]  # () -> ShareOperation
    scheme: str


@dataclass
class _PoolEntry:
    seq: int  # journal consume sequence (0 when unjournaled)
    key_id: str
    kind: str
    payload: bytes


class PrecomputeService:
    """Per-node pools + refill loop + consume-once ledger.

    Always constructed (the KG20 nonce pools live here regardless);
    ``config=None`` disables the announce/refill pipeline and keeps the
    node on the pre-pipeline behaviour.
    """

    def __init__(
        self,
        config: PrecomputeConfig | None,
        registry: MetricRegistry,
        crypto_pool: CryptoPool | None = None,
        journal_dir: Path | str | None = None,
        active_probe: Callable[[], int] | None = None,
        submit: Callable[[str, str, bytes, bytes], Awaitable[bytes]] | None = None,
    ):
        self._config = config
        self._metrics = PrecomputeMetrics(registry)
        self._crypto_pool = crypto_pool
        self._active_probe = active_probe
        self._submit = submit
        self._entries: dict[str, _PoolEntry] = {}
        self._counts: dict[tuple[str, str], int] = {}
        self._queued: dict[tuple[str, str], int] = {}
        self._pending_ids: set[str] = set()
        self._queue: deque[tuple[PrecomputeJob, asyncio.Future]] = deque()
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._pipelined: OrderedDict[str, None] = OrderedDict()
        # A fresh node refills immediately; the first foreground instance
        # arms the idle-grace window (see _pace).
        self._last_busy = float("-inf")
        self._eager_tasks: set[asyncio.Task] = set()
        self._eager_inflight = 0
        self._frost_pools: dict[str, FrostPrecomputationPool] = {}
        self._served: dict[tuple[str, str], int] = {}
        self._refill_outcomes: dict[tuple[str, str], int] = {}
        self._restored = 0
        self._journal: PoolJournal | None = None
        if journal_dir is not None and self.enabled and config.journal:
            self._journal = PoolJournal(journal_dir)
            for survivor in self._journal.survivors:
                self._entries[survivor.instance_id] = _PoolEntry(
                    survivor.seq,
                    survivor.key_id,
                    survivor.op,
                    survivor.payload,
                )
                self._adjust_depth((survivor.key_id, survivor.op), 1)
                self._restored += 1

    @property
    def enabled(self) -> bool:
        return self._config is not None

    @property
    def config(self) -> PrecomputeConfig | None:
        return self._config

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self.enabled and self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for task in list(self._eager_tasks):
            task.cancel()
        if self._eager_tasks:
            await asyncio.gather(*self._eager_tasks, return_exceptions=True)
        while self._queue:
            job, future = self._queue.popleft()
            self._pending_ids.discard(job.instance_id)
            if not future.done():
                future.set_result("cancelled")
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    # -- announce / refill ---------------------------------------------------

    def announce(self, job: PrecomputeJob) -> "asyncio.Future[str]":
        """Queue one refill; the future resolves to the staging outcome
        (``staged`` / ``duplicate`` / ``deferred`` / ``failed: …``)."""
        future = asyncio.get_running_loop().create_future()
        if not self.enabled:
            future.set_result("disabled")
            return future
        if (
            job.instance_id in self._entries
            or job.instance_id in self._pending_ids
        ):
            future.set_result("duplicate")
            return future
        pool_key = (job.key_id, job.kind)
        depth = self._counts.get(pool_key, 0) + self._queued.get(pool_key, 0)
        if depth >= self._config.depth:
            self._count_refill(job.kind, "deferred")
            future.set_result("deferred")
            return future
        self._queued[pool_key] = self._queued.get(pool_key, 0) + 1
        self._pending_ids.add(job.instance_id)
        self._queue.append((job, future))
        self._wake.set()
        return future

    async def warm(self, jobs: list[PrecomputeJob]) -> dict:
        """Announce a batch and wait for its staging to settle."""
        outcomes = await asyncio.gather(*(self.announce(job) for job in jobs))
        tally: dict[str, int] = {}
        for outcome in outcomes:
            bucket = outcome.split(":", 1)[0]
            tally[bucket] = tally.get(bucket, 0) + 1
        tally["depth"] = {
            f"{key}/{kind}": count
            for (key, kind), count in sorted(self._counts.items())
            if count
        }
        return tally

    async def _run(self) -> None:
        while True:
            if not self._queue:
                self._wake.clear()
                await self._wake.wait()
                continue
            job, future = self._queue.popleft()
            pool_key = (job.key_id, job.kind)
            try:
                await self._pace()
                started = time.perf_counter()
                payload = await self._create(job)
            except asyncio.CancelledError:
                self._release_queued(pool_key, job)
                if not future.done():
                    future.set_result("cancelled")
                raise
            except Exception as exc:  # noqa: BLE001 - one bad job must not kill refill
                self._release_queued(pool_key, job)
                self._count_refill(job.kind, "error")
                logger.warning(
                    "precompute refill failed for %s: %s", job.instance_id, exc
                )
                if not future.done():
                    future.set_result(f"failed: {exc}")
                continue
            self._release_queued(pool_key, job)
            seq = 0
            if self._journal is not None:
                seq = self._journal.stage(
                    job.instance_id, job.key_id, job.kind, payload
                )
            self._entries[job.instance_id] = _PoolEntry(
                seq, job.key_id, job.kind, payload
            )
            self._adjust_depth(pool_key, 1)
            self._metrics.refill_seconds.labels(job.kind).observe(
                time.perf_counter() - started
            )
            self._count_refill(job.kind, "ok")
            if not future.done():
                future.set_result("staged")
            if self._config.eager and self._submit is not None:
                self._start_eager(job)
            # One explicit yield between jobs: a request arriving mid-batch
            # must reach its executor before the next refill runs.
            await asyncio.sleep(0)

    def _release_queued(self, pool_key: tuple[str, str], job: PrecomputeJob) -> None:
        self._queued[pool_key] = max(0, self._queued.get(pool_key, 0) - 1)
        self._pending_ids.discard(job.instance_id)

    async def _pace(self) -> None:
        """Idle-cycles gate: foreground instances and the eager window win.

        The eager pipeline's own instances are discounted from the busy
        probe (they *are* the refill).  Foreground activity arms a grace
        window: refill resumes only after :data:`_IDLE_GRACE` seconds
        without foreground instances, so a stream of back-to-back
        requests is never interleaved with refill crypto.
        """
        while True:
            if self._config.idle_only and self._active_probe is not None:
                now = time.monotonic()
                if self._active_probe() - self._eager_inflight > 0:
                    self._last_busy = now
                    await asyncio.sleep(_IDLE_POLL)
                    continue
                if now - self._last_busy < _IDLE_GRACE:
                    await asyncio.sleep(_IDLE_POLL)
                    continue
            if self._eager_inflight < _EAGER_WINDOW:
                return
            await asyncio.sleep(_IDLE_POLL)

    async def _create(self, job: PrecomputeJob) -> bytes:
        """This node's own share for the announced request.

        Routed through the adaptive crypto pool under the same op name as
        the on-demand path, so the policy's EWMAs keep learning from both.
        """
        operation = job.operation_factory()
        pool = self._crypto_pool
        spec = None
        if pool is not None and pool.enabled:
            spec = operation.offload_spec(include_share=True)
        if spec is not None:
            op = f"{spec['scheme']}:create_share"
            if pool.decide(op).offload:
                from ...workers.refill import refill_shares

                started = time.perf_counter()
                try:
                    payloads = await pool.run(op, refill_shares, [spec])
                except CryptoPoolUnavailable:
                    pass  # degrade to inline; the pool counted the fallback
                else:
                    pool.observe(op, "pool", time.perf_counter() - started)
                    return payloads[0]
            started = time.perf_counter()
            payload = operation.create_own_share()
            pool.observe(op, "inline", time.perf_counter() - started)
            return payload
        return operation.create_own_share()

    def _start_eager(self, job: PrecomputeJob) -> None:
        self.note_pipelined(job.instance_id)
        try:
            awaitable = self._submit(job.kind, job.key_id, job.data, job.label)
        except Exception:  # noqa: BLE001 - overload/shedding must not kill refill
            logger.warning(
                "eager start failed for %s", job.instance_id, exc_info=True
            )
            self._pipelined.pop(job.instance_id, None)
            return
        self._eager_inflight += 1
        task = asyncio.get_running_loop().create_task(
            self._watch_eager(job.instance_id, awaitable)
        )
        self._eager_tasks.add(task)
        task.add_done_callback(self._eager_tasks.discard)

    async def _watch_eager(self, instance_id: str, awaitable) -> None:
        try:
            await awaitable
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - the real request sees the abort
            logger.warning("pipelined instance %s failed: %s", instance_id, exc)
        finally:
            self._eager_inflight -= 1

    # -- consume -------------------------------------------------------------

    def take(self, instance_id: str) -> bytes | None:
        """Pop the staged share for this instance id — exactly once, ever.

        The consumption record is appended (and fsynced) to the pool
        journal *before* the payload is returned: a SIGKILL anywhere after
        this call replays as consumed, never as available again.
        """
        entry = self._entries.pop(instance_id, None)
        if entry is None:
            return None
        if self._journal is not None and entry.seq:
            self._journal.consume(entry.seq)
        self._adjust_depth((entry.key_id, entry.kind), -1)
        return entry.payload

    def note_pipelined(self, instance_id: str) -> None:
        self._pipelined[instance_id] = None
        while len(self._pipelined) > _PIPELINED_LIMIT:
            self._pipelined.popitem(last=False)

    def was_pipelined(self, instance_id: str) -> bool:
        return instance_id in self._pipelined

    def record_served(self, op: str, source: str) -> None:
        self._metrics.served.labels(op, source).inc()
        key = (op, source)
        self._served[key] = self._served.get(key, 0) + 1

    # -- KG20 nonce pools ----------------------------------------------------

    def frost_pool(self, key_id: str) -> FrostPrecomputationPool:
        return self._frost_pools.setdefault(key_id, FrostPrecomputationPool())

    def note_frost_depth(self, key_id: str) -> None:
        """Refresh the depth gauge after a preprocessing round filled it."""
        pool = self._frost_pools.get(key_id)
        if pool is not None:
            self._metrics.depth.labels(key_id, "kg20-nonce").set(pool.available)

    def take_frost(
        self, key_id: str
    ) -> tuple[object, list[object]] | None:
        """Pop one nonce/commitment set, or None when the pool is dry.

        Nonce material is volatile by construction (it never rests on
        disk), so a restart empties the pool — consume-once across
        process lives holds trivially.
        """
        pool = self._frost_pools.get(key_id)
        if pool is None or not pool.available:
            return None
        entry = pool.pop()
        self._metrics.depth.labels(key_id, "kg20-nonce").set(pool.available)
        return entry

    # -- bookkeeping ---------------------------------------------------------

    def _adjust_depth(self, pool_key: tuple[str, str], delta: int) -> None:
        count = self._counts.get(pool_key, 0) + delta
        self._counts[pool_key] = max(0, count)
        self._metrics.depth.labels(*pool_key).set(self._counts[pool_key])

    def _count_refill(self, op: str, outcome: str) -> None:
        self._metrics.refills.labels(op, outcome).inc()
        key = (op, outcome)
        self._refill_outcomes[key] = self._refill_outcomes.get(key, 0) + 1

    def staged_count(self, key_id: str, kind: str) -> int:
        return self._counts.get((key_id, kind), 0)

    def stats(self) -> dict:
        """``stats()["precompute"]`` section (docs/observability.md)."""
        report = {
            "enabled": self.enabled,
            "staged": {
                f"{key}/{kind}": count
                for (key, kind), count in sorted(self._counts.items())
                if count
            },
            "queued": len(self._queue),
            "restored": self._restored,
            "served": {
                f"{op}/{source}": count
                for (op, source), count in sorted(self._served.items())
            },
            "refills": {
                f"{op}/{outcome}": count
                for (op, outcome), count in sorted(self._refill_outcomes.items())
            },
            "frost": {
                key_id: pool.available
                for key_id, pool in sorted(self._frost_pools.items())
                if pool.available
            },
        }
        if self.enabled:
            report["depth_limit"] = self._config.depth
            report["eager"] = self._config.eager
            report["pipelined_active"] = self._eager_inflight
        return report
