"""Orchestration module: instance manager, protocol executor, key manager.

Implements Fig. 3 of the paper: the *instance manager* tracks protocol
instances, each driven by a generic *protocol executor* (a state machine
over the TRI), with key material served by the *key manager*.
"""

from .instance import InstanceRecord, InstanceStatus
from .keymanager import KeyEntry, KeyManager
from .executor import ProtocolExecutor
from .manager import InstanceManager
from .precompute import (
    PrecomputeConfig,
    PrecomputeJob,
    PrecomputeService,
    derive_instance_id,
)

__all__ = [
    "InstanceRecord",
    "InstanceStatus",
    "KeyEntry",
    "KeyManager",
    "PrecomputeConfig",
    "PrecomputeJob",
    "PrecomputeService",
    "ProtocolExecutor",
    "InstanceManager",
    "derive_instance_id",
]
