"""Cross-request crypto batching: many instances, one pool round trip.

A pool task costs pickle + IPC + executor scheduling regardless of how
much crypto it carries, and on small hosts that fixed cost is exactly the
throughput regression ``BENCH_offload.json`` measured.  "The Latency
Price of Threshold Cryptosystems in Blockchains" (PAPERS.md) makes the
same observation at system scale: threshold work only stays cheap when it
is batched and pipelined across requests.

:class:`CryptoCoalescer` sits between the executors and the
:class:`~repro.workers.pool.CryptoPool`.  When several concurrent
instances each want a ``create_share`` (or a ``verify_shares``) within a
short window, the coalescer holds the first for ``window`` seconds,
merges everything that arrives meanwhile into one
``create_share_batch`` / ``verify_shares_multi`` worker task, and fans
the per-item results back out to the waiting executors.  A lone request
whose window expires alone is submitted as the plain single task — the
window is the only latency the layer can add, and only under no load.

Failure semantics preserve the pool's degradation contract: an
infrastructure failure (:class:`CryptoPoolUnavailable`) propagates to
*every* waiter, each of which falls back inline exactly as it would for
its own single task; a per-item cryptographic failure inside a batch
surfaces as a :class:`~repro.errors.CryptoError` only on that item's
future — one bad request cannot poison its batchmates.

Identical-payload request coalescing is upstream of this layer: the
instance manager's idempotent ``start_instance`` (PR 4) already folds
requests with the same derived instance id into one instance; it now
counts those folds as ``repro_requests_coalesced_total``.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Callable

from ...errors import CryptoError
from ...telemetry import CoreMetrics
from ...workers import tasks
from ...workers.pool import CryptoPool

logger = logging.getLogger(__name__)

#: Default coalescing window, seconds.  Long enough to catch genuinely
#: concurrent requests (same loop iteration, same gossip burst), short
#: enough to be invisible next to a pairing product.
DEFAULT_WINDOW = 0.002

#: Cap on items per flushed batch; a full bucket flushes immediately.
DEFAULT_MAX_BATCH = 16


@dataclass
class _Route:
    """How one coalescable single-task function batches."""

    key: str  # bucket key and batch op label
    batch_fn: Callable  # worker-side batch task
    pack: Callable  # list of per-item args tuples -> the batch payload
    deliver: Callable  # (future, per-item result) -> resolve the future


@dataclass
class _Bucket:
    """One open window's worth of pending items."""

    ops: list[str] = field(default_factory=list)
    items: list[tuple] = field(default_factory=list)
    futures: list[asyncio.Future] = field(default_factory=list)
    timer: asyncio.Task | None = None


def _deliver_created(future: asyncio.Future, result) -> None:
    """create_share_batch items come back tagged ("ok"|"error", value)."""
    tag, value = result
    if tag == "ok":
        future.set_result(value)
    else:
        future.set_exception(CryptoError(str(value)))


def _deliver_verdicts(future: asyncio.Future, result) -> None:
    """verify_shares_multi items are the verdict lists themselves."""
    future.set_result(result)


class CryptoCoalescer:
    """Batches concurrent executors' pool tasks across instances."""

    def __init__(
        self,
        pool: CryptoPool,
        window: float = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: CoreMetrics | None = None,
    ):
        self._pool = pool
        self._window = max(0.0, float(window))
        self._max_batch = max(2, int(max_batch))
        self._metrics = metrics
        self._buckets: dict[str, _Bucket] = {}
        self._batches = 0
        self._batched_items = 0
        self._singles = 0
        # Keyed by the *worker task function*: the executor hands us
        # whatever (op, fn, args) the protocol's offload hook built, and
        # only these two functions have a batch form.
        self._routes: dict[Callable, _Route] = {
            tasks.create_share: _Route(
                key="create_share_batch",
                batch_fn=tasks.create_share_batch,
                pack=lambda items: [spec for (spec,) in items],
                deliver=_deliver_created,
            ),
            tasks.verify_shares: _Route(
                key="verify_shares_multi",
                batch_fn=tasks.verify_shares_multi,
                pack=lambda items: [
                    (spec, payloads) for (spec, payloads) in items
                ],
                deliver=_deliver_verdicts,
            ),
        }

    @property
    def window(self) -> float:
        return self._window

    def bind_metrics(self, metrics: CoreMetrics) -> None:
        """Late-bind the node's core metrics (the instance manager owns
        them, and it is constructed after the coalescer)."""
        self._metrics = metrics

    def stats(self) -> dict:
        return {
            "window": self._window,
            "max_batch": self._max_batch,
            "batches": self._batches,
            "batched_items": self._batched_items,
            "singles": self._singles,
        }

    async def run(self, op: str, fn, args: tuple):
        """Pool execution with cross-request batching where possible.

        Drop-in for ``pool.run(op, fn, *args)``: same results, same
        exceptions (``CryptoPoolUnavailable`` for infrastructure,
        ``ThetacryptError`` for crypto), so executors degrade inline
        identically on both paths.
        """
        route = self._routes.get(fn)
        if route is None or self._window <= 0.0:
            return await self._pool.run(op, fn, *args)
        bucket = self._buckets.get(route.key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[route.key] = bucket
            bucket.timer = asyncio.get_running_loop().create_task(
                self._flush_after(route, bucket)
            )
        bucket.ops.append(op)
        bucket.items.append(args)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        bucket.futures.append(future)
        if len(bucket.items) >= self._max_batch:
            self._detach(route, bucket)
            await self._flush(route, bucket)
        return await future

    def _detach(self, route: _Route, bucket: _Bucket) -> None:
        """Close the bucket's window: no further items may join it."""
        if self._buckets.get(route.key) is bucket:
            del self._buckets[route.key]
        if bucket.timer is not None and not bucket.timer.done():
            bucket.timer.cancel()

    async def _flush_after(self, route: _Route, bucket: _Bucket) -> None:
        try:
            await asyncio.sleep(self._window)
        except asyncio.CancelledError:
            return  # a full bucket flushed early
        if self._buckets.get(route.key) is not bucket:
            return
        del self._buckets[route.key]
        await self._flush(route, bucket)

    async def _flush(self, route: _Route, bucket: _Bucket) -> None:
        if not bucket.items:
            return
        if len(bucket.items) == 1:
            # A window that closed with one item: no batch to amortize,
            # run the single task under its own op label.
            self._singles += 1
            await self._settle(
                bucket.futures[0],
                self._pool.run(
                    bucket.ops[0], self._single_fn(route), *bucket.items[0]
                ),
            )
            return
        self._batches += 1
        self._batched_items += len(bucket.items)
        if self._metrics is not None:
            self._metrics.crypto_batches.labels(route.key).inc()
            self._metrics.crypto_batched_items.labels(route.key).inc(
                len(bucket.items)
            )
        try:
            results = await self._pool.run(
                route.key, route.batch_fn, route.pack(bucket.items)
            )
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        if not isinstance(results, list) or len(results) != len(bucket.futures):
            exc = CryptoError(
                f"batched {route.key} returned {len(results) if isinstance(results, list) else type(results).__name__} "
                f"results for {len(bucket.futures)} items"
            )
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(bucket.futures, results):
            if future.done():
                continue  # waiter went away (cancelled executor)
            try:
                route.deliver(future, result)
            except Exception as exc:  # noqa: BLE001 - malformed item result
                if not future.done():
                    future.set_exception(CryptoError(str(exc)))

    def _single_fn(self, route: _Route) -> Callable:
        """The single-task form of a route (inverse of the routing dict)."""
        for fn, candidate in self._routes.items():
            if candidate is route:
                return fn
        raise KeyError(route.key)  # pragma: no cover - routes are static

    @staticmethod
    async def _settle(future: asyncio.Future, coro) -> None:
        try:
            result = await coro
        except BaseException as exc:  # noqa: BLE001 - includes pool fallback
            if not future.done():
                future.set_exception(exc)
        else:
            if not future.done():
                future.set_result(result)
