"""Key manager: the component the protocol executor asks for key material.

Keys are registered at node start-up (from the trusted dealer's output or a
completed DKG) under string ids; the manager indexes them by id and by
scheme so the service layer can resolve "sign with any BLS key" style
requests as well as explicit key references.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import KeyManagementError
from ...schemes.base import SCHEME_TABLE


@dataclass(frozen=True)
class KeyEntry:
    """One installed key: public part plus this node's private share."""

    key_id: str
    scheme: str
    public_key: object
    key_share: object

    @property
    def kind(self) -> str:
        return SCHEME_TABLE[self.scheme].kind.value


class KeyManager:
    """Per-node store of threshold key material.

    With a ``store`` (a :class:`repro.storage.DurableKeystore`-shaped
    object) attached, every ``register``/``remove`` persists through it
    before updating memory, and previously persisted shares are reloaded
    at construction — key custody survives process death.
    """

    def __init__(self, store=None) -> None:
        self._keys: dict[str, KeyEntry] = {}
        self._store = store
        if store is not None:
            for key_id, scheme, share in store.items():
                # Direct insert: these entries are already on disk, and
                # register() would redundantly rewrite the snapshot.
                self._keys[key_id] = KeyEntry(key_id, scheme, share.public, share)

    def register(
        self, key_id: str, scheme: str, public_key: object, key_share: object
    ) -> None:
        if key_id in self._keys:
            raise KeyManagementError(f"key id {key_id!r} already registered")
        if scheme not in SCHEME_TABLE:
            raise KeyManagementError(f"unknown scheme {scheme!r}")
        if self._store is not None:
            self._store.put(key_id, scheme, key_share)
        self._keys[key_id] = KeyEntry(key_id, scheme, public_key, key_share)

    def get(self, key_id: str) -> KeyEntry:
        if key_id not in self._keys:
            raise KeyManagementError(f"unknown key id {key_id!r}")
        return self._keys[key_id]

    def remove(self, key_id: str) -> None:
        if key_id not in self._keys:
            raise KeyManagementError(f"unknown key id {key_id!r}")
        if self._store is not None:
            self._store.remove(key_id)
        del self._keys[key_id]

    def list_keys(self, scheme: str | None = None) -> list[KeyEntry]:
        return sorted(
            (
                entry
                for entry in self._keys.values()
                if scheme is None or entry.scheme == scheme
            ),
            key=lambda entry: entry.key_id,
        )

    def first_for_scheme(self, scheme: str) -> KeyEntry:
        """Resolve "any key for this scheme" (used by benchmark clients)."""
        for entry in self.list_keys(scheme):
            return entry
        raise KeyManagementError(f"no key installed for scheme {scheme!r}")

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key_id: str) -> bool:
        return key_id in self._keys
