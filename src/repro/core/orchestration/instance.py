"""Protocol instance bookkeeping: status, timestamps, results."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from ...errors import ProtocolError


class InstanceStatus(enum.Enum):
    """Lifecycle of a protocol instance (creation → progression → termination)."""

    CREATED = "created"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass
class InstanceRecord:
    """What the instance manager tracks about one protocol instance."""

    instance_id: str
    scheme: str
    status: InstanceStatus = InstanceStatus.CREATED
    created_at: float = field(default_factory=time.monotonic)
    finished_at: float | None = None
    result: bytes | None = None
    error: str | None = None
    #: Structured abort classification set by the executor on failure:
    #: ``timeout`` / ``insufficient_shares`` / ``byzantine_detected`` /
    #: ``aborted`` / ``internal``, plus ``crash_recovery`` for instances
    #: that were in-flight when the node died (None while not failed).
    abort_reason: str | None = None
    #: Telemetry trace recorded by the executor (per-round spans, per-hop
    #: events); set when the instance starts, reported via the status RPC.
    trace: object | None = None

    def trace_report(self) -> dict | None:
        """JSON-serialisable per-round/per-hop breakdown (None if untraced)."""
        if self.trace is None:
            return None
        return self.trace.report()

    @classmethod
    def restored_finished(
        cls, instance_id: str, scheme: str, result: bytes
    ) -> "InstanceRecord":
        """A record rebuilt from the durable result cache at recovery time.

        ``finished_at == created_at``: the work happened in a previous
        process life, so the restored record contributes zero latency (it
        must not skew the paper's server-side latency metric).
        """
        record = cls(instance_id, scheme)
        record.status = InstanceStatus.FINISHED
        record.result = result
        record.finished_at = record.created_at
        return record

    @classmethod
    def restored_aborted(
        cls,
        instance_id: str,
        scheme: str,
        error: str,
        reason: str = "crash_recovery",
    ) -> "InstanceRecord":
        """A record for an instance that was in-flight when the node died."""
        record = cls(instance_id, scheme)
        record.status = InstanceStatus.FAILED
        record.error = error
        record.abort_reason = reason
        record.finished_at = record.created_at
        return record

    def mark_running(self) -> None:
        self.status = InstanceStatus.RUNNING

    def mark_finished(self, result: bytes) -> None:
        if self.status in (InstanceStatus.FINISHED, InstanceStatus.FAILED):
            raise ProtocolError(f"instance {self.instance_id} already terminated")
        self.status = InstanceStatus.FINISHED
        self.result = result
        self.finished_at = time.monotonic()

    def mark_failed(self, error: str, reason: str = "aborted") -> None:
        if self.status in (InstanceStatus.FINISHED, InstanceStatus.FAILED):
            raise ProtocolError(f"instance {self.instance_id} already terminated")
        self.status = InstanceStatus.FAILED
        self.error = error
        self.abort_reason = reason
        self.finished_at = time.monotonic()

    @property
    def latency(self) -> float | None:
        """Server-side latency (creation → termination), the paper's metric."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.created_at
