"""The protocol executor: a generic asyncio driver for TRI protocols.

"The executor is designed to be generic and flexible, allowing the
integration of different TRI protocols.  It is responsible for ensuring
correct execution and proper termination of an instance" (§3.5).  The
executor never inspects scheme specifics: it forwards outgoing messages,
feeds incoming ones to :meth:`update`, and polls the two readiness
predicates.

Telemetry: the executor adopts the trace active at creation time (the RPC
handler's, when the instance was started by a request at this node),
records one span per TRI round, stamps outgoing messages with the trace id,
and feeds round durations / share accept counts into the core metrics.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import time
from typing import Awaitable, Callable

from ...errors import (
    CryptoError,
    DuplicateShareError,
    ProtocolAbortedError,
    SerializationError,
)
from ...telemetry import CoreMetrics, adopt_trace
from ...workers.pool import CryptoPool, CryptoPoolUnavailable
from ..messages import ProtocolMessage
from ..tri import ThresholdRoundProtocol
from .coalescing import CryptoCoalescer
from .instance import InstanceRecord

logger = logging.getLogger(__name__)

SendFn = Callable[[ProtocolMessage], Awaitable[None]]

#: When the round-progress watchdog fires, as a fraction of the instance
#: timeout: late enough that the first transmission had a fair chance,
#: early enough that the re-broadcast can still complete the quorum.
WATCHDOG_FRACTION = 0.5


class ProtocolExecutor:
    """Drives one protocol instance to termination."""

    def __init__(
        self,
        protocol: ThresholdRoundProtocol,
        record: InstanceRecord,
        send: SendFn,
        timeout: float | None = None,
        metrics: CoreMetrics | None = None,
        crypto_pool: CryptoPool | None = None,
        coalescer: CryptoCoalescer | None = None,
    ):
        self.protocol = protocol
        self.record = record
        self._send = send
        self._timeout = timeout
        self._metrics = metrics
        self._pool = crypto_pool
        self._coalescer = coalescer
        self.inbox: asyncio.Queue[ProtocolMessage] = asyncio.Queue()
        # Inherit the RPC handler's trace when one is active (the request
        # entered at this node); otherwise the instance gets its own trace
        # (the request entered at a peer and reached us as shares).
        self.trace = adopt_trace(f"instance:{protocol.instance_id}")
        self.record.trace = self.trace
        self._round_started: float | None = None
        # Graceful-degradation state: message outcomes feed the structured
        # abort reason, the last outgoing batch feeds the watchdog.
        self.accepted = 0
        self.rejected = 0
        self.duplicates = 0
        self._last_outgoing: list[ProtocolMessage] = []
        self._watchdog_task: asyncio.Task | None = None
        # Created lazily: the executor may be constructed before the event
        # loop runs, and get_event_loop() outside a running loop is both
        # deprecated and a cross-loop hazard.
        self._result_future: asyncio.Future[bytes] | None = None

    @property
    def result_future(self) -> "asyncio.Future[bytes]":
        if self._result_future is None:
            self._result_future = asyncio.get_running_loop().create_future()
        return self._result_future

    async def deliver(self, message: ProtocolMessage) -> None:
        """Called by the instance manager for every routed network message."""
        await self.inbox.put(message)

    async def run(self) -> None:
        """Execute until the protocol finalizes, aborts, or times out."""
        self.record.mark_running()
        if self._timeout is not None:
            self._watchdog_task = asyncio.get_running_loop().create_task(
                self._watchdog(self._timeout * WATCHDOG_FRACTION)
            )
        try:
            if self._timeout is not None:
                await asyncio.wait_for(self._run_inner(), self._timeout)
            else:
                await self._run_inner()
        except asyncio.TimeoutError:
            reason, detail = self._classify_timeout()
            self._fail(
                f"instance {self.protocol.instance_id} timed out ({detail})",
                reason,
            )
        except ProtocolAbortedError as exc:
            self._fail(
                f"protocol aborted: {exc}",
                getattr(exc, "reason", "aborted"),
            )
        except CryptoError as exc:
            self._fail(f"cryptographic failure: {exc}", "byzantine_detected")
        except Exception as exc:  # noqa: BLE001 - report, don't crash the node
            logger.exception("executor crashed for %s", self.protocol.instance_id)
            self._fail(f"internal error: {exc}", "internal")
        finally:
            if self._watchdog_task is not None:
                self._watchdog_task.cancel()

    def _classify_timeout(self) -> tuple[str, str]:
        """Map a timeout onto the structured abort taxonomy.

        Rejected shares are evidence of byzantine peers; a quorum deficit
        with only clean messages means not enough parties answered; an
        apparent quorum that still timed out stays a plain ``timeout``.
        """
        progress = self.protocol.progress()
        detail = (
            f"{progress[0]}/{progress[1]} shares"
            if progress is not None
            else "progress unknown"
        )
        detail += f", {self.rejected} rejected"
        if self.rejected > 0:
            return "byzantine_detected", detail
        if progress is not None and progress[0] < progress[1]:
            return "insufficient_shares", detail
        return "timeout", detail

    async def _watchdog(self, delay: float) -> None:
        """Round-progress watchdog: one re-broadcast before the timeout.

        A dropped share on a lossy link is otherwise fatal to a one-shot
        protocol; re-sending this node's current-round messages once gives
        the quorum a second chance at a fraction of the timeout budget.
        """
        try:
            await asyncio.sleep(delay)
        except asyncio.CancelledError:
            return
        if self.protocol.finalized or not self._last_outgoing:
            return
        progress = self.protocol.progress()
        if progress is not None and progress[0] >= progress[1]:
            return  # quorum already reached; finalization is in flight
        self.trace.event(
            "rebroadcast",
            round=self.protocol.round,
            have=progress[0] if progress else -1,
            need=progress[1] if progress else -1,
        )
        if self._metrics is not None:
            self._metrics.rebroadcasts.labels(self.record.scheme).inc()
        for message in list(self._last_outgoing):
            try:
                await self._send(self._stamp(message))
            except Exception:  # noqa: BLE001 - best effort, transport may be down
                logger.warning(
                    "watchdog re-broadcast failed for %s",
                    self.protocol.instance_id,
                )
                return

    def _stamp(self, message: ProtocolMessage) -> ProtocolMessage:
        """Tag an outgoing message with this instance's trace id."""
        if message.trace_id:
            return message
        return dataclasses.replace(message, trace_id=self.trace.trace_id)

    def _close_round(self) -> None:
        """Record the span/duration of the round that just completed."""
        if self._round_started is None:
            return
        now = self.trace.elapsed()
        duration = time.perf_counter() - self._round_started
        round_number = self.protocol.round
        self.trace.add_span(
            f"round-{round_number}", now - duration, now, round=round_number
        )
        if self._metrics is not None:
            self._metrics.round_seconds.labels(
                self.record.scheme, str(round_number)
            ).observe(duration)
        self._round_started = None

    async def _send_round(self, messages: list[ProtocolMessage]) -> None:
        self._last_outgoing = list(messages)
        for message in messages:
            await self._send(self._stamp(message))

    async def _run_inner(self) -> None:
        self._round_started = time.perf_counter()
        # Precomputed material staged on the protocol (a pooled share, a
        # FROST nonce set) replaces the first round's crypto entirely; the
        # on-demand path below stays the fallback when nothing was staged.
        first: list[ProtocolMessage] | None = None
        if self.protocol.supports_precompute:
            first = self.protocol.consume_precomputed()
            if first is not None:
                self.trace.event("precomputed", round=self.protocol.round)
        if first is None:
            first = await self._compute_round()
        await self._send_round(first)
        while True:
            if self.protocol.is_ready_to_finalize():
                self._close_round()
                self._finish(self.protocol.finalize())
                return
            message = await self.inbox.get()
            if self._pooled_admission():
                # Batched share admission: drain whatever else has queued
                # up behind this message and verify the whole batch as one
                # worker task instead of one pairing check at a time.
                batch = [message]
                while True:
                    try:
                        batch.append(self.inbox.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                await self._admit_batch(batch)
            else:
                self._admit_inline(message)
            if self.protocol.is_ready_to_finalize():
                self._close_round()
                self._finish(self.protocol.finalize())
                return
            if self.protocol.is_ready_for_next_round():
                self._close_round()
                self.protocol.advance_round()
                self._round_started = time.perf_counter()
                await self._send_round(await self._compute_round())

    def _pooled_admission(self) -> bool:
        return (
            self._pool is not None
            and self._pool.enabled
            and self.protocol.supports_offload
        )

    async def _run_pooled(self, op: str, fn, args: tuple):
        """One pool execution, through the coalescer when one is wired."""
        if self._coalescer is not None:
            return await self._coalescer.run(op, fn, args)
        return await self._pool.run(op, fn, *args)

    async def _compute_round(self) -> list[ProtocolMessage]:
        """do_round, via the crypto pool when the policy rules to offload.

        Both paths are timed and fed back to the pool's latency EWMAs, so
        the adaptive policy keeps learning whichever way it ruled.
        """
        if self._pool is not None and self._pool.enabled:
            task = self.protocol.offload_round()
            if task is not None:
                op, fn, args = task
                if self._pool.decide(op).offload:
                    started = time.perf_counter()
                    try:
                        result = await self._run_pooled(op, fn, args)
                    except CryptoPoolUnavailable:
                        pass  # degrade to inline; the pool counted the fallback
                    else:
                        self._pool.observe(
                            op, "pool", time.perf_counter() - started
                        )
                        return self.protocol.apply_round(result)
                started = time.perf_counter()
                messages = self.protocol.do_round()
                self._pool.observe(op, "inline", time.perf_counter() - started)
                return messages
        return self.protocol.do_round()

    def _admit_inline(self, message: ProtocolMessage) -> None:
        """Feed one message to update(), classifying the outcome."""
        try:
            self.protocol.update(message)
        except ProtocolAbortedError:
            raise
        except DuplicateShareError:
            # Benign: transport-level duplicates and watchdog
            # re-broadcasts echo shares we already hold.  Not evidence
            # of byzantine behaviour.
            self.duplicates += 1
            self._note_message(message, "duplicate")
        except (CryptoError, SerializationError) as exc:
            # A bad share from a faulty party: drop it and keep waiting;
            # robust schemes terminate as long as t+1 honest shares arrive.
            logger.warning(
                "instance %s: rejected message from party %d: %s",
                self.protocol.instance_id,
                message.sender,
                exc,
            )
            self.rejected += 1
            self._note_message(message, "rejected")
        else:
            self.accepted += 1
            self._note_message(message, "accepted")

    async def _admit_batch(self, batch: list[ProtocolMessage]) -> None:
        """Admit a drained inbox batch through one pooled verification.

        Own-broadcast echoes never need verification (update() no-ops on
        them); peer payloads are batch-verified in a single worker task
        and admitted per the worker's per-index verdicts.  Any pool
        failure degrades the whole batch to the inline path.
        """
        own = [m for m in batch if m.sender == self.protocol.party_id]
        peers = [m for m in batch if m.sender != self.protocol.party_id]
        # Cap verification work at the quorum deficit.  The sequential path
        # admits one share at a time and stops the moment quorum forms, so
        # shares past the deficit are never verified there; a drained batch
        # must not pay for them either (on a 1-core host that surplus alone
        # doubled per-request latency).  The surplus goes back on the inbox
        # unverified — if a capped share turns out to be a duplicate or
        # invalid, the next loop iteration re-drains it against a fresh
        # deficit.  The floor of one keeps the loop live: every iteration
        # consumes at least the message it dequeued.
        progress = self.protocol.progress()
        if progress is not None and peers:
            have, need = progress
            deficit = max(1, need - have)
            if len(peers) > deficit:
                for message in peers[deficit:]:
                    self.inbox.put_nowait(message)
                peers = peers[:deficit]
        verdicts: list | None = None
        op: str | None = None
        if peers:
            task = self.protocol.offload_verify([m.payload for m in peers])
            if task is not None:
                op, fn, args = task
                if self._pool.decide(op).offload:
                    started = time.perf_counter()
                    try:
                        verdicts = await self._run_pooled(op, fn, args)
                    except CryptoPoolUnavailable:
                        verdicts = None
                    else:
                        self._pool.observe(
                            op,
                            "pool",
                            time.perf_counter() - started,
                            items=len(peers),
                        )
        if peers and (verdicts is None or len(verdicts) != len(peers)):
            # Policy ruled inline, the pool degraded, or the verdict shape
            # was wrong: admit the (deficit-capped) batch inline — and time
            # it, so the policy's inline EWMA keeps learning.
            started = time.perf_counter()
            for message in own + peers:
                self._admit_inline(message)
            if op is not None:
                self._pool.observe(
                    op, "inline", time.perf_counter() - started, items=len(peers)
                )
            return
        for message in own:
            self._admit_inline(message)
        for message, verdict in zip(peers, verdicts or []):
            if verdict is not None:
                logger.warning(
                    "instance %s: rejected message from party %d: %s",
                    self.protocol.instance_id,
                    message.sender,
                    verdict,
                )
                self.rejected += 1
                self._note_message(message, "rejected")
                continue
            try:
                self.protocol.admit_verified(message.payload)
            except ProtocolAbortedError:
                raise
            except DuplicateShareError:
                self.duplicates += 1
                self._note_message(message, "duplicate")
            except (CryptoError, SerializationError) as exc:
                logger.warning(
                    "instance %s: rejected message from party %d: %s",
                    self.protocol.instance_id,
                    message.sender,
                    exc,
                )
                self.rejected += 1
                self._note_message(message, "rejected")
            else:
                self.accepted += 1
                self._note_message(message, "accepted")

    def _note_message(self, message: ProtocolMessage, outcome: str) -> None:
        """One received share: a hop event on the trace plus a counter."""
        self.trace.event(
            "hop",
            sender=message.sender,
            round=message.round,
            outcome=outcome,
            origin_trace=message.trace_id,
        )
        if self._metrics is not None:
            self._metrics.messages.labels(self.record.scheme, outcome).inc()

    def _finish(self, result: bytes) -> None:
        self.record.mark_finished(result)
        self._observe_termination("finished")
        if not self.result_future.done():
            self.result_future.set_result(result)

    def _fail(self, error: str, reason: str = "aborted") -> None:
        self._close_round()
        self.record.mark_failed(error, reason)
        self._observe_termination("failed")
        if self._metrics is not None:
            self._metrics.aborts.labels(self.record.scheme, reason).inc()
        if not self.result_future.done():
            self.result_future.set_exception(ProtocolAbortedError(error, reason))

    def _observe_termination(self, status: str) -> None:
        if self._metrics is None:
            return
        self._metrics.instances.labels(self.record.scheme, status).inc()
        # Only successful instances enter the latency histogram (failures
        # and timeouts would skew the paper's server-side latency metric).
        if status == "finished" and self.record.latency is not None:
            self._metrics.instance_seconds.labels(self.record.scheme).observe(
                self.record.latency
            )