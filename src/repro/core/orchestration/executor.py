"""The protocol executor: a generic asyncio driver for TRI protocols.

"The executor is designed to be generic and flexible, allowing the
integration of different TRI protocols.  It is responsible for ensuring
correct execution and proper termination of an instance" (§3.5).  The
executor never inspects scheme specifics: it forwards outgoing messages,
feeds incoming ones to :meth:`update`, and polls the two readiness
predicates.

Telemetry: the executor adopts the trace active at creation time (the RPC
handler's, when the instance was started by a request at this node),
records one span per TRI round, stamps outgoing messages with the trace id,
and feeds round durations / share accept counts into the core metrics.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import time
from typing import Awaitable, Callable

from ...errors import CryptoError, ProtocolAbortedError, SerializationError
from ...telemetry import CoreMetrics, adopt_trace
from ..messages import ProtocolMessage
from ..tri import ThresholdRoundProtocol
from .instance import InstanceRecord

logger = logging.getLogger(__name__)

SendFn = Callable[[ProtocolMessage], Awaitable[None]]


class ProtocolExecutor:
    """Drives one protocol instance to termination."""

    def __init__(
        self,
        protocol: ThresholdRoundProtocol,
        record: InstanceRecord,
        send: SendFn,
        timeout: float | None = None,
        metrics: CoreMetrics | None = None,
    ):
        self.protocol = protocol
        self.record = record
        self._send = send
        self._timeout = timeout
        self._metrics = metrics
        self.inbox: asyncio.Queue[ProtocolMessage] = asyncio.Queue()
        # Inherit the RPC handler's trace when one is active (the request
        # entered at this node); otherwise the instance gets its own trace
        # (the request entered at a peer and reached us as shares).
        self.trace = adopt_trace(f"instance:{protocol.instance_id}")
        self.record.trace = self.trace
        self._round_started: float | None = None
        # Created lazily: the executor may be constructed before the event
        # loop runs, and get_event_loop() outside a running loop is both
        # deprecated and a cross-loop hazard.
        self._result_future: asyncio.Future[bytes] | None = None

    @property
    def result_future(self) -> "asyncio.Future[bytes]":
        if self._result_future is None:
            self._result_future = asyncio.get_running_loop().create_future()
        return self._result_future

    async def deliver(self, message: ProtocolMessage) -> None:
        """Called by the instance manager for every routed network message."""
        await self.inbox.put(message)

    async def run(self) -> None:
        """Execute until the protocol finalizes, aborts, or times out."""
        self.record.mark_running()
        try:
            if self._timeout is not None:
                await asyncio.wait_for(self._run_inner(), self._timeout)
            else:
                await self._run_inner()
        except asyncio.TimeoutError:
            self._fail(f"instance {self.protocol.instance_id} timed out")
        except ProtocolAbortedError as exc:
            self._fail(f"protocol aborted: {exc}")
        except CryptoError as exc:
            self._fail(f"cryptographic failure: {exc}")
        except Exception as exc:  # noqa: BLE001 - report, don't crash the node
            logger.exception("executor crashed for %s", self.protocol.instance_id)
            self._fail(f"internal error: {exc}")

    def _stamp(self, message: ProtocolMessage) -> ProtocolMessage:
        """Tag an outgoing message with this instance's trace id."""
        if message.trace_id:
            return message
        return dataclasses.replace(message, trace_id=self.trace.trace_id)

    def _close_round(self) -> None:
        """Record the span/duration of the round that just completed."""
        if self._round_started is None:
            return
        now = self.trace.elapsed()
        duration = time.perf_counter() - self._round_started
        round_number = self.protocol.round
        self.trace.add_span(
            f"round-{round_number}", now - duration, now, round=round_number
        )
        if self._metrics is not None:
            self._metrics.round_seconds.labels(
                self.record.scheme, str(round_number)
            ).observe(duration)
        self._round_started = None

    async def _run_inner(self) -> None:
        self._round_started = time.perf_counter()
        for message in self.protocol.do_round():
            await self._send(self._stamp(message))
        while True:
            if self.protocol.is_ready_to_finalize():
                self._close_round()
                self._finish(self.protocol.finalize())
                return
            message = await self.inbox.get()
            try:
                self.protocol.update(message)
            except ProtocolAbortedError:
                raise
            except (CryptoError, SerializationError) as exc:
                # A bad share from a faulty party: drop it and keep waiting;
                # robust schemes terminate as long as t+1 honest shares arrive.
                logger.warning(
                    "instance %s: rejected message from party %d: %s",
                    self.protocol.instance_id,
                    message.sender,
                    exc,
                )
                self._note_message(message, "rejected")
                continue
            self._note_message(message, "accepted")
            if self.protocol.is_ready_to_finalize():
                self._close_round()
                self._finish(self.protocol.finalize())
                return
            if self.protocol.is_ready_for_next_round():
                self._close_round()
                self.protocol.advance_round()
                self._round_started = time.perf_counter()
                for outgoing in self.protocol.do_round():
                    await self._send(self._stamp(outgoing))

    def _note_message(self, message: ProtocolMessage, outcome: str) -> None:
        """One received share: a hop event on the trace plus a counter."""
        self.trace.event(
            "hop",
            sender=message.sender,
            round=message.round,
            outcome=outcome,
            origin_trace=message.trace_id,
        )
        if self._metrics is not None:
            self._metrics.messages.labels(self.record.scheme, outcome).inc()

    def _finish(self, result: bytes) -> None:
        self.record.mark_finished(result)
        self._observe_termination("finished")
        if not self.result_future.done():
            self.result_future.set_result(result)

    def _fail(self, reason: str) -> None:
        self._close_round()
        self.record.mark_failed(reason)
        self._observe_termination("failed")
        if not self.result_future.done():
            self.result_future.set_exception(ProtocolAbortedError(reason))

    def _observe_termination(self, status: str) -> None:
        if self._metrics is None:
            return
        self._metrics.instances.labels(self.record.scheme, status).inc()
        # Only successful instances enter the latency histogram (failures
        # and timeouts would skew the paper's server-side latency metric).
        if status == "finished" and self.record.latency is not None:
            self._metrics.instance_seconds.labels(self.record.scheme).observe(
                self.record.latency
            )