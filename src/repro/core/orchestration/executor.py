"""The protocol executor: a generic asyncio driver for TRI protocols.

"The executor is designed to be generic and flexible, allowing the
integration of different TRI protocols.  It is responsible for ensuring
correct execution and proper termination of an instance" (§3.5).  The
executor never inspects scheme specifics: it forwards outgoing messages,
feeds incoming ones to :meth:`update`, and polls the two readiness
predicates.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Awaitable, Callable

from ...errors import CryptoError, ProtocolAbortedError, SerializationError
from ..messages import ProtocolMessage
from ..tri import ThresholdRoundProtocol
from .instance import InstanceRecord

logger = logging.getLogger(__name__)

SendFn = Callable[[ProtocolMessage], Awaitable[None]]


class ProtocolExecutor:
    """Drives one protocol instance to termination."""

    def __init__(
        self,
        protocol: ThresholdRoundProtocol,
        record: InstanceRecord,
        send: SendFn,
        timeout: float | None = None,
    ):
        self.protocol = protocol
        self.record = record
        self._send = send
        self._timeout = timeout
        self.inbox: asyncio.Queue[ProtocolMessage] = asyncio.Queue()
        # Created lazily: the executor may be constructed before the event
        # loop runs, and get_event_loop() outside a running loop is both
        # deprecated and a cross-loop hazard.
        self._result_future: asyncio.Future[bytes] | None = None

    @property
    def result_future(self) -> "asyncio.Future[bytes]":
        if self._result_future is None:
            self._result_future = asyncio.get_running_loop().create_future()
        return self._result_future

    async def deliver(self, message: ProtocolMessage) -> None:
        """Called by the instance manager for every routed network message."""
        await self.inbox.put(message)

    async def run(self) -> None:
        """Execute until the protocol finalizes, aborts, or times out."""
        self.record.mark_running()
        try:
            if self._timeout is not None:
                await asyncio.wait_for(self._run_inner(), self._timeout)
            else:
                await self._run_inner()
        except asyncio.TimeoutError:
            self._fail(f"instance {self.protocol.instance_id} timed out")
        except ProtocolAbortedError as exc:
            self._fail(f"protocol aborted: {exc}")
        except CryptoError as exc:
            self._fail(f"cryptographic failure: {exc}")
        except Exception as exc:  # noqa: BLE001 - report, don't crash the node
            logger.exception("executor crashed for %s", self.protocol.instance_id)
            self._fail(f"internal error: {exc}")

    async def _run_inner(self) -> None:
        for message in self.protocol.do_round():
            await self._send(message)
        while True:
            if self.protocol.is_ready_to_finalize():
                self._finish(self.protocol.finalize())
                return
            message = await self.inbox.get()
            try:
                self.protocol.update(message)
            except ProtocolAbortedError:
                raise
            except (CryptoError, SerializationError) as exc:
                # A bad share from a faulty party: drop it and keep waiting;
                # robust schemes terminate as long as t+1 honest shares arrive.
                logger.warning(
                    "instance %s: rejected message from party %d: %s",
                    self.protocol.instance_id,
                    message.sender,
                    exc,
                )
                continue
            if self.protocol.is_ready_to_finalize():
                self._finish(self.protocol.finalize())
                return
            if self.protocol.is_ready_for_next_round():
                self.protocol.advance_round()
                for outgoing in self.protocol.do_round():
                    await self._send(outgoing)

    def _finish(self, result: bytes) -> None:
        self.record.mark_finished(result)
        if not self.result_future.done():
            self.result_future.set_result(result)

    def _fail(self, reason: str) -> None:
        self.record.mark_failed(reason)
        if not self.result_future.done():
            self.result_future.set_exception(ProtocolAbortedError(reason))
