"""Pool-refill task for the precompute pipeline.

One worker task creates a whole batch of own-share payloads from their
offload specs, so an announce of N upcoming requests costs one process
round-trip instead of N.  Key material rides the content-addressed blob
protocol of :mod:`repro.workers.tasks` (``blobs`` is the one-shot retry
attachment after a worker-side cache miss); misses are raised for the
whole batch up front so the pool's single retry re-runs it complete.
"""

from __future__ import annotations

from .tasks import (
    BlobCacheMissError,
    _missing_digests,
    create_share,
    install_blob,
)


def refill_shares(specs: list[dict], blobs: dict | None = None) -> list[bytes]:
    """Create the own-share payload for each spec, in announce order."""
    if blobs:
        install_blob(list(blobs.items()))
    missing: set[str] = set()
    for spec in specs:
        missing.update(_missing_digests(spec, include_share=True))
    if missing:
        raise BlobCacheMissError(sorted(missing))
    return [create_share(spec) for spec in specs]
