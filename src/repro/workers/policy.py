"""The adaptive offload policy: pool submission as a measured decision.

PR 5 gated offload on a static flag (``pool.enabled``), and the ablation
in ``BENCH_offload.json`` showed why that is wrong: on a 1-core host the
pool *costs* throughput (0.66× ops/s) because every task pays pickle +
IPC + scheduling against a worker that shares the only core with the
event loop.  The same deployment on a multi-core host gains ≥1.5×.
Whether to offload is a property of the host and the observed latencies,
not of the configuration file.

:class:`OffloadPolicy` makes the call per operation kind from three
inputs, in order:

1. **Core count** — with fewer than ``min_cores`` logical CPUs there is
   no spare core for a worker; everything stays inline (``few_cores``).
2. **Queue depth** — a pool backlog deeper than
   ``workers × max_queue_per_worker`` means new work would wait longer in
   the pool than it takes to run inline; spill inline (``queue_full``).
3. **Latency EWMAs** — per-(op, path) exponentially weighted moving
   averages of observed per-item latency.  When the pool's EWMA exceeds
   the inline EWMA by ``slowdown_margin``, stay inline (``pool_slower``)
   — except every ``probe_every``-th suppressed decision, which offloads
   anyway (``probe``) so the pool EWMA can recover once conditions change.

Decisions are counted per (op, choice, reason) — exported as
``repro_crypto_pool_policy_decisions_total`` by the pool — and surfaced
in ``stats()["crypto_pool"]["policy"]``.  ``mode="always"`` and
``mode="never"`` short-circuit the matrix for benchmarks and tests that
need the static PR-5 behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Valid values of ``NodeConfig.offload_policy`` / ``OffloadPolicy(mode=)``.
POLICY_MODES = ("adaptive", "always", "never")


@dataclass(frozen=True)
class PolicyDecision:
    """One offload ruling: where to run, and which gate decided."""

    choice: str  # "offload" | "inline"
    reason: str

    @property
    def offload(self) -> bool:
        return self.choice == "offload"


_INLINE = "inline"
_OFFLOAD = "offload"


class OffloadPolicy:
    """Per-op inline-vs-offload decisions from cores, queue depth, EWMAs."""

    def __init__(
        self,
        mode: str = "adaptive",
        min_cores: int = 2,
        max_queue_per_worker: int = 8,
        slowdown_margin: float = 1.25,
        probe_every: int = 16,
        alpha: float = 0.2,
        cpu_count: int | None = None,
    ):
        if mode not in POLICY_MODES:
            raise ConfigurationError(
                f"offload policy mode must be one of {POLICY_MODES}, got {mode!r}"
            )
        self.mode = mode
        self._min_cores = max(1, int(min_cores))
        self._max_queue_per_worker = max(1, int(max_queue_per_worker))
        self._slowdown_margin = float(slowdown_margin)
        self._probe_every = max(2, int(probe_every))
        self._alpha = float(alpha)
        self._cpu_count = (
            int(cpu_count) if cpu_count is not None else (os.cpu_count() or 1)
        )
        # (op, path) -> EWMA of per-item seconds; path is "pool" | "inline".
        self._ewma: dict[tuple[str, str], float] = {}
        # op -> count of decisions suppressed by pool_slower (drives probes).
        self._suppressed: dict[str, int] = {}
        # (choice, reason) -> decision count, for stats().
        self._decisions: dict[tuple[str, str], int] = {}

    @property
    def cpu_count(self) -> int:
        return self._cpu_count

    # -- the decision matrix --------------------------------------------------

    def decide(self, op: str, queue_depth: int, workers: int) -> PolicyDecision:
        """Rule on one prospective pool submission for operation ``op``."""
        decision = self._decide(op, queue_depth, workers)
        key = (decision.choice, decision.reason)
        self._decisions[key] = self._decisions.get(key, 0) + 1
        return decision

    def _decide(self, op: str, queue_depth: int, workers: int) -> PolicyDecision:
        if self.mode == "always":
            return PolicyDecision(_OFFLOAD, "forced")
        if self.mode == "never":
            return PolicyDecision(_INLINE, "forced")
        if self._cpu_count < self._min_cores:
            return PolicyDecision(_INLINE, "few_cores")
        if workers > 0 and queue_depth >= workers * self._max_queue_per_worker:
            return PolicyDecision(_INLINE, "queue_full")
        pool_ewma = self._ewma.get((op, "pool"))
        inline_ewma = self._ewma.get((op, "inline"))
        if (
            pool_ewma is not None
            and inline_ewma is not None
            and pool_ewma > inline_ewma * self._slowdown_margin
        ):
            suppressed = self._suppressed.get(op, 0) + 1
            self._suppressed[op] = suppressed
            if suppressed % self._probe_every == 0:
                return PolicyDecision(_OFFLOAD, "probe")
            return PolicyDecision(_INLINE, "pool_slower")
        if pool_ewma is None and inline_ewma is None:
            return PolicyDecision(_OFFLOAD, "no_data")
        return PolicyDecision(_OFFLOAD, "pool_ok")

    # -- learning -------------------------------------------------------------

    def observe(self, op: str, path: str, seconds: float, items: int = 1) -> None:
        """Feed one measured execution back into the per-item EWMA.

        ``path`` is ``"pool"`` (submit-to-result through the workers,
        coalescing window included) or ``"inline"`` (the same computation
        on the event loop); ``items`` normalizes batched executions so the
        two paths stay comparable per share.
        """
        sample = max(0.0, float(seconds)) / max(1, int(items))
        key = (op, path)
        previous = self._ewma.get(key)
        if previous is None:
            self._ewma[key] = sample
        else:
            self._ewma[key] = self._alpha * sample + (1 - self._alpha) * previous

    def ewma(self, op: str, path: str) -> float | None:
        return self._ewma.get((op, path))

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Snapshot for ``stats()["crypto_pool"]["policy"]``."""
        by_choice: dict[str, int] = {}
        by_reason: dict[str, int] = {}
        for (choice, reason), count in self._decisions.items():
            by_choice[choice] = by_choice.get(choice, 0) + count
            by_reason[reason] = by_reason.get(reason, 0) + count
        ewma_ms: dict[str, dict[str, float]] = {}
        for (op, path), value in self._ewma.items():
            ewma_ms.setdefault(op, {})[path] = round(value * 1000, 3)
        return {
            "mode": self.mode,
            "cores": self._cpu_count,
            "min_cores": self._min_cores,
            "decisions": by_choice,
            "reasons": by_reason,
            "ewma_ms": ewma_ms,
        }
