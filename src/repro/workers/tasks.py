"""Pickle-safe worker tasks for the crypto pool.

Every function in this module runs inside a spawn-context worker process,
so the contract is strict:

* top-level functions only (spawn pickles them by reference);
* arguments and results are primitives — ``bytes``, ``str``, ``int``,
  lists and dicts thereof — never group elements or key objects;
* key material is **content-addressed** (see :mod:`repro.workers.blobs`):
  specs reference export blobs by digest, each worker holds a bounded LRU
  of blobs installed at spawn time (:func:`warm_worker`), via the
  explicit :func:`install_blob` task, or piggybacked on a task's
  ``blobs`` argument.  A digest the worker cannot resolve raises
  :class:`BlobCacheMissError`, which the pool answers by retrying the
  task once with the blobs attached — key material crosses the process
  boundary at most once per worker, not once per task;
* verification tasks report per-payload verdicts (``None`` = valid,
  ``str`` = rejection reason) instead of raising, so a byzantine payload
  cannot abort the whole batch and nothing exotic has to cross the
  process boundary as a pickled exception.

The *operation spec* shared by the share tasks is a plain dict::

    {"scheme": "bls04", "public_digest": <hex sha256>,
     "kind": "sign" | "decrypt" | "coin", "data": <request bytes>,
     "share_digest": <hex sha256>,          # create_share only
     "blobs": {digest: blob, ...}}          # optional piggyback install

Legacy inline blobs (``"public"`` / ``"share"`` keys carrying the raw
export bytes) remain accepted so the tasks stay usable standalone.

This module deliberately imports only the ``schemes`` layer (never
``core``), so protocol modules can import it without a cycle.
"""

from __future__ import annotations

import os
import time

from ..schemes import bls04, bz03, cks05, kg20, sg02, sh00
from ..schemes.base import get_scheme
from ..schemes.keystore import import_key_share, import_public_key
from .blobs import BlobStore

#: Groups whose generator fixed-base tables each worker builds at spawn
#: time.  The PR-1 precompute caches are per-process; without warming, a
#: fresh worker would re-derive them cold in the middle of its first task.
DEFAULT_WARM_GROUPS: tuple[str, ...] = ("ed25519", "bn254g1", "bn254g2")

#: This worker process's blob cache (digest -> export blob + parsed key).
#: One per process: the parent's copy of this module keeps its own store
#: via :func:`repro.workers.blobs.parent_store` instead.
_worker_blobs = BlobStore()


class BlobCacheMissError(Exception):
    """A spec referenced digests this worker does not hold.

    Travels back to the parent as a pickled exception; the pool resolves
    the digests from its parent-side store and retries the task once with
    the blobs attached.  Carrying the digest list keeps the retry minimal.
    """

    def __init__(self, digests: list[str]):
        super().__init__(f"worker missing blobs: {sorted(digests)}")
        self.digests = sorted(digests)

    def __reduce__(self):
        return (BlobCacheMissError, (self.digests,))


def warm_worker(
    group_names: tuple[str, ...] = DEFAULT_WARM_GROUPS,
    blob_items: tuple[tuple[str, bytes], ...] = (),
    table_digests: tuple[str, ...] = (),
) -> None:
    """Process-pool initializer: build the hot fixed-base tables once.

    Also forces the heavyweight curve imports (the BN254 tower does real
    work at import time), so the first real task measures cryptography,
    not interpreter warm-up — and pre-installs the parent's current key
    blobs so the steady state never ships key material per task.

    ``table_digests`` names blobs (already in ``blob_items``) that hold
    serialized fixed-base tables; those install directly into this
    worker's precompute cache, so the generator warm-up below finds them
    already present instead of rebuilding (deserializing is 2–3× cheaper
    than building).  A table blob that fails its checks is skipped — the
    worker then simply rebuilds that table on demand.
    """
    from ..groups.precompute import fixed_base_table, install_table
    from ..groups.registry import get_group
    from ..groups.tables import table_from_blob

    for digest, blob in blob_items:
        _worker_blobs.add(digest, blob)
    for digest in table_digests:
        blob = _worker_blobs.get_blob(digest)
        if blob is None:
            continue
        try:
            install_table(table_from_blob(blob, source=f"table blob {digest[:12]}"))
        except Exception:  # noqa: BLE001 - a bad table must not kill the worker
            continue
    for name in group_names:
        group = get_group(name)
        fixed_base_table(group.generator())


def install_blob(blob_items: list[tuple[str, bytes]]) -> int:
    """Install content-addressed blobs into this worker's cache.

    Returns the number of entries now resident; used by the pool to ship
    key material eagerly and by tests to stage worker state.
    """
    for digest, blob in blob_items:
        _worker_blobs.add(digest, blob)
    return len(_worker_blobs)


def worker_health() -> dict:
    """Tiny diagnostic task: which process am I, and is it warm?"""
    from ..groups.precompute import precompute_stats

    return {
        "pid": os.getpid(),
        "precompute": precompute_stats(),
        "blob_cache": _worker_blobs.stats(),
    }


def hold_worker(seconds: float) -> int:
    """Diagnostic task that pins a worker for ``seconds``.

    Used by crash tests that need several tasks in flight on one
    executor generation when a worker is SIGKILLed.
    """
    time.sleep(max(0.0, float(seconds)))
    return os.getpid()


# ---------------------------------------------------------------------------
# Digest resolution against the worker blob cache.
# ---------------------------------------------------------------------------


def _spec_blobs(spec: dict) -> dict:
    return spec.get("blobs") or {}


def _missing_digests(spec: dict, include_share: bool) -> list[str]:
    shipped = _spec_blobs(spec)
    missing = []
    for key, raw_key in (("public_digest", "public"),) + (
        (("share_digest", "share"),) if include_share else ()
    ):
        digest = spec.get(key)
        if digest is None:
            continue  # legacy raw blob under raw_key
        if digest not in _worker_blobs and digest not in shipped:
            missing.append(digest)
    return missing


def _check_spec(spec: dict, include_share: bool) -> None:
    """Install piggybacked blobs; raise for digests nobody can resolve."""
    for digest, blob in _spec_blobs(spec).items():
        _worker_blobs.add(digest, blob)
    missing = _missing_digests(spec, include_share)
    if missing:
        raise BlobCacheMissError(missing)


def _resolve_public(spec: dict):
    """(scheme_name, public_key) from a digest or a legacy inline blob."""
    digest = spec.get("public_digest")
    if digest is None:
        return import_public_key(spec["public"])
    resolved = _worker_blobs.get_object(digest, import_public_key)
    if resolved is None:
        raise BlobCacheMissError([digest])
    return resolved


def _resolve_share(spec: dict):
    """(scheme_name, key_share) from a digest or a legacy inline blob."""
    digest = spec.get("share_digest")
    if digest is None:
        return import_key_share(spec["share"])
    resolved = _worker_blobs.get_object(digest, import_key_share)
    if resolved is None:
        raise BlobCacheMissError([digest])
    return resolved


# ---------------------------------------------------------------------------
# Shared decode helpers (mirror the adapters in core.protocols.operations).
# ---------------------------------------------------------------------------


def _decode_request(scheme_name: str, public, kind: str, data: bytes):
    """Rebuild the request context (ciphertext / message / coin name)."""
    if kind == "decrypt":
        if scheme_name == "sg02":
            return sg02.Sg02Ciphertext.from_bytes(data, public.group)
        return bz03.Bz03Ciphertext.from_bytes(data)
    return data  # sign: message bytes; coin: coin name


def _decode_share(scheme_name: str, public, payload: bytes):
    if scheme_name == "sg02":
        return sg02.Sg02DecryptionShare.from_bytes(payload, public.group)
    if scheme_name == "bz03":
        return bz03.Bz03DecryptionShare.from_bytes(payload)
    if scheme_name == "sh00":
        return sh00.Sh00SignatureShare.from_bytes(payload)
    if scheme_name == "bls04":
        return bls04.Bls04SignatureShare.from_bytes(payload)
    if scheme_name == "cks05":
        return cks05.Cks05CoinShare.from_bytes(payload, public.group)
    if scheme_name == "kg20":
        return kg20.Kg20SignatureShare.from_bytes(payload)
    raise ValueError(f"no share decoder for scheme {scheme_name!r}")


def _verify_one(kind: str, scheme, public, context, share) -> None:
    if kind == "decrypt":
        scheme.verify_decryption_share(public, context, share)
    elif kind == "sign":
        scheme.verify_signature_share(public, context, share)
    elif kind == "coin":
        scheme.verify_coin_share(public, context, share)
    else:
        raise ValueError(f"unknown operation kind {kind!r}")


def _verify_batch(scheme_name: str, scheme, public, context, shares) -> bool:
    """One batched verification call where the scheme has one.

    Returns False when the scheme has no batch API (caller verifies share
    by share).  SG02/CKS05 batch their DLEQ proofs, BLS04 batches its
    pairing products (PR-1); BZ03 and SH00 only have per-share checks.
    """
    if scheme_name == "sg02":
        scheme.verify_decryption_shares(public, context, shares)
        return True
    if scheme_name == "cks05":
        scheme.verify_coin_shares(public, context, shares)
        return True
    if scheme_name == "bls04":
        # identify=False: the caller needs a per-index verdict, which the
        # share-by-share fallback below provides directly.
        scheme.verify_share_batch(public, context, shares, identify=False)
        return True
    return False


# ---------------------------------------------------------------------------
# The pool tasks.
# ---------------------------------------------------------------------------


def create_share(spec: dict, blobs: dict | None = None) -> bytes:
    """Compute this party's partial result (do_round's crypto) off-loop.

    Returns the serialized share; the parent process folds it back into
    the protocol state with ``apply_round``.
    """
    if blobs:
        install_blob(list(blobs.items()))
    _check_spec(spec, include_share=True)
    scheme_name, key_share = _resolve_share(spec)
    scheme = get_scheme(scheme_name)
    kind = spec["kind"]
    if kind == "decrypt":
        ciphertext = _decode_request(
            scheme_name, key_share.public, kind, spec["data"]
        )
        return scheme.create_decryption_share(key_share, ciphertext).to_bytes()
    if kind == "sign":
        return scheme.partial_sign(key_share, spec["data"]).to_bytes()
    if kind == "coin":
        return scheme.create_coin_share(key_share, spec["data"]).to_bytes()
    raise ValueError(f"unknown operation kind {kind!r}")


def create_share_batch(
    specs: list[dict], blobs: dict | None = None
) -> list[tuple[str, object]]:
    """Cross-request batch of :func:`create_share` in one pool round trip.

    The coalescing admission layer (``core.orchestration.coalescing``)
    merges concurrent instances' share creations into one task so the
    per-task pickle/IPC/scheduling overhead is paid once per window, not
    once per request.  Results are per-index tagged ``("ok", payload)`` or
    ``("error", reason)`` — one bad request must not fail its batchmates.
    Digest misses are raised for the *whole* batch up front so the pool's
    single retry re-runs it complete.
    """
    if blobs:
        install_blob(list(blobs.items()))
    missing: set[str] = set()
    for spec in specs:
        missing.update(_missing_digests(spec, include_share=True))
    if missing:
        raise BlobCacheMissError(sorted(missing))
    results: list[tuple[str, object]] = []
    for spec in specs:
        try:
            results.append(("ok", create_share(spec)))
        except Exception as exc:  # noqa: BLE001 - tagged per item
            results.append(("error", str(exc) or type(exc).__name__))
    return results


def verify_shares(
    spec: dict, payloads: list[bytes], blobs: dict | None = None
) -> list[str | None]:
    """Batched share admission: verify a drained inbox in one task.

    Verdict list is index-aligned with ``payloads``: ``None`` for a valid
    share, a reason string for a rejected one.  The happy path is a single
    batched verification; only when the batch fails (≥1 bad share) does it
    fall back to per-share checks to identify the culprits — k extra
    checks on the byzantine path, none on the honest path.
    """
    if blobs:
        install_blob(list(blobs.items()))
    _check_spec(spec, include_share=False)
    scheme_name = spec["scheme"]
    scheme = get_scheme(scheme_name)
    _, public = _resolve_public(spec)
    context = _decode_request(scheme_name, public, spec["kind"], spec["data"])

    verdicts: list[str | None] = [None] * len(payloads)
    decoded: list[tuple[int, object]] = []
    for index, payload in enumerate(payloads):
        try:
            decoded.append((index, _decode_share(scheme_name, public, payload)))
        except Exception as exc:  # noqa: BLE001 - byzantine bytes, any error
            verdicts[index] = f"malformed share payload: {exc}"
    if not decoded:
        return verdicts

    shares = [share for _, share in decoded]
    batch_failed = False
    try:
        if _verify_batch(scheme_name, scheme, public, context, shares):
            return verdicts
    except Exception:  # noqa: BLE001 - identify culprits below
        batch_failed = True
    # No batch API, or the batch contained at least one invalid share.
    for index, share in decoded:
        try:
            _verify_one(spec["kind"], scheme, public, context, share)
        except Exception as exc:  # noqa: BLE001
            verdicts[index] = str(exc) or type(exc).__name__
    if batch_failed and all(v is None for v in verdicts):
        # A batch that fails while every individual share passes can only
        # happen if the batch API itself misbehaved; reject nothing, the
        # per-share checks are authoritative.
        pass
    return verdicts


def verify_shares_multi(
    groups: list[tuple[dict, list[bytes]]], blobs: dict | None = None
) -> list[list[str | None]]:
    """Cross-request batch of :func:`verify_shares` in one round trip.

    ``groups`` pairs each instance's spec with its drained payloads; the
    result is index-aligned verdict lists.  Digest misses are raised for
    the whole batch up front, like :func:`create_share_batch`.
    """
    if blobs:
        install_blob(list(blobs.items()))
    missing: set[str] = set()
    for spec, _ in groups:
        missing.update(_missing_digests(spec, include_share=False))
    if missing:
        raise BlobCacheMissError(sorted(missing))
    return [verify_shares(spec, list(payloads)) for spec, payloads in groups]


def kg20_verify_shares(
    public_blob: bytes,
    message: bytes,
    commitment_payloads: list[bytes],
    share_payloads: list[bytes],
) -> list[str | None]:
    """FROST signature-share verification (finalize-time, round 2).

    KG20 is interactive, so its executor path stays inline, but the
    finalize-time share checks are plain DL verifications against the
    round-0 commitment list and offload cleanly.  Same verdict contract
    as :func:`verify_shares`.
    """
    _, public = import_public_key(public_blob)
    scheme = get_scheme("kg20")
    commitments = [
        kg20.NonceCommitment.from_bytes(payload, public.group)
        for payload in commitment_payloads
    ]
    verdicts: list[str | None] = []
    for payload in share_payloads:
        try:
            share = kg20.Kg20SignatureShare.from_bytes(payload)
            scheme.verify_signature_share(public, message, share, commitments)
            verdicts.append(None)
        except Exception as exc:  # noqa: BLE001
            verdicts.append(str(exc) or type(exc).__name__)
    return verdicts
