"""Content-addressed key-material blobs for the crypto pool.

PR 5 shipped the full keystore export blob inside *every* pool task: each
``create_share``/``verify_shares`` submission re-exported the key material,
re-pickled it across the process boundary, and re-imported it in the
worker — per task, for key material that never changes.  On small hosts
that serialization tax is a measurable slice of the 0.66× throughput
regression recorded in ``BENCH_offload.json``.

This module replaces the blob-per-task scheme with content addressing:

* a blob's identity is the hex SHA-256 of its bytes (:func:`content_digest`);
* each side of the process boundary holds a bounded-LRU :class:`BlobStore`
  mapping digest → blob (and, lazily, the *imported* key object, so a
  worker also skips re-parsing);
* the parent process keeps one store per process (:func:`parent_store`),
  fed by :func:`register_export`, which memoizes the keystore export
  itself so a long-lived key share is serialized once, not once per
  protocol instance;
* task specs then carry ``*_digest`` references; the blobs themselves
  travel at most once per worker — at spawn time via the warm
  initializer, or on a cache-miss retry (see ``CryptoPool.run``).

Everything here is deliberately free of ``core`` imports so both the
worker side (:mod:`repro.workers.tasks`) and the protocol adapters can use
it without cycles.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable

#: Default bound for both the parent- and worker-side stores.  Key blobs
#: are KB-scale; 128 entries comfortably covers every installed key twice
#: (public + share blob) with room for churn.
DEFAULT_CAPACITY = 128


def content_digest(blob: bytes) -> str:
    """Hex SHA-256 of the blob — its content address."""
    return hashlib.sha256(blob).hexdigest()


class BlobStore:
    """A bounded LRU of content-addressed blobs with lazy object memoization.

    Thread-safe: parent-side lookups happen on the event-loop thread while
    ``asyncio.wrap_future`` callbacks may land elsewhere, and the cost of a
    lock around dict operations is noise next to the crypto.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._capacity = max(1, int(capacity))
        # digest -> [blob, imported-object-or-None]
        self._entries: OrderedDict[str, list] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._installs = 0
        self._evictions = 0

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, blob: bytes) -> str:
        """Install a blob under its own content digest; returns the digest."""
        digest = content_digest(blob)
        self.add(digest, blob)
        return digest

    def add(self, digest: str, blob: bytes) -> None:
        """Install a blob under a caller-supplied digest (idempotent)."""
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = [blob, None]
            self._installs += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_blob(self, digest: str) -> bytes | None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(digest)
            self._hits += 1
            return entry[0]

    def get_object(self, digest: str, loader: Callable[[bytes], object]):
        """The blob's imported form, parsing it at most once per residency.

        Returns None on a missing digest.  The loaded object lives and dies
        with the blob's LRU entry, so eviction also drops the parsed copy.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(digest)
            self._hits += 1
            blob = entry[0]
            loaded = entry[1]
        if loaded is None:
            # Parse outside the lock (BN254 public keys do real work).
            loaded = loader(blob)
            with self._lock:
                entry = self._entries.get(digest)
                if entry is not None:
                    entry[1] = loaded
        return loaded

    def items(self) -> list[tuple[str, bytes]]:
        """Snapshot of (digest, blob) pairs, LRU-oldest first."""
        with self._lock:
            return [(digest, entry[0]) for digest, entry in self._entries.items()]

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self._hits,
                "misses": self._misses,
                "installs": self._installs,
                "evictions": self._evictions,
            }


_parent_store = BlobStore()

#: Export memo: (kind, scheme, id(obj)) -> (obj, digest).  Holding a strong
#: reference to the key object pins its id, so an id-reuse collision after
#: garbage collection cannot alias two different keys.  Bounded like the
#: blob store; an evicted entry simply re-exports.
_EXPORT_MEMO: OrderedDict[tuple, tuple] = OrderedDict()
_EXPORT_MEMO_CAPACITY = 256
_export_lock = threading.Lock()


def parent_store() -> BlobStore:
    """The parent-process blob store (one per process, like the caches)."""
    return _parent_store


#: Digests in the parent store that hold serialized fixed-base tables
#: (see :mod:`repro.groups.tables`).  ``warm_worker`` receives this list
#: so freshly spawned workers install the tables instead of rebuilding
#: them.  Insertion-ordered and bounded like the store itself.
_TABLE_DIGESTS: OrderedDict[str, None] = OrderedDict()
_TABLE_DIGESTS_CAPACITY = DEFAULT_CAPACITY


def register_table_blob(blob: bytes) -> str:
    """Install a serialized fixed-base table and mark it as such."""
    digest = _parent_store.put(blob)
    with _export_lock:
        _TABLE_DIGESTS[digest] = None
        _TABLE_DIGESTS.move_to_end(digest)
        while len(_TABLE_DIGESTS) > _TABLE_DIGESTS_CAPACITY:
            _TABLE_DIGESTS.popitem(last=False)
    return digest


def parent_table_digests() -> tuple[str, ...]:
    """Registered table digests still resident in the parent store."""
    with _export_lock:
        digests = tuple(_TABLE_DIGESTS)
    return tuple(d for d in digests if d in _parent_store)


def register_export(
    kind: str, scheme: str, obj, exporter: Callable[[], bytes]
) -> str:
    """Digest of ``obj``'s export blob, serializing at most once per object.

    ``exporter`` runs only on the first sighting of ``obj`` (or after memo
    eviction); the blob lands in :func:`parent_store` so the pool can ship
    it to workers on demand.
    """
    key = (kind, scheme, id(obj))
    with _export_lock:
        memo = _EXPORT_MEMO.get(key)
        if memo is not None and memo[0] is obj:
            _EXPORT_MEMO.move_to_end(key)
            digest = memo[1]
            if digest in _parent_store:
                return digest
            # Blob evicted from the store since it was memoized: fall
            # through and re-export below.
    blob = exporter()
    digest = _parent_store.put(blob)
    with _export_lock:
        _EXPORT_MEMO[key] = (obj, digest)
        _EXPORT_MEMO.move_to_end(key)
        while len(_EXPORT_MEMO) > _EXPORT_MEMO_CAPACITY:
            _EXPORT_MEMO.popitem(last=False)
    return digest
