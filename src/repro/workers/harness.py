"""Workers-on/off ablation harness: a real cluster, not the simulator.

Boots an n-node Thetacrypt cluster on a :class:`LocalHub` transport inside
one process — the configuration where inline crypto hurts most, because
all n nodes contend for a single event loop, exactly like n instances
contending for one node's loop under heavy traffic.  ``workers > 0``
attaches one shared :class:`CryptoPool` to every node (the in-process
nodes share this host's cores, so sharing the pool models one node with
that many cores).

Used by ``benchmarks/bench_fig4_capacity.py`` (the ablation panel) and
``tools/bench_smoke.py`` (the persisted ``BENCH_offload.json`` baseline).
"""

from __future__ import annotations

import asyncio
from dataclasses import asdict, dataclass, field

from ..network.local import LocalHub
from ..schemes import generate_keys
from ..schemes.base import get_scheme
from ..service.config import make_local_configs
from ..service.node import ThetacryptNode
from ..telemetry import summarize
from .policy import OffloadPolicy
from .pool import CryptoPool


@dataclass
class AblationResult:
    """One (scheme, deployment, workers) measurement."""

    scheme: str
    parties: int
    threshold: int
    workers: int
    requests: int
    duration: float
    ops_per_sec: float
    latency_p50: float
    latency_p99: float
    loop_lag_p99: float
    pool: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = asdict(self)
        # Worker pids are process-local trivia, useless in a persisted
        # baseline and different on every run.
        payload["pool"].pop("worker_pids", None)
        return payload


def _build_requests(
    scheme: str, material, count: int, tag: str
) -> list[tuple[str, bytes, bytes]]:
    """(kind, data, label) per request, encryption done up-front so the
    measured window times the threshold protocol only."""
    requests = []
    for i in range(count):
        blob = f"offload-{tag}-{i}".encode()
        if scheme in ("sg02", "bz03"):
            ciphertext = get_scheme(scheme).encrypt(
                material.public_key, blob, b"bench"
            )
            requests.append(("decrypt", ciphertext.to_bytes(), b""))
        elif scheme == "cks05":
            requests.append(("coin", blob, b""))
        else:
            requests.append(("sign", blob, b""))
    return requests


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    return sorted_values[low] + (sorted_values[high] - sorted_values[low]) * (
        position - low
    )


async def run_capacity(
    scheme: str = "bls04",
    parties: int = 16,
    threshold: int = 3,
    requests: int = 6,
    workers: int = 0,
    material=None,
    instance_timeout: float = 300.0,
    policy: str = "adaptive",
) -> AblationResult:
    """Drive ``requests`` concurrent cluster-wide operations and measure.

    Pass the same ``material`` to the workers-on and workers-off runs so
    the ablation compares execution, not key generation randomness.
    ``policy`` selects the pool's offload policy mode: the default
    "adaptive" measures what a real deployment does on this host (inline
    on small hosts, pooled on big ones); "always" forces the static PR-5
    offload for apples-to-apples pool measurements.
    """
    if material is None:
        material = generate_keys(scheme, threshold, parties)
    configs = make_local_configs(
        parties,
        threshold,
        transport="local",
        rpc_base_port=0,
        instance_timeout=instance_timeout,
    )
    hub = LocalHub()
    pool = (
        CryptoPool(workers, policy=OffloadPolicy(mode=policy))
        if workers > 0
        else None
    )
    nodes = [
        ThetacryptNode(
            config, transport=hub.endpoint(config.node_id), crypto_pool=pool
        )
        for config in configs
    ]
    for node in nodes:
        node.install_key(
            scheme,
            scheme,
            material.public_key,
            material.share_for(node.config.node_id),
        )
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    try:
        for node in nodes:
            await node.start()

        async def run_one(kind: str, data: bytes, label: bytes) -> None:
            started = loop.time()
            await asyncio.gather(
                *(node.run_request(kind, scheme, data, label) for node in nodes)
            )
            latencies.append(loop.time() - started)

        # Warm-up request: spawns + warms pool workers, promotes the
        # parent-side precompute caches; excluded from the measurement.
        for kind, data, label in _build_requests(scheme, material, 1, "warmup"):
            await run_one(kind, data, label)
        latencies.clear()

        batch = _build_requests(scheme, material, requests, "bench")
        started = loop.time()
        await asyncio.gather(
            *(run_one(kind, data, label) for kind, data, label in batch)
        )
        duration = loop.time() - started
        # All in-process nodes share one event loop, so any node's
        # heartbeat histogram describes the loop they all live on.
        lag = summarize(nodes[0].registry.get("repro_event_loop_lag_seconds"))
        pool_stats = pool.stats() if pool is not None else {}
    finally:
        for node in nodes:
            await node.stop()
        if pool is not None:
            await pool.close()
    latencies.sort()
    return AblationResult(
        scheme=scheme,
        parties=parties,
        threshold=threshold,
        workers=workers,
        requests=requests,
        duration=duration,
        ops_per_sec=requests / duration if duration > 0 else 0.0,
        latency_p50=_quantile(latencies, 0.5),
        latency_p99=_quantile(latencies, 0.99),
        loop_lag_p99=float(lag.get("p99", 0.0)),
        pool=pool_stats,
    )


async def run_ablation(
    scheme: str = "bls04",
    parties: int = 16,
    threshold: int = 3,
    requests: int = 6,
    workers: int = 2,
    policy: str = "adaptive",
) -> tuple[AblationResult, AblationResult]:
    """(workers-off, workers-on) pair over identical key material."""
    offs, ons = await run_ablation_series(
        scheme, parties, threshold, requests, workers=workers, policy=policy
    )
    return offs[0], ons[0]


async def run_ablation_series(
    scheme: str = "bls04",
    parties: int = 16,
    threshold: int = 3,
    requests: int = 6,
    workers: int = 2,
    policy: str = "adaptive",
    repeats: int = 1,
) -> tuple[list[AblationResult], list[AblationResult]]:
    """``repeats`` interleaved (off, on) pairs over identical key material.

    Interleaving matters when the comparison is an *equivalence* gate
    (1-core hosts: pooled-but-inline must match workers-off within
    noise): single runs drift a few percent over a process's lifetime —
    allocator growth, cache pressure, CPU contention — so an off-then-on
    pair systematically penalizes whichever run goes second.  Alternating
    the two configurations and comparing means cancels that drift.
    """
    material = generate_keys(scheme, threshold, parties)
    offs: list[AblationResult] = []
    ons: list[AblationResult] = []
    for _ in range(max(1, repeats)):
        offs.append(
            await run_capacity(
                scheme, parties, threshold, requests, workers=0, material=material
            )
        )
        ons.append(
            await run_capacity(
                scheme,
                parties,
                threshold,
                requests,
                workers=workers,
                material=material,
                policy=policy,
            )
        )
    return offs, ons
