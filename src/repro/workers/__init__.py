"""Worker-pool offload: the six schemes' hot crypto off the event loop.

* :mod:`repro.workers.tasks` — pickle-safe task functions + warm-up
  initializer that runs inside spawn-context worker processes;
* :mod:`repro.workers.pool` — :class:`CryptoPool`, the telemetry-wired
  ProcessPoolExecutor wrapper with the inline-fallback contract;
* :mod:`repro.workers.harness` — the workers-on/off ablation harness used
  by ``benchmarks/bench_fig4_capacity.py`` and ``tools/bench_smoke.py``.
"""

from .pool import CryptoPool, CryptoPoolUnavailable
from .tasks import DEFAULT_WARM_GROUPS, warm_worker, worker_health

__all__ = [
    "CryptoPool",
    "CryptoPoolUnavailable",
    "DEFAULT_WARM_GROUPS",
    "warm_worker",
    "worker_health",
]
