"""Worker-pool offload: the six schemes' hot crypto off the event loop.

* :mod:`repro.workers.tasks` — pickle-safe task functions + warm-up
  initializer that runs inside spawn-context worker processes;
* :mod:`repro.workers.pool` — :class:`CryptoPool`, the telemetry-wired
  ProcessPoolExecutor wrapper with the inline-fallback contract;
* :mod:`repro.workers.policy` — :class:`OffloadPolicy`, the adaptive
  inline-vs-offload decision matrix (cores, queue depth, latency EWMAs);
* :mod:`repro.workers.blobs` — content-addressed key-material blobs, so
  key exports cross the process boundary once per worker, not per task;
* :mod:`repro.workers.harness` — the workers-on/off ablation harness used
  by ``benchmarks/bench_fig4_capacity.py`` and ``tools/bench_smoke.py``.
"""

from .blobs import BlobStore, content_digest, parent_store, register_export
from .policy import POLICY_MODES, OffloadPolicy, PolicyDecision
from .pool import CryptoPool, CryptoPoolUnavailable
from .refill import refill_shares
from .tasks import (
    DEFAULT_WARM_GROUPS,
    BlobCacheMissError,
    warm_worker,
    worker_health,
)

__all__ = [
    "BlobCacheMissError",
    "BlobStore",
    "CryptoPool",
    "CryptoPoolUnavailable",
    "DEFAULT_WARM_GROUPS",
    "OffloadPolicy",
    "POLICY_MODES",
    "PolicyDecision",
    "content_digest",
    "parent_store",
    "refill_shares",
    "register_export",
    "warm_worker",
    "worker_health",
]
