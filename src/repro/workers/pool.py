"""The crypto worker pool: pairing/modexp off the event loop.

The asyncio node is single-threaded; every pairing product and modexp run
inline stalls RPC handling, gossip dispatch, and all other in-flight
instances for its full duration.  :class:`CryptoPool` moves the hot
protocol steps onto a spawn-context :class:`ProcessPoolExecutor` whose
workers pre-build the PR-1 precompute tables (see
:func:`repro.workers.tasks.warm_worker`), so the node scales with CPU
count instead of being capped at one core.

Degradation contract: the pool never makes an instance fail for
*infrastructure* reasons.  A disabled pool (``crypto_workers=0``), a
crashed worker, or an unpicklable task all raise
:class:`CryptoPoolUnavailable` — callers catch exactly that and run the
same computation inline, counted by the ``fallback`` outcome of
``repro_crypto_pool_tasks_total``.  Genuine cryptographic failures raised
*inside* a task (:class:`~repro.errors.ThetacryptError` subclasses)
propagate unchanged, exactly as their inline counterparts would.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import multiprocessing
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from ..errors import ThetacryptError
from ..telemetry import CryptoPoolMetrics, MetricRegistry, default_registry
from .tasks import DEFAULT_WARM_GROUPS, warm_worker

logger = logging.getLogger(__name__)


class CryptoPoolUnavailable(Exception):
    """Offload infrastructure failed; the caller must run inline.

    Deliberately *not* a :class:`~repro.errors.ThetacryptError`: it never
    describes a protocol outcome, only that the pool could not be used.
    """


class CryptoPool:
    """A process pool for the six schemes' hot operations.

    Lazy: worker processes spawn on first use (a node configured with
    workers that never sees load pays nothing).  Self-healing: a broken
    executor (worker SIGKILLed, initializer crash) is discarded and a
    fresh one is spawned on the next task.
    """

    def __init__(
        self,
        workers: int,
        registry: MetricRegistry | None = None,
        warm_groups: tuple[str, ...] = DEFAULT_WARM_GROUPS,
    ):
        self._workers = max(0, int(workers))
        self._warm_groups = tuple(warm_groups)
        self._metrics = CryptoPoolMetrics(
            registry if registry is not None else default_registry()
        )
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._pending = 0
        self._spawned = 0
        self._tasks_ok = 0
        self._tasks_error = 0
        self._fallbacks = 0
        self._crashes = 0

    # -- state ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._workers > 0 and not self._closed

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty before first use)."""
        executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return sorted(processes)

    def stats(self) -> dict:
        """Snapshot for ``ThetacryptNode.stats()["crypto_pool"]``."""
        return {
            "enabled": self.enabled,
            "workers": self._workers,
            "running": self._executor is not None,
            "queue_depth": self._pending,
            "tasks_ok": self._tasks_ok,
            "tasks_error": self._tasks_error,
            "fallbacks": self._fallbacks,
            "crashes": self._crashes,
            "restarts": max(0, self._spawned - 1),
            "worker_pids": self.worker_pids,
        }

    # -- execution ------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if not self.enabled:
            raise CryptoPoolUnavailable("crypto pool disabled or closed")
        if self._executor is None:
            context = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=warm_worker,
                initargs=(self._warm_groups,),
            )
            self._spawned += 1
            self._metrics.workers.set(self._workers)
            if self._spawned > 1:
                logger.warning(
                    "crypto pool respawned after a worker crash "
                    "(%d crashes, %d spawns)",
                    self._crashes,
                    self._spawned,
                )
        return self._executor

    def _discard_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._metrics.workers.set(0)

    async def run(self, op: str, fn, *args):
        """Run ``fn(*args)`` in a worker; raise CryptoPoolUnavailable to
        signal "run it inline yourself" on any infrastructure failure."""
        started = time.perf_counter()
        self._pending += 1
        self._metrics.queue_depth.set(self._pending)
        try:
            try:
                future = self._ensure_executor().submit(fn, *args)
            except CryptoPoolUnavailable:
                self._count(op, "fallback")
                raise
            except BrokenExecutor as exc:
                # A worker died while the pool was idle: submit itself
                # reports the breakage.  Discard so the next task respawns.
                self._crashes += 1
                self._discard_executor()
                self._count(op, "fallback")
                logger.warning("crypto pool broken at submit for %s: %s", op, exc)
                raise CryptoPoolUnavailable(f"worker crashed: {exc}") from exc
            except Exception as exc:  # noqa: BLE001 - unpicklable task, shutdown race
                self._count(op, "fallback")
                raise CryptoPoolUnavailable(f"submit failed: {exc}") from exc
            try:
                result = await asyncio.wrap_future(future)
            except asyncio.CancelledError:
                future.cancel()
                raise
            except ThetacryptError:
                # The task itself failed cryptographically — same meaning
                # as the identical inline failure, so let it propagate.
                self._count(op, "error")
                self._tasks_error += 1
                raise
            except BrokenExecutor as exc:
                self._crashes += 1
                self._discard_executor()
                self._count(op, "fallback")
                logger.warning("crypto pool worker died during %s: %s", op, exc)
                raise CryptoPoolUnavailable(f"worker crashed: {exc}") from exc
            except Exception as exc:  # noqa: BLE001 - pickling of args/results, bugs
                self._count(op, "fallback")
                raise CryptoPoolUnavailable(f"pool task failed: {exc}") from exc
            self._count(op, "ok")
            self._tasks_ok += 1
            return result
        finally:
            self._pending -= 1
            self._metrics.queue_depth.set(self._pending)
            self._metrics.task_seconds.labels(op).observe(
                time.perf_counter() - started
            )

    def _count(self, op: str, outcome: str) -> None:
        if outcome == "fallback":
            self._fallbacks += 1
        self._metrics.tasks.labels(op, outcome).inc()

    # -- shutdown -------------------------------------------------------------

    async def close(self) -> None:
        """Drain and join the workers (blocking shutdown runs off-loop)."""
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None,
            functools.partial(executor.shutdown, wait=True, cancel_futures=True),
        )
        self._metrics.workers.set(0)

    def close_sync(self) -> None:
        """Synchronous close for non-async teardown paths (tests, atexit)."""
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
            self._metrics.workers.set(0)
