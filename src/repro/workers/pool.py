"""The crypto worker pool: pairing/modexp off the event loop.

The asyncio node is single-threaded; every pairing product and modexp run
inline stalls RPC handling, gossip dispatch, and all other in-flight
instances for its full duration.  :class:`CryptoPool` moves the hot
protocol steps onto a spawn-context :class:`ProcessPoolExecutor` whose
workers pre-build the PR-1 precompute tables (see
:func:`repro.workers.tasks.warm_worker`), so the node scales with CPU
count instead of being capped at one core.

Offload is a *measured decision*, not a static flag: the pool carries an
:class:`~repro.workers.policy.OffloadPolicy` and callers ask
:meth:`CryptoPool.decide` before submitting, then report what they
measured via :meth:`CryptoPool.observe`.  On a 1-core host — where the
PR-5 static behaviour cost 0.66× throughput (``BENCH_offload.json``) —
the policy keeps everything inline; on multi-core hosts it offloads and
keeps watching the latency EWMAs.

Key material travels by content digest (:mod:`repro.workers.blobs`):
workers get the parent store's blobs at spawn time, and a task that
references a digest its worker lost (LRU eviction, late key install)
raises :class:`~repro.workers.tasks.BlobCacheMissError`, which the pool
answers with exactly one retry that carries the blobs along.

Degradation contract (unchanged from PR 5): the pool never makes an
instance fail for *infrastructure* reasons.  A disabled pool
(``crypto_workers=0``), a crashed worker, or an unpicklable task all raise
:class:`CryptoPoolUnavailable` — callers catch exactly that and run the
same computation inline, counted by the ``fallback`` outcome of
``repro_crypto_pool_tasks_total``.  Genuine cryptographic failures raised
*inside* a task (:class:`~repro.errors.ThetacryptError` subclasses)
propagate unchanged, exactly as their inline counterparts would.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import multiprocessing
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from ..errors import ThetacryptError
from ..telemetry import CryptoPoolMetrics, MetricRegistry, default_registry
from .blobs import parent_store, parent_table_digests
from .policy import OffloadPolicy, PolicyDecision
from .tasks import DEFAULT_WARM_GROUPS, BlobCacheMissError, warm_worker

logger = logging.getLogger(__name__)


class CryptoPoolUnavailable(Exception):
    """Offload infrastructure failed; the caller must run inline.

    Deliberately *not* a :class:`~repro.errors.ThetacryptError`: it never
    describes a protocol outcome, only that the pool could not be used.
    """


class CryptoPool:
    """A process pool for the six schemes' hot operations.

    Lazy: worker processes spawn on first use (a node configured with
    workers that never sees load pays nothing).  Self-healing: a broken
    executor (worker SIGKILLed, initializer crash) is discarded and a
    fresh one is spawned on the next task — at most once per executor
    generation, however many in-flight tasks observe the same breakage.
    """

    def __init__(
        self,
        workers: int,
        registry: MetricRegistry | None = None,
        warm_groups: tuple[str, ...] = DEFAULT_WARM_GROUPS,
        policy: OffloadPolicy | None = None,
    ):
        self._workers = max(0, int(workers))
        self._warm_groups = tuple(warm_groups)
        self._metrics = CryptoPoolMetrics(
            registry if registry is not None else default_registry()
        )
        self._policy = policy if policy is not None else OffloadPolicy()
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._pending = 0
        self._spawned = 0
        # Incremented at every executor spawn; BrokenExecutor handling is
        # keyed on it so concurrent in-flight tasks heal the same breakage
        # exactly once (see _heal).
        self._generation = 0
        # Pool-path latency observations to discard after a spawn: the
        # first task per worker pays process start + warm-up, which would
        # poison the policy's pool EWMA with numbers that are not about
        # steady-state offload cost.
        self._observe_skip = 0
        self._tasks_ok = 0
        self._tasks_error = 0
        self._fallbacks = 0
        self._crashes = 0
        self._blob_retries = 0

    # -- state ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._workers > 0 and not self._closed

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def policy(self) -> OffloadPolicy:
        return self._policy

    @property
    def queue_depth(self) -> int:
        return self._pending

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty before first use).

        ``ProcessPoolExecutor`` has no public process accessor, so this
        reads the private ``_processes`` dict — defensively: the executor's
        management thread mutates it mid-crash, and the attribute itself is
        a CPython implementation detail.  Any surprise degrades to ``[]``.
        """
        executor = self._executor
        if executor is None:
            return []
        try:
            processes = getattr(executor, "_processes", None)
            if not processes:
                return []
            # list() snapshots before sorting: the dict can change size
            # under us while a worker is dying.
            return sorted(list(processes.keys()))
        except Exception:  # noqa: BLE001 - RuntimeError mid-mutation, attr drift
            return []

    def stats(self) -> dict:
        """Snapshot for ``ThetacryptNode.stats()["crypto_pool"]``."""
        return {
            "enabled": self.enabled,
            "workers": self._workers,
            "running": self._executor is not None,
            "queue_depth": self._pending,
            "tasks_ok": self._tasks_ok,
            "tasks_error": self._tasks_error,
            "fallbacks": self._fallbacks,
            "crashes": self._crashes,
            "restarts": max(0, self._spawned - 1),
            "blob_retries": self._blob_retries,
            "worker_pids": self.worker_pids,
            "policy": self._policy.stats(),
            "blob_cache": parent_store().stats(),
        }

    # -- the adaptive policy ---------------------------------------------------

    def decide(self, op: str) -> PolicyDecision:
        """Should ``op`` be offloaded right now?  Counted per decision."""
        decision = self._policy.decide(op, self._pending, self._workers)
        self._metrics.policy_decisions.labels(
            op, decision.choice, decision.reason
        ).inc()
        return decision

    def observe(self, op: str, path: str, seconds: float, items: int = 1) -> None:
        """Feed a measured execution into the policy's latency EWMAs.

        The first ``workers`` pool-path samples after each spawn are
        discarded — they price process start-up and warm-up, not offload.
        """
        if path == "pool" and self._observe_skip > 0:
            self._observe_skip -= 1
            return
        self._policy.observe(op, path, seconds, items)

    # -- execution ------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if not self.enabled:
            raise CryptoPoolUnavailable("crypto pool disabled or closed")
        if self._executor is None:
            context = multiprocessing.get_context("spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=context,
                initializer=warm_worker,
                # Warm-install the parent's current key blobs so the
                # steady state never ships key material per task, and the
                # serialized fixed-base tables so workers warm-start from
                # deserialization instead of rebuilding.
                initargs=(
                    self._warm_groups,
                    tuple(parent_store().items()),
                    parent_table_digests(),
                ),
            )
            self._spawned += 1
            self._generation += 1
            self._observe_skip = self._workers
            self._metrics.workers.set(self._workers)
            if self._spawned > 1:
                logger.warning(
                    "crypto pool respawned after a worker crash "
                    "(%d crashes, %d spawns)",
                    self._crashes,
                    self._spawned,
                )
        return self._executor

    def _discard_executor(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self._metrics.workers.set(0)

    def _heal(self, generation: int, op: str, where: str, exc: Exception) -> None:
        """Count and discard a broken executor — once per generation.

        With several tasks in flight, one SIGKILLed worker breaks them
        all: each raises :class:`BrokenExecutor` from its own submit or
        await path.  Only the first arrival heals; the rest see either a
        newer generation or an already-discarded executor and stand down,
        so ``crashes``/``restarts`` count breakages, not observers.
        """
        if generation != self._generation or self._executor is None:
            return
        self._crashes += 1
        self._discard_executor()
        logger.warning("crypto pool broken at %s for %s: %s", where, op, exc)

    async def run(self, op: str, fn, *args):
        """Run ``fn(*args)`` in a worker; raise CryptoPoolUnavailable to
        signal "run it inline yourself" on any infrastructure failure.

        A :class:`BlobCacheMissError` from the worker is answered with one
        retry carrying the missing blobs (resolved from the parent store);
        a second miss, or a digest the parent does not hold either, counts
        as infrastructure failure.
        """
        started = time.perf_counter()
        self._pending += 1
        self._metrics.queue_depth.set(self._pending)
        try:
            try:
                result = await self._attempt(op, fn, args, None)
            except BlobCacheMissError as exc:
                blobs = self._resolve_blobs(op, exc)
                self._blob_retries += 1
                self._metrics.blob_cache.labels("retry").inc()
                try:
                    result = await self._attempt(op, fn, args, blobs)
                except BlobCacheMissError as again:
                    self._count(op, "fallback")
                    raise CryptoPoolUnavailable(
                        f"blob install did not take: {again}"
                    ) from again
            self._count(op, "ok")
            self._tasks_ok += 1
            return result
        finally:
            self._pending -= 1
            self._metrics.queue_depth.set(self._pending)
            self._metrics.task_seconds.labels(op).observe(
                time.perf_counter() - started
            )

    def _resolve_blobs(self, op: str, exc: BlobCacheMissError) -> dict:
        blobs: dict[str, bytes] = {}
        for digest in exc.digests:
            blob = parent_store().get_blob(digest)
            if blob is None:
                # The spec references a blob nobody holds any more (parent
                # LRU churn): the task cannot run pooled, period.
                self._count(op, "fallback")
                raise CryptoPoolUnavailable(
                    f"blob {digest[:12]}… unknown to the parent store"
                ) from exc
            blobs[digest] = blob
        return blobs

    async def _attempt(self, op: str, fn, args: tuple, blobs: dict | None):
        """One submit + await, with the exception ladder and heal-once."""
        try:
            executor = self._ensure_executor()
        except CryptoPoolUnavailable:
            self._count(op, "fallback")
            raise
        generation = self._generation
        try:
            if blobs is None:
                future = executor.submit(fn, *args)
            else:
                future = executor.submit(fn, *args, blobs=blobs)
        except BrokenExecutor as exc:
            # A worker died while the pool was idle: submit itself
            # reports the breakage.  Discard so the next task respawns.
            self._heal(generation, op, "submit", exc)
            self._count(op, "fallback")
            raise CryptoPoolUnavailable(f"worker crashed: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 - unpicklable task, shutdown race
            self._count(op, "fallback")
            raise CryptoPoolUnavailable(f"submit failed: {exc}") from exc
        try:
            return await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            future.cancel()
            raise
        except BlobCacheMissError:
            raise  # run() retries once with the blobs attached
        except ThetacryptError:
            # The task itself failed cryptographically — same meaning
            # as the identical inline failure, so let it propagate.
            self._count(op, "error")
            self._tasks_error += 1
            raise
        except BrokenExecutor as exc:
            self._heal(generation, op, "await", exc)
            self._count(op, "fallback")
            raise CryptoPoolUnavailable(f"worker crashed: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 - pickling of args/results, bugs
            self._count(op, "fallback")
            raise CryptoPoolUnavailable(f"pool task failed: {exc}") from exc

    def _count(self, op: str, outcome: str) -> None:
        if outcome == "fallback":
            self._fallbacks += 1
        self._metrics.tasks.labels(op, outcome).inc()

    # -- shutdown -------------------------------------------------------------

    async def close(self) -> None:
        """Drain and join the workers (blocking shutdown runs off-loop)."""
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None,
            functools.partial(executor.shutdown, wait=True, cancel_futures=True),
        )
        self._metrics.workers.set(0)

    def close_sync(self) -> None:
        """Synchronous close for non-async teardown paths (tests, atexit)."""
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
            self._metrics.workers.set(0)
