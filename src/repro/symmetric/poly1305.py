"""Poly1305 one-time authenticator (RFC 8439 §2.5), implemented from scratch."""

from __future__ import annotations

from ..errors import CryptoError

_P1305 = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    if len(key) != 32:
        raise CryptoError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for offset in range(0, len(message), 16):
        chunk = message[offset : offset + 16]
        block = int.from_bytes(chunk, "little") + (1 << (8 * len(chunk)))
        accumulator = ((accumulator + block) * r) % _P1305
    tag = (accumulator + s) % (1 << 128)
    return tag.to_bytes(16, "little")


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Length-safe constant-time comparison for MAC tags."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
