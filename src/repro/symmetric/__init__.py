"""Symmetric primitives for hybrid encryption: ChaCha20-Poly1305 AEAD.

The paper's ciphers (SG02, BZ03) encrypt a symmetric key under the threshold
key and the payload under ChaCha20-Poly1305 (§3.5).  Implemented from
scratch per RFC 8439.
"""

from .aead import ChaCha20Poly1305, AeadError
from .chacha20 import chacha20_block, chacha20_encrypt
from .poly1305 import poly1305_mac

__all__ = [
    "ChaCha20Poly1305",
    "AeadError",
    "chacha20_block",
    "chacha20_encrypt",
    "poly1305_mac",
]
