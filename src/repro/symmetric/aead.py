"""ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8)."""

from __future__ import annotations

import secrets
import struct

from ..errors import CryptoError
from .chacha20 import chacha20_block, chacha20_encrypt
from .poly1305 import constant_time_equal, poly1305_mac


class AeadError(CryptoError):
    """Authentication failed or the inputs were malformed."""


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return bytes(16 - remainder) if remainder else b""


class ChaCha20Poly1305:
    """AEAD cipher: 32-byte key, 12-byte nonce, 16-byte tag."""

    KEY_SIZE = 32
    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) != self.KEY_SIZE:
            raise AeadError("key must be 32 bytes")
        self._key = key

    @staticmethod
    def generate_key() -> bytes:
        return secrets.token_bytes(ChaCha20Poly1305.KEY_SIZE)

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        otk = chacha20_block(self._key, 0, nonce)[:32]
        mac_data = (
            aad
            + _pad16(aad)
            + ciphertext
            + _pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext))
        )
        return poly1305_mac(otk, mac_data)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || 16-byte tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise AeadError("nonce must be 12 bytes")
        ciphertext = chacha20_encrypt(self._key, 1, nonce, plaintext)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raise AeadError on failure."""
        if len(nonce) != self.NONCE_SIZE:
            raise AeadError("nonce must be 12 bytes")
        if len(data) < self.TAG_SIZE:
            raise AeadError("ciphertext shorter than the tag")
        ciphertext, tag = data[: -self.TAG_SIZE], data[-self.TAG_SIZE :]
        expected = self._tag(nonce, ciphertext, aad)
        if not constant_time_equal(tag, expected):
            raise AeadError("authentication tag mismatch")
        return chacha20_encrypt(self._key, 1, nonce, ciphertext)
