"""ChaCha20 stream cipher (RFC 8439 §2.3–2.4), implemented from scratch."""

from __future__ import annotations

import struct

from ..errors import CryptoError

_MASK = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte keystream block."""
    if len(key) != 32:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8L", key))
    state.append(counter & _MASK)
    state.extend(struct.unpack("<3L", nonce))
    working = state.copy()
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    return struct.pack(
        "<16L", *((w + s) & _MASK for w, s in zip(working, state))
    )


def chacha20_encrypt(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the keystream starting at block ``counter``."""
    out = bytearray(len(data))
    for block_index in range((len(data) + 63) // 64):
        keystream = chacha20_block(key, counter + block_index, nonce)
        offset = block_index * 64
        chunk = data[offset : offset + 64]
        out[offset : offset + len(chunk)] = bytes(
            b ^ k for b, k in zip(chunk, keystream)
        )
    return bytes(out)
