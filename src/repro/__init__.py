"""repro — a from-scratch reproduction of Thetacrypt.

Thetacrypt (Barbaraci et al.; MIDDLEWARE'23 demo, full paper 2025) is a
distributed service for threshold cryptography: six threshold schemes behind
one three-layer architecture (service / core / network).  See README.md for
the tour, DESIGN.md for the system inventory, and EXPERIMENTS.md for the
paper-vs-measured evaluation results.

Quick taste (the schemes module is a self-contained library)::

    from repro.schemes import generate_keys, get_scheme

    keys = generate_keys("bls04", threshold=1, parties=4)
    scheme = get_scheme("bls04")
    shares = [scheme.partial_sign(keys.share_for(i), b"msg") for i in (1, 3)]
    signature = scheme.combine(keys.public_key, b"msg", shares)
    scheme.verify(keys.public_key, b"msg", signature)

For the distributed service, see :mod:`repro.service`; for the evaluation
harness, :mod:`repro.sim`.
"""

from .errors import ThetacryptError

__version__ = "1.0.0"

__all__ = ["ThetacryptError", "__version__"]
