"""In-process federated deployments: R routers × G threshold groups.

The single-group analogue is ``tests/test_service._start_network``; this
harness scales that idiom out to a sharded deployment for tests and
benchmarks without spawning processes:

* every group is an independent Θ-network on its own :class:`LocalHub`
  (separate hubs — groups share no transport, exactly like separate
  clusters in production),
* keys are dealt disjointly, each to its owning group only (ownership
  decided by the shared :class:`Topology` before anything starts, since
  placement depends only on group ids / vnodes / pinned assignments,
  never on endpoints),
* any number of stateless :class:`RouterDaemon` front-ends serve the
  client RPC protocol on ephemeral TCP ports.

Nodes receive the *provisional* topology (groups + assignments, no
endpoints) so their ``wrong_group`` redirects name the right group even
though RPC ports are unknown until start; routers and clients get the
*live* topology rebuilt from the started nodes' actual addresses.
"""

from __future__ import annotations

from typing import Mapping

from ..network.faults import FaultPlan
from ..network.local import LocalHub
from ..service.client import ThetacryptClient
from ..service.config import NodeConfig, make_local_configs
from ..service.node import ThetacryptNode
from .daemon import RouterDaemon
from .ring import DEFAULT_VNODES
from .topology import GroupSpec, Topology


class GroupRuntime:
    """One running threshold group: its hub, nodes, and configs."""

    def __init__(self, group_id: str, hub: LocalHub, configs: list[NodeConfig]):
        self.group_id = group_id
        self.hub = hub
        self.configs = configs
        self.nodes: list[ThetacryptNode] = []
        self.running = False

    def members(self) -> dict[int, tuple[str, int]]:
        return {
            node.config.node_id: node.rpc_address for node in self.nodes
        }


class FederatedCluster:
    """R routers × G groups, entirely inside one asyncio loop.

    ``group_overrides`` maps group id → NodeConfig override kwargs for
    that group only (e.g. a ``fault_plan`` to crash one shard, or a
    ``data_dir``); ``overrides`` applies to every node.
    """

    def __init__(
        self,
        group_ids: tuple[str, ...] = ("alpha", "beta", "gamma"),
        parties: int = 4,
        threshold: int = 1,
        routers: int = 1,
        vnodes: int = DEFAULT_VNODES,
        assignments: Mapping[str, str] | None = None,
        auth_token: str = "",
        latency: float = 0.001,
        group_overrides: Mapping[str, Mapping] | None = None,
        **overrides,
    ):
        if routers < 1:
            raise ValueError("a federation needs at least one router")
        self._auth_token = auth_token
        self._router_count = routers
        self.routers: list[RouterDaemon] = []
        # Provisional topology: ownership without endpoints.  Nodes keep
        # this one forever — a redirect only needs the owning group's id.
        self.provisional = Topology(
            groups=tuple(
                GroupSpec(group_id=gid, parties=parties, threshold=threshold)
                for gid in group_ids
            ),
            vnodes=vnodes,
            assignments=dict(assignments or {}),
        )
        self.topology: Topology | None = None  # live, set by start()
        self.groups: dict[str, GroupRuntime] = {}
        group_overrides = group_overrides or {}
        for gid in group_ids:
            extra = {**overrides, **dict(group_overrides.get(gid, {}))}
            configs = make_local_configs(
                parties,
                threshold,
                transport="local",
                rpc_base_port=0,
                rpc_auth_token=auth_token,
                group_id=gid,
                topology=self.provisional,
                **extra,
            )
            hub = LocalHub(latency=lambda a, b: latency)
            self.groups[gid] = GroupRuntime(gid, hub, configs)

    # -- key placement ---------------------------------------------------------

    def owner_of(self, key_id: str) -> str:
        return self.provisional.owner_of(key_id)

    def partition_keys(self, key_ids) -> dict[str, list[str]]:
        return self.provisional.partition_keys(key_ids)

    # -- lifecycle -------------------------------------------------------------

    async def start(self, all_keys: Mapping[str, object] | None = None) -> None:
        """Start every group, deal keys disjointly, then start the routers.

        ``all_keys`` maps key id → dealer ``KeyMaterial``; each key is
        installed only on its owning group's nodes.
        """
        for runtime in self.groups.values():
            for config in runtime.configs:
                node = ThetacryptNode(
                    config, transport=runtime.hub.endpoint(config.node_id)
                )
                if all_keys:
                    for key_id, material in all_keys.items():
                        if self.owner_of(key_id) != runtime.group_id:
                            continue
                        node.install_key(
                            key_id,
                            material.scheme,
                            material.public_key,
                            material.share_for(config.node_id),
                        )
                await node.start()
                runtime.nodes.append(node)
            runtime.running = True
        self.topology = self.provisional.with_members(
            {gid: runtime.members() for gid, runtime in self.groups.items()}
        )
        for index in range(self._router_count):
            daemon = RouterDaemon(
                self.topology,
                port=0,
                auth_token=self._auth_token,
                name=f"router-{index}",
            )
            await daemon.start()
            self.routers.append(daemon)

    async def stop_group(self, group_id: str) -> None:
        """Chaos helper: take one whole shard down mid-run."""
        runtime = self.groups[group_id]
        for node in runtime.nodes:
            await node.stop()
        runtime.running = False

    async def stop(self) -> None:
        for daemon in self.routers:
            await daemon.stop()
        self.routers.clear()
        for runtime in self.groups.values():
            if not runtime.running:
                continue
            for node in runtime.nodes:
                await node.stop()
            runtime.running = False

    # -- client access ---------------------------------------------------------

    def router_addresses(self) -> list[tuple[str, int]]:
        return [daemon.rpc_address for daemon in self.routers]

    def client(self, router: int = 0, **kwargs) -> ThetacryptClient:
        """A client speaking through one router (node id 0 = the router)."""
        kwargs.setdefault("auth_token", self._auth_token)
        return ThetacryptClient(
            {0: self.routers[router].rpc_address}, **kwargs
        )

    def federated_client(self, **kwargs) -> ThetacryptClient:
        """A topology-aware client that does its own routing (no router)."""
        if self.topology is None:
            raise RuntimeError("cluster not started")
        kwargs.setdefault("auth_token", self._auth_token)
        return ThetacryptClient(topology=self.topology, **kwargs)

    def group_nodes(self, group_id: str) -> list[ThetacryptNode]:
        return self.groups[group_id].nodes

    async def __aenter__(self) -> "FederatedCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()
