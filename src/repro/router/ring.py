"""Consistent hashing from key ids to group ids.

The router tier must agree — across router daemons, client processes, and
the dealer — on which threshold group owns which key, without any shared
state beyond the topology descriptor.  A classic consistent-hash ring
delivers that: each group contributes ``vnodes`` points on a 64-bit ring
(SHA-256 of ``group_id#replica``, so placement is identical in every
process — Python's builtin ``hash`` is salted per process and useless
here), and a key belongs to the first group point at or clockwise after
the key's own point.

The routing key is the *key id* (``namespace/key_id`` for tenanted keys)
— the component of :func:`repro.service.node.derive_instance_id`'s inputs
that determines placement.  Key shares are dealt per group, so every
request touching one key must land on the same group; hashing
per-request data would scatter a key's requests across groups that do
not hold its shares.

Properties (covered by ``tests/test_router.py``):

* **determinism** — same groups + vnodes ⇒ same lookups in any process;
* **balance** — at 128 vnodes per group, each group owns its fair share
  of a large keyspace within ±20 %;
* **minimal movement** — adding/removing a group only moves the keys
  that change owner to/from that group; assignments between surviving
  groups never change.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from ..errors import ConfigurationError

#: Default virtual-node count per group; 128 keeps the balance of a
#: handful of groups within ±20 % of fair share.
DEFAULT_VNODES = 128


def ring_point(data: str) -> int:
    """Deterministic 64-bit ring coordinate of a string."""
    digest = hashlib.sha256(b"repro-ring\x00" + data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def routing_key(key_id: str) -> str:
    """The ring input for one request: its (possibly namespaced) key id."""
    return key_id


class HashRing:
    """Immutable consistent-hash ring over group ids."""

    def __init__(self, group_ids: Iterable[str], vnodes: int = DEFAULT_VNODES):
        groups = list(group_ids)
        if not groups:
            raise ConfigurationError("a hash ring needs at least one group")
        if len(set(groups)) != len(groups):
            raise ConfigurationError(f"duplicate group ids: {groups}")
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        points: list[tuple[int, str]] = []
        for group_id in groups:
            for replica in range(vnodes):
                points.append((ring_point(f"{group_id}#{replica}"), group_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [g for _, g in points]
        self._groups = tuple(sorted(groups))

    @property
    def groups(self) -> tuple[str, ...]:
        return self._groups

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def lookup(self, key_id: str) -> str:
        """The group owning ``key_id``."""
        point = ring_point(routing_key(key_id))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def preference(self, key_id: str, count: int) -> list[str]:
        """The first ``count`` *distinct* groups clockwise from the key.

        Position 0 is the owner; later positions are where the key would
        move if earlier groups left the ring (useful for placement
        planning — shares themselves live only on the owner).
        """
        point = ring_point(routing_key(key_id))
        index = bisect.bisect_right(self._points, point)
        seen: list[str] = []
        for offset in range(len(self._points)):
            owner = self._owners[(index + offset) % len(self._points)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) >= count:
                    break
        return seen

    def with_group(self, group_id: str) -> "HashRing":
        """A new ring with ``group_id`` added (the old ring is unchanged)."""
        return HashRing((*self._groups, group_id), vnodes=self._vnodes)

    def without_group(self, group_id: str) -> "HashRing":
        """A new ring with ``group_id`` removed."""
        remaining = [g for g in self._groups if g != group_id]
        return HashRing(remaining, vnodes=self._vnodes)

    def distribution(self, key_ids: Sequence[str]) -> dict[str, int]:
        """How many of ``key_ids`` each group owns (balance diagnostics)."""
        counts = {group: 0 for group in self._groups}
        for key_id in key_ids:
            counts[self.lookup(key_id)] += 1
        return counts
