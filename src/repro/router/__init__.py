"""Sharded scale-out: stateless front-end routers over federated groups.

Today's single Θ-network holds every key on every node and runs every
instance everywhere; per-group capacity is therefore the service's
capacity.  This package partitions the key space across *independent*
threshold node-groups and puts a stateless router role in front:

* :mod:`repro.router.ring` — consistent hashing (virtual nodes) from key
  ids to group ids, deterministic across processes;
* :mod:`repro.router.topology` — the federation descriptor (groups, their
  member endpoints, keyspace ownership), JSON round-trip like
  ``NodeConfig``;
* :mod:`repro.router.core` — the :class:`Router` core: front-side RPC
  semantics, back-side fan-out to the owning group, redirect-following,
  per-shard telemetry;
* :mod:`repro.router.daemon` — :class:`RouterDaemon`, a standalone
  process speaking the existing client RPC protocol;
* :mod:`repro.router.federation` — :class:`FederatedCluster`, the
  in-process R-routers × G-groups harness used by the federation tests
  and ``benchmarks/bench_federation.py``.

Only the dependency-free leaves are imported eagerly: ``repro.service``
imports :class:`Topology` (for ``NodeConfig.topology``) while
:mod:`repro.router.core` imports the service client, so the heavier
modules load lazily to keep the import graph acyclic.
"""

from __future__ import annotations

from .ring import HashRing
from .topology import GroupSpec, Topology

__all__ = [
    "GroupSpec",
    "HashRing",
    "Router",
    "RouterDaemon",
    "FederatedCluster",
    "Topology",
]


def __getattr__(name: str):
    if name == "Router":
        from .core import Router

        return Router
    if name == "RouterDaemon":
        from .daemon import RouterDaemon

        return RouterDaemon
    if name == "FederatedCluster":
        from .federation import FederatedCluster

        return FederatedCluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
