"""The federation descriptor: groups, endpoints, keyspace ownership.

A :class:`Topology` is to the router tier what ``NodeConfig`` is to one
node: the complete, serializable start-up picture.  It declares the
independent threshold groups behind one endpoint (each with its own
``(threshold, parties)`` shape and member RPC endpoints), the ring
geometry (``vnodes``), and any keys *pinned* to a specific group
(``assignments`` — everything else is placed by the consistent-hash
ring, see :mod:`repro.router.ring`).

Key ids may be namespaced per tenant as ``namespace/key_id``; the whole
string is the routing key, so each tenant's keys spread independently
over the federation.

JSON round-trip mirrors ``NodeConfig`` (``to_json``/``from_json``), and
the same document drives the router daemon (``--topology``), the dealer
(``tools/deal_keys.py --topology``), topology-aware clients, and the
nodes' own ``wrong_group`` redirects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..errors import ConfigurationError
from .ring import DEFAULT_VNODES, HashRing


@dataclass(frozen=True)
class GroupSpec:
    """One independent threshold group of the federation.

    Member RPC endpoints come from ``members`` (explicit
    ``(node_id, host, rpc_port)`` triples) when given; otherwise they are
    derived from ``rpc_base_port`` + node id, matching
    ``make_local_configs``.  ``base_port`` is the group's P2P listen base
    — only the dealer needs it (to generate the member ``NodeConfig``
    files); routing itself uses RPC endpoints only.
    """

    group_id: str
    parties: int
    threshold: int
    host: str = "127.0.0.1"
    base_port: int = 0
    rpc_base_port: int = 0
    members: tuple[tuple[int, str, int], ...] = ()

    def __post_init__(self) -> None:
        if not self.group_id:
            raise ConfigurationError("group_id must be non-empty")
        if self.parties < 1:
            raise ConfigurationError(
                f"group {self.group_id!r}: parties must be >= 1"
            )
        if not 0 < self.threshold < self.parties:
            raise ConfigurationError(
                f"group {self.group_id!r}: threshold {self.threshold} "
                f"outside 1..{self.parties - 1}"
            )
        if self.members and len(self.members) != self.parties:
            raise ConfigurationError(
                f"group {self.group_id!r}: {len(self.members)} explicit "
                f"members for {self.parties} parties"
            )

    def rpc_endpoints(self) -> dict[int, tuple[str, int]]:
        """``node_id -> (host, rpc_port)`` for every group member."""
        if self.members:
            return {
                node_id: (host, port) for node_id, host, port in self.members
            }
        return {
            node_id: (self.host, self.rpc_base_port + node_id)
            for node_id in range(1, self.parties + 1)
        }

    def to_dict(self) -> dict:
        return {
            "group_id": self.group_id,
            "parties": self.parties,
            "threshold": self.threshold,
            "host": self.host,
            "base_port": self.base_port,
            "rpc_base_port": self.rpc_base_port,
            "members": [list(member) for member in self.members],
        }

    @staticmethod
    def from_dict(payload: dict) -> "GroupSpec":
        data = dict(payload)
        members = tuple(
            (int(node_id), str(host), int(port))
            for node_id, host, port in data.pop("members", ())
        )
        return GroupSpec(members=members, **data)


@dataclass(frozen=True)
class Topology:
    """The whole federation: group specs + keyspace ownership rules."""

    groups: tuple[GroupSpec, ...]
    vnodes: int = DEFAULT_VNODES
    #: Pinned keys: ``key_id -> group_id`` overrides the ring (e.g. to
    #: keep one tenant's keys on dedicated hardware).
    assignments: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a topology needs at least one group")
        ids = [g.group_id for g in self.groups]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate group ids: {ids}")
        if self.vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {self.vnodes}")
        for key_id, group_id in self.assignments.items():
            if group_id not in ids:
                raise ConfigurationError(
                    f"key {key_id!r} pinned to unknown group {group_id!r}"
                )

    @property
    def group_ids(self) -> tuple[str, ...]:
        return tuple(g.group_id for g in self.groups)

    def group(self, group_id: str) -> GroupSpec:
        for spec in self.groups:
            if spec.group_id == group_id:
                return spec
        raise ConfigurationError(f"unknown group {group_id!r}")

    def ring(self) -> HashRing:
        return HashRing(self.group_ids, vnodes=self.vnodes)

    def owner_of(self, key_id: str) -> str:
        """The group owning ``key_id``: pinned assignment, else the ring."""
        pinned = self.assignments.get(key_id)
        if pinned is not None:
            return pinned
        return self.ring().lookup(key_id)

    def partition_keys(self, key_ids) -> dict[str, list[str]]:
        """``group_id -> [key_id, ...]`` — the dealer's disjoint split."""
        owned: dict[str, list[str]] = {g: [] for g in self.group_ids}
        for key_id in key_ids:
            owned[self.owner_of(key_id)].append(key_id)
        return owned

    def with_members(
        self, members: Mapping[str, Mapping[int, tuple[str, int]]]
    ) -> "Topology":
        """Copy with explicit member endpoints (e.g. live ephemeral ports)."""
        groups = []
        for spec in self.groups:
            endpoints = members.get(spec.group_id)
            if endpoints is None:
                groups.append(spec)
                continue
            groups.append(
                replace(
                    spec,
                    members=tuple(
                        (node_id, host, port)
                        for node_id, (host, port) in sorted(endpoints.items())
                    ),
                )
            )
        return replace(self, groups=tuple(groups))

    # -- serialization (router daemon / dealer / NodeConfig embedding) -----

    def to_dict(self) -> dict:
        return {
            "groups": [g.to_dict() for g in self.groups],
            "vnodes": self.vnodes,
            "assignments": dict(self.assignments),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @staticmethod
    def from_dict(payload: dict) -> "Topology":
        data = dict(payload)
        groups = tuple(
            GroupSpec.from_dict(g) for g in data.pop("groups", ())
        )
        return Topology(groups=groups, **data)

    @staticmethod
    def from_json(text: str) -> "Topology":
        return Topology.from_dict(json.loads(text))
