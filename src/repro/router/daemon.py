"""Run a stateless Thetacrypt router as a standalone process.

The front-end entry point of a federated deployment: clients speak the
ordinary JSON-lines RPC protocol to the router exactly as they would to a
node, and the router fans each request out to the threshold group that
owns its key::

    python3 -m repro.router.daemon --topology deployment/topology.json \
                                   --rpc-port 23500

Routers hold no state — run as many as the load needs behind any TCP
load-balancing scheme, and kill/restart them freely: in-flight requests
are retried by the client and absorbed by the groups' idempotent result
caches.  The process serves RPC until SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import signal
import time

from ..errors import RpcError, ThetacryptError
from ..service.server import RPC_LINE_LIMIT
from ..telemetry import MetricsHttpServer, RpcMetrics
from .core import Router
from .topology import Topology

logger = logging.getLogger("repro.router")


class RouterRpcServer:
    """Front-side RPC listener: the same wire protocol as ``RpcServer``.

    Shares the node server's framing, auth handling, and structured-error
    serialization (reason / retry_after / details), but dispatches into a
    :class:`Router` instead of a node.
    """

    def __init__(self, router: Router, host: str, port: int, auth_token: str = ""):
        self._router = router
        self._host = host
        self._port = port
        self._auth_token = auth_token
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()
        self._metrics = RpcMetrics(router.registry)

    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            return self._host, self._port
        sock = self._server.sockets[0]
        return sock.getsockname()[0], sock.getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_client, self._host, self._port, limit=RPC_LINE_LIMIT
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._metrics.connections.inc()
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        finally:
            writer.close()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = None
        method = ""
        outcome = "ok"
        started = time.perf_counter()
        self._metrics.inflight.inc()
        try:
            try:
                request = json.loads(line)
                request_id = request.get("id")
                method = str(request.get("method", ""))
                if self._auth_token and request.get("auth") != self._auth_token:
                    raise RpcError(
                        "unauthorized: request lacks the security-domain token"
                    )
                result = await self._router.dispatch(
                    method, request.get("params", {})
                )
                response = {"id": request_id, "result": result}
            except ThetacryptError as exc:
                outcome = "error"
                response = {"id": request_id, "error": str(exc)}
                reason = getattr(exc, "reason", None)
                if reason is not None:
                    response["error_reason"] = reason
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    response["retry_after"] = retry_after
                details = getattr(exc, "details", None)
                if details is not None:
                    try:
                        json.dumps(details)
                    except (TypeError, ValueError):
                        pass
                    else:
                        response["error_details"] = details
            except Exception as exc:  # noqa: BLE001 - report malformed requests
                logger.exception("router rpc failure")
                outcome = "internal"
                response = {"id": request_id, "error": f"internal error: {exc}"}
        finally:
            self._metrics.inflight.dec()
            self._metrics.requests.labels(method or "<unparsed>", outcome).inc()
            self._metrics.latency.labels(method or "<unparsed>").observe(
                time.perf_counter() - started
            )
        async with write_lock:
            if writer.is_closing():
                return
            try:
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
            except ConnectionError:
                pass


class RouterDaemon:
    """One router process: a :class:`Router` core behind a listener."""

    def __init__(
        self,
        topology: Topology,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str = "",
        metrics_port: int | None = None,
        name: str = "router",
    ):
        self.router = Router(topology, auth_token=auth_token, name=name)
        self.rpc = RouterRpcServer(self.router, host, port, auth_token=auth_token)
        self._metrics_http: MetricsHttpServer | None = None
        if metrics_port is not None:
            self._metrics_http = MetricsHttpServer(
                self.router.render_metrics, host, metrics_port
            )

    @property
    def rpc_address(self) -> tuple[str, int]:
        return self.rpc.address

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        if self._metrics_http is None:
            return None
        return self._metrics_http.address

    async def start(self) -> None:
        await self.rpc.start()
        if self._metrics_http is not None:
            await self._metrics_http.start()

    async def stop(self) -> None:
        if self._metrics_http is not None:
            await self._metrics_http.stop()
        await self.rpc.stop()
        await self.router.close()


async def run_until_signal(daemon: RouterDaemon) -> None:
    """Start the router and serve until SIGINT/SIGTERM.

    No drain phase on purpose: the router holds no instance state, so
    tearing it down mid-request is exactly the failure the idempotent
    retry path is built for.
    """
    await daemon.start()
    host, port = daemon.rpc_address
    logger.info(
        "router %r up: rpc on %s:%d, %d groups",
        daemon.router.name,
        host,
        port,
        len(daemon.router.topology.groups),
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX platforms
            pass
    await stop.wait()
    logger.info("shutting down router %r", daemon.router.name)
    await daemon.stop()


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Run one Thetacrypt router")
    parser.add_argument(
        "--topology", required=True, help="federation Topology JSON file"
    )
    parser.add_argument("--rpc-host", default="127.0.0.1")
    parser.add_argument("--rpc-port", type=int, default=0)
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="plain-HTTP Prometheus scrape port (omit to disable)",
    )
    parser.add_argument("--auth-token", default="")
    parser.add_argument("--name", default="router")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    with open(args.topology) as handle:
        topology = Topology.from_json(handle.read())
    daemon = RouterDaemon(
        topology,
        host=args.rpc_host,
        port=args.rpc_port,
        auth_token=args.auth_token,
        metrics_port=args.metrics_port,
        name=args.name,
    )
    asyncio.run(run_until_signal(daemon))


if __name__ == "__main__":
    main()
