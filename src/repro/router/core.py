"""The stateless router core: front-side RPC semantics, back-side fan-out.

A :class:`Router` holds no protocol state at all — only the topology, one
:class:`ThetacryptClient` per group, and its metric registry.  Every
request is resolved to the owning group (pinned assignment, else the
consistent-hash ring) and fanned out to that group's members; the first
assembled answer wins, exactly as the direct client does against a single
Θ-network.  Because instance ids derive from request content and
finalized results are cached (durably on nodes with a ``data_dir``), a
router crash loses nothing: the caller retries the idempotent request
through any router and the owning group answers from its result cache.

Redirects: when a group rejects a request with ``wrong_group`` (its
topology says another group owns the key — i.e. this router's view was
stale), the router follows the owning group named in the error payload,
bounded by ``max_redirects`` and counted as
``repro_router_redirects_total{source="router"}``.
"""

from __future__ import annotations

import asyncio
import time

from ..errors import RpcError
from ..service.client import ThetacryptClient
from ..telemetry import (
    MetricRegistry,
    RouterMetrics,
    default_registry,
    render_text,
)
from .topology import Topology

#: Methods the router resolves by key id and forwards to the owning group.
_KEYED_METHODS = frozenset(
    {
        "decrypt",
        "sign",
        "flip_coin",
        "precompute",
        "run_dkg",
        "refresh_key",
        "encrypt",
        "verify_signature",
    }
)

#: Keyed methods whose result is one threshold-op payload assembled by the
#: group: fan out to every member, first success wins.
_FAN_FIRST_METHODS = frozenset({"decrypt", "sign", "flip_coin"})

#: Keyed methods that must run on *every* group member (key mutations and
#: precomputation fill per-node state); all members must succeed.
_GROUP_WIDE_METHODS = frozenset({"precompute", "run_dkg", "refresh_key"})


class Router:
    """Stateless front-end over a federation of threshold groups."""

    def __init__(
        self,
        topology: Topology,
        auth_token: str = "",
        registry: MetricRegistry | None = None,
        max_redirects: int = 2,
        name: str = "router",
    ):
        self.topology = topology
        self.name = name
        self.registry = registry if registry is not None else MetricRegistry()
        self._metrics = RouterMetrics(self.registry)
        self._max_redirects = max_redirects
        self._clients = {
            spec.group_id: ThetacryptClient(
                spec.rpc_endpoints(), auth_token=auth_token
            )
            for spec in topology.groups
        }

    # -- routing ---------------------------------------------------------------

    def owner_of(self, key_id: str) -> str:
        return self.topology.owner_of(key_id)

    def group_client(self, group_id: str) -> ThetacryptClient:
        if group_id not in self._clients:
            raise RpcError(f"unknown group {group_id!r}")
        return self._clients[group_id]

    async def dispatch(self, method: str, params: dict) -> dict:
        """Front-side dispatch: same method/param/result shapes as a node."""
        if method in _KEYED_METHODS:
            key_id = params.get("key_id")
            if not key_id:
                raise RpcError(f"{method} requires a key_id")
            return await self._dispatch_keyed(method, str(key_id), params)
        if method == "ping":
            # node_id 0 never names a real node; the extra fields identify
            # the responder as a router to topology-aware callers.
            return {
                "node_id": 0,
                "router": self.name,
                "groups": list(self.topology.group_ids),
            }
        if method == "metrics":
            return {"text": self.render_metrics()}
        if method == "node_stats":
            return self.stats()
        if method == "list_keys":
            return {"keys": await self._list_keys()}
        if method == "status":
            return await self._status(params)
        raise RpcError(f"unknown method {method!r}")

    async def _dispatch_keyed(
        self, method: str, key_id: str, params: dict
    ) -> dict:
        group = self.owner_of(key_id)
        redirects = 0
        while True:
            current = group
            started = time.perf_counter()
            gauge = self._metrics.inflight.labels(current)
            gauge.inc()
            outcome = "ok"
            try:
                return await self._forward(current, method, params)
            except Exception as exc:
                outcome = "error"
                target = self._redirect_target(exc)
                if (
                    target is not None
                    and target != current
                    and redirects < self._max_redirects
                ):
                    outcome = "redirected"
                    self._metrics.redirects.labels("router").inc()
                    group = target
                    redirects += 1
                    continue
                raise
            finally:
                gauge.dec()
                self._metrics.upstream_seconds.labels(current).observe(
                    time.perf_counter() - started
                )
                self._metrics.requests.labels(current, method, outcome).inc()

    def _redirect_target(self, exc: Exception) -> str | None:
        if getattr(exc, "reason", None) != "wrong_group":
            return None
        details = getattr(exc, "details", None) or {}
        target = details.get("group")
        return target if target in self._clients else None

    async def _forward(self, group: str, method: str, params: dict) -> dict:
        client = self._clients[group]
        if method in _FAN_FIRST_METHODS:
            return await self._fan_first(client, method, params)
        if method in _GROUP_WIDE_METHODS:
            return await self._group_wide(client, method, params)
        # Single-node scheme-API call (encrypt / verify_signature): any
        # member can answer; walk them until one does.
        errors: list[Exception] = []
        for node_id in client.node_ids:
            try:
                return await client.call(node_id, method, params)
            except RpcError as exc:
                if getattr(exc, "reason", None) == "wrong_group":
                    raise
                if str(exc) == "connection closed":
                    errors.append(exc)
                    continue
                raise
            except (ConnectionError, OSError) as exc:
                errors.append(exc)
        raise RpcError(f"group {group!r}: all members unreachable: {errors}")

    async def _fan_first(
        self, client: ThetacryptClient, method: str, params: dict
    ) -> dict:
        """First assembled group answer wins; ``wrong_group`` fails fast.

        Forwards the raw request payload untouched (no decode/re-encode):
        the router is a pass-through for the RPC protocol, so new request
        fields never need router support.
        """
        tasks = [
            asyncio.ensure_future(client.call(node_id, method, params))
            for node_id in client.node_ids
        ]
        try:
            errors: list[Exception] = []
            for future in asyncio.as_completed(tasks):
                try:
                    return await future
                except Exception as exc:  # noqa: BLE001 - try other members
                    if getattr(exc, "reason", None) == "wrong_group":
                        raise
                    errors.append(exc)
            raise RpcError(f"all group members failed: {errors}")
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _group_wide(
        self, client: ThetacryptClient, method: str, params: dict
    ) -> dict:
        results = await client.broadcast(method, params)
        for node_id, result in results.items():
            if isinstance(result, Exception):
                if getattr(result, "reason", None) == "wrong_group":
                    raise result
                raise RpcError(
                    f"group member {node_id} failed {method}: {result}"
                )
        # All members agree on the shape; group-key consistency checks are
        # the group's own job (see ThetacryptClient.run_dkg).
        first = next(iter(results.values()))
        keys = {
            response.get("group_key")
            for response in results.values()
            if "group_key" in response
        }
        if len(keys) > 1:
            raise RpcError(f"group members disagree on the group key: {keys}")
        return first

    # -- introspection ---------------------------------------------------------

    async def _list_keys(self) -> list[dict]:
        """Union of every group's key catalog, annotated with the owner."""
        merged: list[dict] = []
        for group_id, client in self._clients.items():
            last_error: Exception | None = None
            for node_id in client.node_ids:
                try:
                    result = await client.call(node_id, "list_keys", {})
                except (RpcError, ConnectionError, OSError) as exc:
                    last_error = exc
                    continue
                for entry in result.get("keys", []):
                    merged.append({**entry, "group": group_id})
                last_error = None
                break
            if last_error is not None:
                merged.append({"group": group_id, "error": str(last_error)})
        return merged

    async def _status(self, params: dict) -> dict:
        """Instance status: the id alone does not name a group, so ask all."""
        errors: list[Exception] = []
        for group_id, client in self._clients.items():
            for node_id in client.node_ids:
                try:
                    result = await client.call(node_id, "status", params)
                except (RpcError, ConnectionError, OSError) as exc:
                    errors.append(exc)
                    continue
                return {**result, "group": group_id}
        raise RpcError(f"no group knows instance: {errors}")

    def stats(self) -> dict:
        """Health snapshot: per-shard request counts from the registry."""
        shards: dict[str, dict] = {
            group_id: {"requests": {}, "inflight": 0}
            for group_id in self.topology.group_ids
        }
        requests = self.registry.get("repro_router_requests_total")
        if requests is not None:
            for child in requests.children():
                labels = dict(child.label_items)
                shard = shards.setdefault(
                    labels.get("group", "?"), {"requests": {}, "inflight": 0}
                )
                outcome = labels.get("outcome", "?")
                shard["requests"][outcome] = (
                    shard["requests"].get(outcome, 0) + child.value
                )
        inflight = self.registry.get("repro_router_inflight")
        if inflight is not None:
            for child in inflight.children():
                labels = dict(child.label_items)
                if labels.get("group") in shards:
                    shards[labels["group"]]["inflight"] = child.value
        return {
            "router": self.name,
            "groups": list(self.topology.group_ids),
            "vnodes": self.topology.vnodes,
            "assignments": dict(self.topology.assignments),
            "shards": shards,
        }

    def render_metrics(self) -> str:
        """This router's Prometheus exposition (own + process metrics)."""
        return render_text(self.registry, default_registry())

    async def close(self) -> None:
        await asyncio.gather(
            *(client.close() for client in self._clients.values()),
            return_exceptions=True,
        )
