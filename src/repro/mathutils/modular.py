"""Modular arithmetic primitives: inverses, CRT, Jacobi, square roots."""

from __future__ import annotations

from ..errors import CryptoError


def inverse_mod(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises :class:`CryptoError` when no inverse exists (gcd != 1), which in a
    threshold-RSA context usually signals a catastrophically lucky factoring
    event and must not pass silently.
    """
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:
        raise CryptoError(f"{value} is not invertible modulo {modulus}") from exc


def batch_inverse(values: "list[int] | tuple[int, ...]", modulus: int) -> list[int]:
    """Invert many values with a single modular inversion (Montgomery's trick).

    Computes ``[v^-1 mod modulus for v in values]`` using one call to
    :func:`inverse_mod` plus ``3(k-1)`` multiplications, instead of ``k``
    inversions.  This is the workhorse behind the cached Lagrange coefficient
    path: all ``t+1`` interpolation denominators share one inversion.

    Raises :class:`CryptoError` if any value is zero or shares a factor with
    the modulus (same contract as :func:`inverse_mod`).
    """
    if not values:
        return []
    prefix: list[int] = []
    acc = 1
    for value in values:
        if value % modulus == 0:
            raise CryptoError(f"0 is not invertible modulo {modulus}")
        acc = acc * value % modulus
        prefix.append(acc)
    inv = inverse_mod(acc, modulus)
    out = [0] * len(values)
    for idx in range(len(values) - 1, -1, -1):
        before = prefix[idx - 1] if idx else 1
        out[idx] = inv * before % modulus
        inv = inv * values[idx] % modulus
    return out


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Combine ``x = r1 mod m1`` and ``x = r2 mod m2`` for coprime moduli."""
    m1_inv = inverse_mod(m1, m2)
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * m1_inv) % m2)) % (m1 * m2)


def jacobi_symbol(a: int, n: int) -> int:
    """Compute the Jacobi symbol (a/n) for odd ``n`` > 0."""
    if n <= 0 or n % 2 == 0:
        raise CryptoError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sqrt_mod_prime(a: int, p: int) -> int:
    """Return a square root of ``a`` modulo prime ``p`` (Tonelli–Shanks).

    Raises :class:`CryptoError` when ``a`` is a non-residue.  Used by the
    hash-to-curve routines that need y from a curve equation.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if pow(a, (p - 1) // 2, p) != 1:
        raise CryptoError("no square root exists")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli–Shanks for p == 1 (mod 4).
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        while t2 != 1:
            t2 = (t2 * t2) % p
            i += 1
            if i == m:
                raise CryptoError("Tonelli-Shanks failed: input not a residue")
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, (b * b) % p
        t, r = (t * c) % p, (r * b) % p
    return r
