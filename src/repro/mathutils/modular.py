"""Modular arithmetic primitives: inverses, CRT, Jacobi, square roots.

Since the math-backend registry (docs/performance.md, "Math backends")
these functions are thin wrappers that dispatch through the active
backend — pure Python, batched pure Python, or gmpy2 — and translate the
backends' ``ValueError`` domain errors into :class:`CryptoError`.  The
public contracts below are unchanged from the original pure
implementations, and every backend is bit-identical on them.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import CryptoError
from . import backends


def inverse_mod(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises :class:`CryptoError` when no inverse exists (gcd != 1), which in a
    threshold-RSA context usually signals a catastrophically lucky factoring
    event and must not pass silently.
    """
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    try:
        return backends.modinv(value, modulus)
    except ValueError as exc:
        raise CryptoError(f"{value} is not invertible modulo {modulus}") from exc


def batch_inverse(values: "Sequence[int]", modulus: int) -> list[int]:
    """Invert many values with a single modular inversion (Montgomery's trick).

    Computes ``[v^-1 mod modulus for v in values]`` using one call to
    :func:`inverse_mod` plus ``3(k-1)`` multiplications, instead of ``k``
    inversions.  This is the workhorse behind the cached Lagrange coefficient
    path: all ``t+1`` interpolation denominators share one inversion.

    Raises :class:`CryptoError` if any value is zero or shares a factor with
    the modulus (same contract as :func:`inverse_mod`).  The failure is
    all-or-nothing: a bad value anywhere in the list poisons the shared
    inversion, so no partial results are returned.
    """
    if modulus <= 0:
        raise CryptoError("modulus must be positive")
    try:
        return backends.batch_modinv(values, modulus)
    except ValueError as exc:
        raise CryptoError(str(exc)) from exc


def modexp(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` through the active backend.

    Negative exponents invert the base first (``CryptoError`` when no
    inverse exists), matching built-in ``pow`` semantics.
    """
    try:
        return backends.modexp(base, exponent, modulus)
    except ValueError as exc:
        raise CryptoError(
            f"{base} is not invertible modulo {modulus}"
        ) from exc


def modexp_many(base: int, exponents: Sequence[int], modulus: int) -> list[int]:
    """Many powers of one base in one pass (fused by capable backends)."""
    try:
        return backends.modexp_many(base, exponents, modulus)
    except ValueError as exc:
        raise CryptoError(str(exc)) from exc


def multiexp_mod(pairs: Sequence[tuple[int, int]], modulus: int) -> int:
    """Fused product ``Π base^exp mod modulus`` over ``(base, exp)`` pairs.

    Negative exponents are handled by inverting the base (``CryptoError``
    when not invertible) — the hot step of SH00's share combination.
    """
    try:
        return backends.multiexp(pairs, modulus)
    except ValueError as exc:
        raise CryptoError(str(exc)) from exc


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Combine ``x = r1 mod m1`` and ``x = r2 mod m2`` for coprime moduli.

    Non-coprime moduli make ``m1`` non-invertible modulo ``m2`` and raise
    :class:`CryptoError` (no silent wrong answers for inconsistent inputs).
    """
    m1_inv = inverse_mod(m1, m2)
    diff = (r2 - r1) % m2
    return (r1 + m1 * ((diff * m1_inv) % m2)) % (m1 * m2)


def jacobi_symbol(a: int, n: int) -> int:
    """Compute the Jacobi symbol (a/n) for odd ``n`` > 0."""
    try:
        return backends.jacobi(a, n)
    except ValueError as exc:
        raise CryptoError(str(exc)) from exc


def sqrt_mod_prime(a: int, p: int) -> int:
    """Return a square root of ``a`` modulo prime ``p`` (Tonelli–Shanks).

    Raises :class:`CryptoError` when ``a`` is a non-residue.  Used by the
    hash-to-curve routines that need y from a curve equation.
    """
    try:
        return backends.sqrt_mod(a, p)
    except ValueError as exc:
        raise CryptoError(str(exc)) from exc
