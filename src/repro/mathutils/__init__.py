"""Number-theoretic building blocks shared by every cryptographic substrate."""

from .backends import (
    active_backend,
    available_backends,
    backend_info,
    set_backend,
    use_backend,
)
from .modular import (
    batch_inverse,
    crt_pair,
    inverse_mod,
    jacobi_symbol,
    modexp,
    modexp_many,
    multiexp_mod,
    sqrt_mod_prime,
)
from .primes import (
    is_probable_prime,
    next_prime,
    random_prime,
    random_safe_prime,
)
from .lagrange import (
    clear_lagrange_cache,
    lagrange_cache_stats,
    lagrange_coefficient,
    lagrange_coefficients_at_zero,
    integer_lagrange_numerator_denominator,
)

__all__ = [
    "active_backend",
    "available_backends",
    "backend_info",
    "batch_inverse",
    "clear_lagrange_cache",
    "lagrange_cache_stats",
    "crt_pair",
    "inverse_mod",
    "jacobi_symbol",
    "modexp",
    "modexp_many",
    "multiexp_mod",
    "set_backend",
    "sqrt_mod_prime",
    "use_backend",
    "is_probable_prime",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    "lagrange_coefficient",
    "lagrange_coefficients_at_zero",
    "integer_lagrange_numerator_denominator",
]
