"""The reference backend: CPython built-ins, no dependencies.

Every other backend is tested bit-identical against this one.  The
implementations here are the canonical ones the repo has always used
(``pow`` for modexp and inverse, Montgomery's trick for batch inversion,
binary Jacobi, Tonelli–Shanks for square roots); :mod:`repro.mathutils.
modular` now delegates to them through the active backend.

Error contract (shared by all backends): primitives raise ``ValueError``
for domain errors — non-invertible values, even Jacobi moduli,
non-residue square roots — matching built-in ``pow(x, -1, m)``.  The
public :mod:`repro.mathutils.modular` wrappers translate those into
:class:`~repro.errors.CryptoError` exactly as before.
"""

from __future__ import annotations

from typing import Sequence


class PureBackend:
    """Pure-Python primitives over CPython's big-int arithmetic."""

    name = "python"

    # -- scalar primitives -------------------------------------------------

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    def modinv(self, value: int, modulus: int) -> int:
        return pow(value, -1, modulus)

    def batch_modinv(self, values: Sequence[int], modulus: int) -> list[int]:
        """Montgomery's trick: one inversion plus 3(k-1) multiplications."""
        if not values:
            return []
        prefix: list[int] = []
        acc = 1
        for value in values:
            if value % modulus == 0:
                raise ValueError(f"0 is not invertible modulo {modulus}")
            acc = acc * value % modulus
            prefix.append(acc)
        inv = self.modinv(acc, modulus)
        out = [0] * len(values)
        for idx in range(len(values) - 1, -1, -1):
            before = prefix[idx - 1] if idx else 1
            out[idx] = inv * before % modulus
            inv = inv * values[idx] % modulus
        return out

    # -- batch entry points (unfused here; ``batched`` overrides) ----------

    def modexp_many(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        return [pow(base, exponent, modulus) for exponent in exponents]

    def multiexp(
        self, pairs: Sequence[tuple[int, int]], modulus: int
    ) -> int:
        result = 1 % modulus
        for base, exponent in pairs:
            result = result * pow(base, exponent, modulus) % modulus
        return result

    # -- number theory -----------------------------------------------------

    def jacobi(self, a: int, n: int) -> int:
        if n <= 0 or n % 2 == 0:
            raise ValueError("Jacobi symbol requires odd positive n")
        a %= n
        result = 1
        while a:
            while a % 2 == 0:
                a //= 2
                if n % 8 in (3, 5):
                    result = -result
            a, n = n, a
            if a % 4 == 3 and n % 4 == 3:
                result = -result
            a %= n
        return result if n == 1 else 0

    def sqrt_mod(self, a: int, p: int) -> int:
        """Tonelli–Shanks; ``ValueError`` when ``a`` is a non-residue."""
        a %= p
        if a == 0:
            return 0
        if p == 2:
            return a
        if self.modexp(a, (p - 1) // 2, p) != 1:
            raise ValueError("no square root exists")
        if p % 4 == 3:
            return self.modexp(a, (p + 1) // 4, p)
        # Tonelli–Shanks for p == 1 (mod 4).
        q, s = p - 1, 0
        while q % 2 == 0:
            q //= 2
            s += 1
        z = 2
        while self.modexp(z, (p - 1) // 2, p) != p - 1:
            z += 1
        m = s
        c = self.modexp(z, q, p)
        t = self.modexp(a, q, p)
        r = self.modexp(a, (q + 1) // 2, p)
        while t != 1:
            t2 = t
            i = 0
            while t2 != 1:
                t2 = (t2 * t2) % p
                i += 1
                if i == m:
                    raise ValueError("Tonelli-Shanks failed: input not a residue")
            b = self.modexp(c, 1 << (m - i - 1), p)
            m, c = i, (b * b) % p
            t, r = (t * c) % p, (r * b) % p
        return r
