"""The batched pure-Python backend: fuse same-modulus work.

Scalar calls delegate verbatim to :class:`~.pure.PureBackend` — this
backend can never regress a one-at-a-time operation.  The value is in the
batch entry points, which fuse many operations sharing a modulus into one
pass whose per-item cost is far below a native ``pow``:

* :meth:`modexp_many` — many exponents of **one base**: build a windowed
  radix-2^w fixed-base table once (``base^(d·2^(w·b))`` for every window
  position and digit, no doublings at all afterwards) and answer each
  exponent with ~bits/w multiplications instead of ~1.5·bits.
* :meth:`multiexp` — a product ``Π bᵢ^eᵢ``: Straus interleaving shares
  one chain of squarings across all terms (the integer analogue of
  ``Group.multi_exp``).
* :meth:`batch_modinv` — Montgomery's trick, inherited from the pure
  backend (one inversion for the whole list).

The fused paths only engage when the operand shape amortizes the table
build: CPython's native ``pow`` is a tight C loop that pure-Python
windowing cannot beat on small moduli, so below ``FUSE_MIN_BITS`` (or for
tiny batches) everything falls through to the built-ins.  RSA-sized
moduli (SH00 signing: 2048-bit) are where fusing pays 2–4×.
"""

from __future__ import annotations

from typing import Sequence

from .pure import PureBackend

#: Below this modulus size the native ``pow`` C loop wins; delegate.
FUSE_MIN_BITS = 768

#: Minimum same-base batch for which the fixed-base table amortizes
#: (build ≈ blocks·2^w mults, saving ≈ bits per exponent).
FUSE_MIN_EXPONENTS = 4

#: Minimum term count for Straus fusion (k=1 is just a modexp).
FUSE_MIN_TERMS = 2


def _window_for(bits: int) -> int:
    return 5 if bits > 2048 else 4


class BatchedBackend(PureBackend):
    """Pure Python with fused batch paths for large-modulus work."""

    name = "batched"

    def modexp_many(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        bits = modulus.bit_length()
        if (
            bits < FUSE_MIN_BITS
            or len(exponents) < FUSE_MIN_EXPONENTS
            or modulus <= 1
            or any(exponent < 0 for exponent in exponents)
        ):
            return super().modexp_many(base, exponents, modulus)
        base %= modulus
        window = _window_for(bits)
        radix = 1 << window
        mask = radix - 1
        max_bits = max((e.bit_length() for e in exponents), default=0)
        blocks = (max_bits + window - 1) // window
        if blocks == 0:
            return [1 % modulus for _ in exponents]
        # rows[b][d] = base^(d · 2^(w·b)) — the FixedBaseTable layout over
        # plain integers; every exponent then costs ~blocks multiplications.
        rows: list[list[int]] = []
        power = base
        for _ in range(blocks):
            row = [1]
            for _ in range(radix - 1):
                row.append(row[-1] * power % modulus)
            rows.append(row)
            power = row[-1] * power % modulus
        results = []
        for exponent in exponents:
            acc = 1
            block = 0
            while exponent:
                digit = exponent & mask
                if digit:
                    acc = acc * rows[block][digit] % modulus
                exponent >>= window
                block += 1
            results.append(acc % modulus)
        return results

    def multiexp(
        self, pairs: Sequence[tuple[int, int]], modulus: int
    ) -> int:
        bits = modulus.bit_length()
        if bits < FUSE_MIN_BITS or len(pairs) < FUSE_MIN_TERMS or modulus <= 1:
            return super().multiexp(pairs, modulus)
        # Negative exponents: invert the base so Straus sees non-negative
        # digits (same normalization the group multi_exp applies mod q;
        # integer exponents here carry sign instead).
        normalized: list[tuple[int, int]] = []
        for base, exponent in pairs:
            if exponent < 0:
                base = self.modinv(base % modulus, modulus)
                exponent = -exponent
            if exponent:
                normalized.append((base % modulus, exponent))
        if not normalized:
            return 1 % modulus
        window = _window_for(bits)
        radix = 1 << window
        mask = radix - 1
        tables = []
        for base, _ in normalized:
            row = [1, base]
            for _ in range(radix - 2):
                row.append(row[-1] * base % modulus)
            tables.append(row)
        blocks = (
            max(exponent.bit_length() for _, exponent in normalized) + window - 1
        ) // window
        acc = 1
        for block in range(blocks - 1, -1, -1):
            if block != blocks - 1:
                for _ in range(window):
                    acc = acc * acc % modulus
            shift = block * window
            for (_, exponent), row in zip(normalized, tables):
                digit = (exponent >> shift) & mask
                if digit:
                    acc = acc * row[digit] % modulus
        return acc % modulus
