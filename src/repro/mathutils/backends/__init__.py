"""Pluggable math backends: one registry for the big-int hot path.

Every scheme in the reproduction bottoms out in the same handful of
primitives — modular exponentiation, modular inverse, batch inverse,
Jacobi symbols, modular square roots, and multi-exponentiation products.
This package routes all of them through a selectable *backend* so a
faster substrate speeds up every scheme, the worker pool, and the
precompute pipeline at once:

``python``
    The reference backend: CPython's built-in ``pow`` and the PR-1
    Montgomery batch inversion, exactly as the code has always computed.

``batched``
    Same scalar semantics as ``python`` (it delegates one-at-a-time
    calls verbatim, so it can never regress them), plus fused batch
    entry points: shared-window fixed-base tables for many same-base
    modexps, Straus interleaving for Π bᵢ^eᵢ products, and Montgomery
    batch inversion behind every ``batch_modinv``.  The fused paths only
    engage where the operand shape actually amortizes the table build
    (large moduli, enough exponents); anything else falls through to the
    built-ins.

``gmpy2``
    Optional: GMP-backed ``powmod``/``invert``/``jacobi`` wrappers,
    auto-selected at import time when the library is present.

Selection order (first match wins):

1. explicit :func:`set_backend` / ``NodeConfig.math_backend`` (a value
   other than ``"auto"``),
2. the ``REPRO_MATH_BACKEND`` environment variable,
3. ``gmpy2`` when importable, else ``batched``.

Every backend must be **bit-identical** to ``python`` on every primitive
— enforced by the parametrized matrix in ``tests/test_math_backends.py``
— so selection is purely a performance decision, never a correctness one.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from typing import Iterator, Sequence

from ...errors import ConfigurationError
from .pure import PureBackend

logger = logging.getLogger(__name__)

#: Names accepted by :func:`set_backend` and ``NodeConfig.math_backend``.
BACKEND_NAMES = ("auto", "python", "batched", "gmpy2")

#: Environment override consulted by auto-selection.
ENV_VAR = "REPRO_MATH_BACKEND"


def gmpy2_available() -> bool:
    """True when the optional gmpy2 library imports."""
    try:
        import gmpy2  # noqa: F401
    except ImportError:
        return False
    return True


def _build(name: str):
    if name == "python":
        return PureBackend()
    if name == "batched":
        from .batched import BatchedBackend

        return BatchedBackend()
    if name == "gmpy2":
        from .gmpy2_backend import Gmpy2Backend  # raises ImportError if absent

        return Gmpy2Backend()
    raise ConfigurationError(
        f"unknown math backend {name!r}; known: {BACKEND_NAMES}"
    )


def _auto_name() -> tuple[str, str]:
    """(backend name, how it was chosen) for the ``auto`` policy."""
    env = os.environ.get(ENV_VAR, "").strip()
    if env and env != "auto":
        if env not in BACKEND_NAMES:
            logger.warning(
                "%s=%r is not one of %s; ignoring", ENV_VAR, env, BACKEND_NAMES
            )
        elif env == "gmpy2" and not gmpy2_available():
            logger.warning(
                "%s=gmpy2 but gmpy2 does not import; falling back", ENV_VAR
            )
        else:
            return env, "env"
    if gmpy2_available():
        return "gmpy2", "auto"
    return "batched", "auto"


class _State:
    """The process-wide active backend (one, like the precompute caches)."""

    def __init__(self) -> None:
        name, via = _auto_name()
        self.backend = _build(name)
        self.selected_via = via


_STATE = _State()


def active_backend():
    """The backend every routed primitive currently dispatches through."""
    return _STATE.backend


def available_backends() -> list[str]:
    """Concrete backend names usable on this host (test matrix input)."""
    names = ["python", "batched"]
    if gmpy2_available():
        names.append("gmpy2")
    return names


def set_backend(name: str):
    """Select the active backend; ``"auto"`` re-runs auto-selection.

    Raises :class:`ConfigurationError` for unknown names and for
    ``"gmpy2"`` when the library is absent — an explicit request must not
    silently degrade (auto/env selection degrades with a warning instead).
    """
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown math backend {name!r}; known: {BACKEND_NAMES}"
        )
    if name == "auto":
        auto, via = _auto_name()
        _STATE.backend = _build(auto)
        _STATE.selected_via = via
    else:
        if name == "gmpy2" and not gmpy2_available():
            raise ConfigurationError(
                "math backend 'gmpy2' requested but gmpy2 does not import"
            )
        _STATE.backend = _build(name)
        _STATE.selected_via = "explicit"
    return _STATE.backend


@contextmanager
def use_backend(name: str) -> Iterator[object]:
    """Temporarily switch backends (tests and benchmarks)."""
    previous, previous_via = _STATE.backend, _STATE.selected_via
    try:
        yield set_backend(name)
    finally:
        _STATE.backend, _STATE.selected_via = previous, previous_via


def backend_info() -> dict:
    """Snapshot for ``stats()["crypto_backend"]`` and the info metric."""
    return {
        "name": _STATE.backend.name,
        "selected_via": _STATE.selected_via,
        "gmpy2_available": gmpy2_available(),
        "available": available_backends(),
    }


# ---------------------------------------------------------------------------
# Dispatch helpers: the routed call sites use these module-level functions
# so the active backend is one global load away from every primitive.
# ---------------------------------------------------------------------------


def modexp(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` (negative exponents invert)."""
    return _STATE.backend.modexp(base, exponent, modulus)


def modinv(value: int, modulus: int) -> int:
    """Modular inverse; raises ``ValueError`` when gcd != 1 (like ``pow``)."""
    return _STATE.backend.modinv(value, modulus)


def batch_modinv(values: Sequence[int], modulus: int) -> list[int]:
    """``[v^-1 mod m for v in values]``; ``ValueError`` on any bad value."""
    return _STATE.backend.batch_modinv(values, modulus)


def modexp_many(base: int, exponents: Sequence[int], modulus: int) -> list[int]:
    """Many powers of one base: ``[base^e mod m for e in exponents]``."""
    return _STATE.backend.modexp_many(base, exponents, modulus)


def multiexp(
    pairs: Sequence[tuple[int, int]], modulus: int
) -> int:
    """Fused product ``Π base^exp mod modulus`` over ``(base, exp)`` pairs."""
    return _STATE.backend.multiexp(pairs, modulus)


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``."""
    return _STATE.backend.jacobi(a, n)


def sqrt_mod(a: int, p: int) -> int:
    """Square root mod prime ``p``; ``ValueError`` for a non-residue."""
    return _STATE.backend.sqrt_mod(a, p)
