"""The gmpy2 backend: GMP-accelerated primitives, optional at runtime.

Importing this module raises :class:`ImportError` when gmpy2 is absent;
the registry auto-selects it only after a successful probe, and an
explicit ``set_backend("gmpy2")`` surfaces a
:class:`~repro.errors.ConfigurationError` instead of degrading silently.

GMP's ``powmod`` uses sliding windows + Montgomery reduction in C, which
is worth 3–10× over CPython ``pow`` on the RSA-sized moduli of SH00 and
a solid constant factor on the 254/256-bit curve fields.  Results are
converted back to ``int`` at the boundary so every caller sees plain
Python integers — bit-identity with the pure backend is exact, enforced
by the test matrix.

Error contract: domain errors surface as ``ValueError`` like the pure
backend (gmpy2 raises ``ZeroDivisionError`` for non-invertible values;
translated here).
"""

from __future__ import annotations

from typing import Sequence

from .pure import PureBackend

import gmpy2
from gmpy2 import mpz


class Gmpy2Backend(PureBackend):
    """GMP-backed modexp/inverse/jacobi; inherits the batch structure."""

    name = "gmpy2"

    def modexp(self, base: int, exponent: int, modulus: int) -> int:
        if modulus <= 0:
            raise ValueError("pow() 3rd argument cannot be 0")
        try:
            return int(gmpy2.powmod(mpz(base), mpz(exponent), mpz(modulus)))
        except (ZeroDivisionError, ValueError) as exc:
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from exc

    def modinv(self, value: int, modulus: int) -> int:
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        try:
            return int(gmpy2.invert(mpz(value), mpz(modulus)))
        except ZeroDivisionError as exc:
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from exc

    def batch_modinv(self, values: Sequence[int], modulus: int) -> list[int]:
        """Montgomery's trick over mpz (one ``invert``, 3(k-1) muls)."""
        if not values:
            return []
        m = mpz(modulus)
        prefix: list = []
        acc = mpz(1)
        for value in values:
            value = mpz(value)
            if value % m == 0:
                raise ValueError(f"0 is not invertible modulo {modulus}")
            acc = acc * value % m
            prefix.append(acc)
        try:
            inv = gmpy2.invert(acc, m)
        except ZeroDivisionError as exc:
            raise ValueError(
                "base is not invertible for the given modulus"
            ) from exc
        out = [0] * len(values)
        for idx in range(len(values) - 1, -1, -1):
            before = prefix[idx - 1] if idx else mpz(1)
            out[idx] = int(inv * before % m)
            inv = inv * mpz(values[idx]) % m
        return out

    def modexp_many(
        self, base: int, exponents: Sequence[int], modulus: int
    ) -> list[int]:
        b, m = mpz(base), mpz(modulus)
        return [int(gmpy2.powmod(b, mpz(e), m)) for e in exponents]

    def multiexp(
        self, pairs: Sequence[tuple[int, int]], modulus: int
    ) -> int:
        m = mpz(modulus)
        acc = mpz(1 % modulus)
        for base, exponent in pairs:
            acc = acc * gmpy2.powmod(mpz(base), mpz(exponent), m) % m
        return int(acc)

    def jacobi(self, a: int, n: int) -> int:
        if n <= 0 or n % 2 == 0:
            raise ValueError("Jacobi symbol requires odd positive n")
        return int(gmpy2.jacobi(mpz(a), mpz(n)))

    def sqrt_mod(self, a: int, p: int) -> int:
        # gmpy2 has no modular sqrt on plain mpz; Tonelli–Shanks from the
        # pure backend but with every pow routed through GMP (self.modexp).
        return super().sqrt_mod(a, p)
