"""Lagrange interpolation coefficients over prime fields and the integers.

Two flavours are needed:

* **Field coefficients** for discrete-log schemes (SG02, BLS04, CKS05, KG20,
  BZ03): shares live in Z_q for a public prime q, so coefficients are exact
  field elements.
* **Integer coefficients** for Shoup's RSA scheme (SH00): the group order
  ``m = p'q'`` is secret, so division is impossible.  Shoup's trick scales by
  ``Δ = n!`` so that ``Δ·λ_i`` is an integer.
"""

from __future__ import annotations

from math import factorial
from typing import Mapping, Sequence

from ..errors import CryptoError, DuplicateShareError
from .modular import inverse_mod


def _check_distinct(xs: Sequence[int]) -> None:
    if len(set(xs)) != len(xs):
        raise DuplicateShareError(f"duplicate interpolation points in {list(xs)}")


def lagrange_coefficient(xs: Sequence[int], i: int, x: int, modulus: int) -> int:
    """Coefficient λ_i such that f(x) = Σ λ_i f(x_i) over Z_modulus."""
    if i not in xs:
        raise CryptoError(f"point {i} not among interpolation points {list(xs)}")
    _check_distinct(xs)
    num, den = 1, 1
    for j in xs:
        if j == i:
            continue
        num = (num * (x - j)) % modulus
        den = (den * (i - j)) % modulus
    return (num * inverse_mod(den, modulus)) % modulus


def lagrange_coefficients_at_zero(
    xs: Sequence[int], modulus: int
) -> Mapping[int, int]:
    """All coefficients λ_i for recovering f(0) from points ``xs``."""
    _check_distinct(xs)
    return {i: lagrange_coefficient(xs, i, 0, modulus) for i in xs}


def interpolate_at(
    points: Mapping[int, int], x: int, modulus: int
) -> int:
    """Evaluate the interpolating polynomial through ``points`` at ``x``."""
    xs = list(points)
    total = 0
    for i in xs:
        total = (total + points[i] * lagrange_coefficient(xs, i, x, modulus)) % modulus
    return total


def integer_lagrange_numerator_denominator(
    xs: Sequence[int], i: int, x: int
) -> tuple[int, int]:
    """Exact rational Lagrange coefficient (numerator, denominator) at ``x``."""
    if i not in xs:
        raise CryptoError(f"point {i} not among interpolation points {list(xs)}")
    _check_distinct(xs)
    num, den = 1, 1
    for j in xs:
        if j == i:
            continue
        num *= x - j
        den *= i - j
    return num, den


def shoup_lagrange_coefficient(n: int, xs: Sequence[int], i: int, x: int = 0) -> int:
    """Shoup's integer coefficient ``λ^Δ_i = Δ · λ_i`` with ``Δ = n!``.

    Because every ``(i - j)`` with ``i, j ≤ n`` divides ``n!``, the scaled
    coefficient is an integer even though λ_i itself is rational.
    """
    num, den = integer_lagrange_numerator_denominator(xs, i, x)
    delta = factorial(n)
    scaled, remainder = divmod(delta * num, den)
    if remainder:
        raise CryptoError("Shoup coefficient did not clear the denominator")
    return scaled
