"""Lagrange interpolation coefficients over prime fields and the integers.

Two flavours are needed:

* **Field coefficients** for discrete-log schemes (SG02, BLS04, CKS05, KG20,
  BZ03): shares live in Z_q for a public prime q, so coefficients are exact
  field elements.
* **Integer coefficients** for Shoup's RSA scheme (SH00): the group order
  ``m = p'q'`` is secret, so division is impossible.  Shoup's trick scales by
  ``Δ = n!`` so that ``Δ·λ_i`` is an integer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from math import factorial
from types import MappingProxyType
from typing import Mapping, Sequence

from ..errors import CryptoError, DuplicateShareError
from .modular import batch_inverse, inverse_mod


def _check_distinct(xs: Sequence[int]) -> None:
    if len(set(xs)) != len(xs):
        raise DuplicateShareError(f"duplicate interpolation points in {list(xs)}")


class _CoefficientCache:
    """Bounded LRU cache for at-zero coefficient sets.

    Every ``combine()`` in the discrete-log schemes interpolates at zero over
    the same handful of signer sets, so the coefficient map is keyed by
    ``(sorted ids, modulus)`` and reused across requests.  Entries are
    immutable mapping proxies, safe to hand to concurrent callers.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._entries: "OrderedDict[tuple[tuple[int, ...], int], Mapping[int, int]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple[tuple[int, ...], int]) -> Mapping[int, int] | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple[tuple[int, ...], int], value: Mapping[int, int]) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.evictions = 0


_CACHE = _CoefficientCache()


def lagrange_cache_stats() -> dict:
    """Hit/size counters for the at-zero coefficient cache (node stats)."""
    return _CACHE.stats()


def clear_lagrange_cache() -> None:
    """Drop all cached coefficient sets and reset counters (tests/benchmarks)."""
    _CACHE.clear()


def lagrange_coefficient(xs: Sequence[int], i: int, x: int, modulus: int) -> int:
    """Coefficient λ_i such that f(x) = Σ λ_i f(x_i) over Z_modulus."""
    if i not in xs:
        raise CryptoError(f"point {i} not among interpolation points {list(xs)}")
    _check_distinct(xs)
    num, den = 1, 1
    for j in xs:
        if j == i:
            continue
        num = (num * (x - j)) % modulus
        den = (den * (i - j)) % modulus
    return (num * inverse_mod(den, modulus)) % modulus


def _coefficients_at_zero_uncached(
    xs: Sequence[int], modulus: int
) -> dict[int, int]:
    """One-pass computation: a single inversion serves all coefficients."""
    numerators: list[int] = []
    denominators: list[int] = []
    for i in xs:
        num, den = 1, 1
        for j in xs:
            if j == i:
                continue
            num = num * (-j) % modulus
            den = den * (i - j) % modulus
        numerators.append(num)
        denominators.append(den)
    inverses = batch_inverse(denominators, modulus)
    return {
        i: num * inv % modulus for i, num, inv in zip(xs, numerators, inverses)
    }


def lagrange_coefficients_at_zero(
    xs: Sequence[int], modulus: int
) -> Mapping[int, int]:
    """All coefficients λ_i for recovering f(0) from points ``xs``.

    Results are served from a bounded LRU cache keyed by the (unordered) set
    of points and the modulus; the uncached path uses Montgomery batch
    inversion so the whole set costs one ``inverse_mod``.  The returned
    mapping is read-only.
    """
    _check_distinct(xs)
    key = (tuple(sorted(xs)), modulus)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    entry: Mapping[int, int] = MappingProxyType(
        _coefficients_at_zero_uncached(xs, modulus)
    )
    _CACHE.put(key, entry)
    return entry


def interpolate_at(
    points: Mapping[int, int], x: int, modulus: int
) -> int:
    """Evaluate the interpolating polynomial through ``points`` at ``x``."""
    xs = list(points)
    total = 0
    for i in xs:
        total = (total + points[i] * lagrange_coefficient(xs, i, x, modulus)) % modulus
    return total


def integer_lagrange_numerator_denominator(
    xs: Sequence[int], i: int, x: int
) -> tuple[int, int]:
    """Exact rational Lagrange coefficient (numerator, denominator) at ``x``."""
    if i not in xs:
        raise CryptoError(f"point {i} not among interpolation points {list(xs)}")
    _check_distinct(xs)
    num, den = 1, 1
    for j in xs:
        if j == i:
            continue
        num *= x - j
        den *= i - j
    return num, den


def shoup_lagrange_coefficient(n: int, xs: Sequence[int], i: int, x: int = 0) -> int:
    """Shoup's integer coefficient ``λ^Δ_i = Δ · λ_i`` with ``Δ = n!``.

    Because every ``(i - j)`` with ``i, j ≤ n`` divides ``n!``, the scaled
    coefficient is an integer even though λ_i itself is rational.
    """
    num, den = integer_lagrange_numerator_denominator(xs, i, x)
    delta = factorial(n)
    scaled, remainder = divmod(delta * num, den)
    if remainder:
        raise CryptoError("Shoup coefficient did not clear the denominator")
    return scaled
