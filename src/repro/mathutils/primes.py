"""Primality testing and prime generation (Miller–Rabin, safe primes).

Used by the RSA substrate (SH00 threshold signatures need ``n = pq`` with
*safe* primes ``p = 2p' + 1``) and by tests that construct small groups.
"""

from __future__ import annotations

import secrets

from ..errors import CryptoError

# Trial-division wheel: small primes knock out most candidates cheaply before
# the expensive Miller-Rabin rounds run.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
]

_MR_ROUNDS = 40


def is_probable_prime(n: int, rounds: int = _MR_ROUNDS) -> bool:
    """Miller–Rabin probable-prime test with ``rounds`` random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 2:
        raise CryptoError("prime must have at least 2 bits")
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def random_safe_prime(bits: int) -> tuple[int, int]:
    """Generate a safe prime ``p = 2q + 1``; returns ``(p, q)``.

    Safe primes underpin Shoup's threshold RSA: the signing exponent is
    shared over Z_{p'q'} where p', q' are the Sophie Germain halves.  Safe
    primes are sparse, so this is slow for large ``bits``; the test suite
    uses 256/512-bit parameters and ships pre-generated 1024/2048-bit
    fixtures (see ``tools/gen_rsa_fixtures.py``).
    """
    if bits < 4:
        raise CryptoError("safe prime must have at least 4 bits")
    while True:
        # Generate the Sophie Germain half first and check both; testing q
        # with few rounds first keeps rejection cheap.
        q = secrets.randbits(bits - 1) | (1 << (bits - 2)) | 1
        if q % 3 != 2:
            # p = 2q+1 would be divisible by 3 unless q == 2 (mod 3).
            continue
        if not is_probable_prime(q, rounds=8):
            continue
        p = 2 * q + 1
        if not is_probable_prime(p, rounds=8):
            continue
        if is_probable_prime(q) and is_probable_prime(p):
            return p, q
