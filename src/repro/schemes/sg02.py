"""SG02 — the Shoup–Gennaro TDH2 threshold cryptosystem.

The first non-interactive threshold cipher provably CCA-secure [44].  This is
the ElGamal-based construction with a zero-knowledge proof of language
membership attached to every ciphertext, plus DLEQ proofs on decryption
shares.  As in the paper (§3.5) we apply the hybrid DHIES-style approach: the
threshold layer encrypts a fresh ChaCha20-Poly1305 key; the payload is
encrypted symmetrically, which is why payload size barely affects latency
(Fig. 5b).

Default group: Ed25519 (Table 3).
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidCiphertextError, InvalidShareError
from ..groups.base import Group, GroupElement
from ..groups.precompute import fixed_pow
from ..groups.registry import get_group
from ..mathutils.lagrange import lagrange_coefficients_at_zero
from ..serialization import Reader, encode_bytes, encode_int, encode_str
from ..sharing.shamir import share_secret
from ..symmetric import AeadError, ChaCha20Poly1305
from .base import SCHEME_TABLE, ThresholdCipher, select_shares
from .dleq import DleqProof, dleq_prove, dleq_verify

_KDF_DOMAIN = b"repro-sg02-kdf"
_CHALLENGE_DOMAIN = b"repro-sg02-challenge"
_GBAR_TAG = b"repro-sg02-second-generator"


def _kdf(element: GroupElement) -> bytes:
    """Derive the 32-byte symmetric-key mask from a group element."""
    return hashlib.sha256(_KDF_DOMAIN + element.to_bytes()).digest()


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class Sg02PublicKey:
    """Service public key h = g^x plus per-party verification keys."""

    group_name: str
    threshold: int
    parties: int
    h: GroupElement
    verification_keys: tuple[GroupElement, ...]

    @property
    def group(self) -> Group:
        return get_group(self.group_name)

    def verification_key(self, party_id: int) -> GroupElement:
        return self.verification_keys[party_id - 1]

    def to_bytes(self) -> bytes:
        return (
            encode_str(self.group_name)
            + encode_int(self.threshold)
            + encode_int(self.parties)
            + encode_bytes(self.h.to_bytes())
            + b"".join(encode_bytes(v.to_bytes()) for v in self.verification_keys)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Sg02PublicKey":
        reader = Reader(data)
        group_name = reader.read_str()
        threshold = reader.read_int()
        parties = reader.read_int()
        group = get_group(group_name)
        h = group.element_from_bytes(reader.read_bytes())
        keys = tuple(
            group.element_from_bytes(reader.read_bytes()) for _ in range(parties)
        )
        reader.finish()
        return Sg02PublicKey(group_name, threshold, parties, h, keys)


@dataclass(frozen=True)
class Sg02KeyShare:
    """Party i's share x_i of the decryption key."""

    id: int
    value: int
    public: Sg02PublicKey


@dataclass(frozen=True)
class Sg02Ciphertext:
    """TDH2 ciphertext: hybrid payload plus the validity proof (e, f)."""

    label: bytes
    masked_key: bytes
    u: GroupElement
    u_bar: GroupElement
    e: int
    f: int
    nonce: bytes
    payload: bytes

    def to_bytes(self) -> bytes:
        return (
            encode_bytes(self.label)
            + encode_bytes(self.masked_key)
            + encode_bytes(self.u.to_bytes())
            + encode_bytes(self.u_bar.to_bytes())
            + encode_int(self.e)
            + encode_int(self.f)
            + encode_bytes(self.nonce)
            + encode_bytes(self.payload)
        )

    @staticmethod
    def from_bytes(data: bytes, group: Group) -> "Sg02Ciphertext":
        reader = Reader(data)
        label = reader.read_bytes()
        masked_key = reader.read_bytes()
        u = group.element_from_bytes(reader.read_bytes())
        u_bar = group.element_from_bytes(reader.read_bytes())
        e = reader.read_int()
        f = reader.read_int()
        nonce = reader.read_bytes()
        payload = reader.read_bytes()
        reader.finish()
        return Sg02Ciphertext(label, masked_key, u, u_bar, e, f, nonce, payload)


@dataclass(frozen=True)
class Sg02DecryptionShare:
    """Partial decryption u_i = u^{x_i} with a DLEQ validity proof."""

    id: int
    u_i: GroupElement
    proof: DleqProof

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.id)
            + encode_bytes(self.u_i.to_bytes())
            + self.proof.to_bytes()
        )

    @staticmethod
    def from_bytes(data: bytes, group: Group) -> "Sg02DecryptionShare":
        reader = Reader(data)
        share_id = reader.read_int()
        u_i = group.element_from_bytes(reader.read_bytes())
        proof = DleqProof.read_from(reader)
        reader.finish()
        return Sg02DecryptionShare(share_id, u_i, proof)


def keygen(
    threshold: int, parties: int, group_name: str = "ed25519"
) -> tuple[Sg02PublicKey, list[Sg02KeyShare]]:
    """Trusted-dealer key generation for SG02."""
    group = get_group(group_name)
    x = group.random_scalar()
    shares = share_secret(x, threshold, parties, group.order)
    h = fixed_pow(group.generator(), x)
    verification_keys = tuple(
        fixed_pow(group.generator(), s.value) for s in shares
    )
    public = Sg02PublicKey(group_name, threshold, parties, h, verification_keys)
    return public, [Sg02KeyShare(s.id, s.value, public) for s in shares]


class Sg02Cipher(ThresholdCipher):
    """The TDH2 scheme against the :class:`ThresholdCipher` interface."""

    info = SCHEME_TABLE["sg02"]

    def _challenge(
        self,
        group: Group,
        masked_key: bytes,
        label: bytes,
        u: GroupElement,
        w: GroupElement,
        u_bar: GroupElement,
        w_bar: GroupElement,
    ) -> int:
        transcript = _CHALLENGE_DOMAIN + encode_bytes(masked_key) + encode_bytes(label)
        for element in (u, w, u_bar, w_bar):
            transcript += encode_bytes(element.to_bytes())
        return group.scalar_from_bytes(hashlib.sha256(transcript).digest())

    def encrypt(
        self, public_key: Sg02PublicKey, plaintext: bytes, label: bytes = b""
    ) -> Sg02Ciphertext:
        group = public_key.group
        g = group.generator()
        g_bar = group.hash_to_element(_GBAR_TAG)
        sym_key = ChaCha20Poly1305.generate_key()
        nonce = secrets.token_bytes(ChaCha20Poly1305.NONCE_SIZE)
        payload = ChaCha20Poly1305(sym_key).encrypt(nonce, plaintext, aad=label)
        r = group.random_scalar()
        s = group.random_scalar()
        masked_key = _xor(sym_key, _kdf(fixed_pow(public_key.h, r)))
        u = fixed_pow(g, r)
        w = fixed_pow(g, s)
        u_bar = fixed_pow(g_bar, r)
        w_bar = fixed_pow(g_bar, s)
        e = self._challenge(group, masked_key, label, u, w, u_bar, w_bar)
        f = (s + r * e) % group.order
        return Sg02Ciphertext(label, masked_key, u, u_bar, e, f, nonce, payload)

    def verify_ciphertext(
        self, public_key: Sg02PublicKey, ciphertext: Sg02Ciphertext
    ) -> None:
        group = public_key.group
        g = group.generator()
        g_bar = group.hash_to_element(_GBAR_TAG)
        w = fixed_pow(g, ciphertext.f) * ciphertext.u ** (-ciphertext.e)
        w_bar = fixed_pow(g_bar, ciphertext.f) * ciphertext.u_bar ** (-ciphertext.e)
        expected = self._challenge(
            group,
            ciphertext.masked_key,
            ciphertext.label,
            ciphertext.u,
            w,
            ciphertext.u_bar,
            w_bar,
        )
        if expected != ciphertext.e:
            raise InvalidCiphertextError("SG02 ciphertext proof invalid")

    def create_decryption_share(
        self, key_share: Sg02KeyShare, ciphertext: Sg02Ciphertext
    ) -> Sg02DecryptionShare:
        public_key = key_share.public
        # Nodes must refuse to decrypt malformed ciphertexts — this check is
        # exactly what makes the scheme CCA secure in the threshold setting.
        self.verify_ciphertext(public_key, ciphertext)
        group = public_key.group
        u_i = ciphertext.u**key_share.value
        proof = dleq_prove(
            group,
            group.generator(),
            ciphertext.u,
            key_share.value,
            context=ciphertext.label,
            h1=public_key.verification_key(key_share.id),
            h2=u_i,
        )
        return Sg02DecryptionShare(key_share.id, u_i, proof)

    def verify_decryption_share(
        self,
        public_key: Sg02PublicKey,
        ciphertext: Sg02Ciphertext,
        share: Sg02DecryptionShare,
    ) -> None:
        if not 1 <= share.id <= public_key.parties:
            raise InvalidShareError(f"share id {share.id} out of range")
        group = public_key.group
        dleq_verify(
            group,
            group.generator(),
            public_key.verification_key(share.id),
            ciphertext.u,
            share.u_i,
            share.proof,
            context=ciphertext.label,
        )

    def verify_decryption_shares(
        self,
        public_key: Sg02PublicKey,
        ciphertext: Sg02Ciphertext,
        shares: Sequence[Sg02DecryptionShare],
    ) -> None:
        """Verify many shares of one ciphertext in a single batched call."""
        from .dleq import DleqStatement, dleq_verify_batch

        for share in shares:
            if not 1 <= share.id <= public_key.parties:
                raise InvalidShareError(f"share id {share.id} out of range")
        group = public_key.group
        generator = group.generator()
        statements = [
            DleqStatement(
                generator,
                public_key.verification_key(share.id),
                ciphertext.u,
                share.u_i,
                share.proof,
                context=ciphertext.label,
            )
            for share in shares
        ]
        dleq_verify_batch(group, statements)

    def combine(
        self,
        public_key: Sg02PublicKey,
        ciphertext: Sg02Ciphertext,
        shares: Sequence[Sg02DecryptionShare],
    ) -> bytes:
        self.verify_ciphertext(public_key, ciphertext)
        group = public_key.group
        chosen = select_shares(shares, public_key.threshold)
        ids = [share.id for share in chosen]
        coefficients = lagrange_coefficients_at_zero(ids, group.order)
        u_x = group.multi_exp(
            [share.u_i for share in chosen],
            [coefficients[share.id] for share in chosen],
        )
        sym_key = _xor(ciphertext.masked_key, _kdf(u_x))
        try:
            return ChaCha20Poly1305(sym_key).decrypt(
                ciphertext.nonce, ciphertext.payload, aad=ciphertext.label
            )
        except AeadError as exc:
            raise InvalidShareError(
                "combined key failed AEAD authentication "
                "(an unverified share was probably included)"
            ) from exc
