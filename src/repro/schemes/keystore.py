"""Key-material serialization: move dealer output between processes.

The trusted dealer runs once, on one machine; each node's share must then
travel to that node (over a secure channel — fixture files here).  Every
scheme's key share serializes as::

    scheme-name | public-key bytes | share id | share secret

and a *keystore* bundles the named shares of one node as JSON.  Public keys
alone (for clients that only encrypt/verify) use the same container without
the secret.
"""

from __future__ import annotations

import json
from typing import Mapping

from ..errors import KeyManagementError, SerializationError
from ..serialization import Reader, encode_bytes, encode_int, encode_str, hexlify, unhexlify
from . import bls04, bz03, cks05, kg20, sg02, sh00
from .keygen import KeyMaterial

_PUBLIC_DECODERS = {
    "sg02": sg02.Sg02PublicKey.from_bytes,
    "bz03": bz03.Bz03PublicKey.from_bytes,
    "sh00": sh00.Sh00PublicKey.from_bytes,
    "bls04": bls04.Bls04PublicKey.from_bytes,
    "kg20": kg20.Kg20PublicKey.from_bytes,
    "cks05": cks05.Cks05PublicKey.from_bytes,
}

_SHARE_TYPES = {
    "sg02": sg02.Sg02KeyShare,
    "bz03": bz03.Bz03KeyShare,
    "sh00": sh00.Sh00KeyShare,
    "bls04": bls04.Bls04KeyShare,
    "kg20": kg20.Kg20KeyShare,
    "cks05": cks05.Cks05KeyShare,
}


def export_key_share(scheme: str, key_share) -> bytes:
    """Serialize one party's share (public part included, self-contained)."""
    if scheme not in _SHARE_TYPES:
        raise KeyManagementError(f"unknown scheme {scheme!r}")
    return (
        encode_str(scheme)
        + encode_bytes(key_share.public.to_bytes())
        + encode_int(key_share.id)
        + encode_int(key_share.value)
    )


def import_key_share(data: bytes):
    """Inverse of :func:`export_key_share`; returns (scheme, key_share)."""
    reader = Reader(data)
    scheme = reader.read_str()
    if scheme not in _PUBLIC_DECODERS:
        raise SerializationError(f"unknown scheme {scheme!r} in key share")
    public = _PUBLIC_DECODERS[scheme](reader.read_bytes())
    share_id = reader.read_int()
    value = reader.read_int()
    reader.finish()
    share = _SHARE_TYPES[scheme](share_id, value, public)
    return scheme, share


def export_public_key(scheme: str, public_key) -> bytes:
    """Serialize just the public part (for encrypt/verify-only clients)."""
    if scheme not in _PUBLIC_DECODERS:
        raise KeyManagementError(f"unknown scheme {scheme!r}")
    return encode_str(scheme) + encode_bytes(public_key.to_bytes())


def import_public_key(data: bytes):
    """Inverse of :func:`export_public_key`; returns (scheme, public_key)."""
    reader = Reader(data)
    scheme = reader.read_str()
    if scheme not in _PUBLIC_DECODERS:
        raise SerializationError(f"unknown scheme {scheme!r} in public key")
    public = _PUBLIC_DECODERS[scheme](reader.read_bytes())
    reader.finish()
    return scheme, public


# ---------------------------------------------------------------------------
# JSON keystore files (one per node).
# ---------------------------------------------------------------------------


def keystore_to_json(shares: Mapping[str, tuple[str, object]]) -> str:
    """Encode {key_id: (scheme, key_share)} as a keystore document."""
    entries = {
        key_id: hexlify(export_key_share(scheme, share))
        for key_id, (scheme, share) in shares.items()
    }
    return json.dumps({"version": 1, "keys": entries}, indent=2)


def keystore_from_json(text: str) -> dict[str, tuple[str, object]]:
    """Decode a keystore document back to {key_id: (scheme, key_share)}."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"keystore is not valid JSON: {exc}") from exc
    if document.get("version") != 1:
        raise SerializationError("unsupported keystore version")
    return {
        key_id: import_key_share(unhexlify(blob))
        for key_id, blob in document.get("keys", {}).items()
    }


def node_keystore(key_material: Mapping[str, KeyMaterial], node_id: int) -> str:
    """Build node ``node_id``'s keystore from dealer output for many keys."""
    return keystore_to_json(
        {
            key_id: (material.scheme, material.share_for(node_id))
            for key_id, material in key_material.items()
        }
    )
