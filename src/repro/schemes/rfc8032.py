"""RFC 8032 Ed25519 compatibility layer.

FROST's output is a Schnorr signature; with the right challenge computation
(SHA-512 over R‖A‖M, little-endian reduction) and the standard 64-byte
encoding, the *threshold* signature verifies under any ordinary Ed25519
verifier — no threshold machinery on the verifying side.  This module
provides:

* :func:`verify` — a standalone RFC 8032 verifier (the "any wallet" side);
* :func:`sign` — single-signer reference signing (deterministic nonce), for
  cross-checking the verifier;
* :class:`FrostEd25519` — KG20 re-parameterized to produce RFC 8032
  signatures (threshold t+1-of-n, byte-compatible output).

The usual caveat applies twice over: deterministic single-signer Ed25519
derives its nonce from the private key, which a threshold signer cannot do;
FROST's random nonces are the standard answer and verify identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidSignatureError
from ..groups.ed25519 import L, Ed25519Group, ed25519
from ..groups.precompute import fixed_pow
from . import kg20


def _challenge(r_bytes: bytes, public_bytes: bytes, message: bytes) -> int:
    """k = SHA-512(R ‖ A ‖ M) interpreted little-endian, reduced mod L."""
    digest = hashlib.sha512(r_bytes + public_bytes + message).digest()
    return int.from_bytes(digest, "little") % L


def sign(secret_scalar: int, message: bytes) -> bytes:
    """Reference single-signer signature (nonce from SHA-512, RFC style).

    ``secret_scalar`` is the already-clamped/derived scalar a with public
    key A = a·B (we operate at the scalar level; seed expansion is the
    caller's concern).
    """
    group = ed25519()
    public = fixed_pow(group.generator(), secret_scalar)
    nonce_seed = hashlib.sha512(
        b"repro-rfc8032-nonce"
        + secret_scalar.to_bytes(32, "little")
        + message
    ).digest()
    r = int.from_bytes(nonce_seed, "little") % L
    big_r = fixed_pow(group.generator(), r)
    k = _challenge(big_r.to_bytes(), public.to_bytes(), message)
    s = (r + k * secret_scalar) % L
    return big_r.to_bytes() + s.to_bytes(32, "little")


def verify(public_bytes: bytes, message: bytes, signature: bytes) -> None:
    """The plain RFC 8032 check: 8·S·B == 8·R + 8·k·A (cofactorless here).

    Raises :class:`InvalidSignatureError` on failure.  This function knows
    nothing about thresholds — it is "the wallet's verifier".
    """
    group = ed25519()
    if len(signature) != 64:
        raise InvalidSignatureError("ed25519 signature must be 64 bytes")
    try:
        big_r = group.element_from_bytes(signature[:32])
        public = group.element_from_bytes(public_bytes)
    except Exception as exc:
        raise InvalidSignatureError(f"malformed point encoding: {exc}") from exc
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        raise InvalidSignatureError("non-canonical scalar in signature")
    k = _challenge(signature[:32], public_bytes, message)
    if fixed_pow(group.generator(), s) != big_r * public**k:
        raise InvalidSignatureError("ed25519 verification equation failed")


@dataclass(frozen=True)
class FrostEd25519Signature:
    """A threshold-produced, RFC 8032-encoded signature."""

    data: bytes  # R (32) || S (32, little-endian)


class FrostEd25519(kg20.Kg20SignatureScheme):
    """KG20 with RFC 8032 challenge and encoding.

    Everything else — commitments, binding factors, share verification,
    the wait-for-all combine — is inherited unchanged; only the challenge
    hash and the output format differ.  The resulting key and signature are
    indistinguishable from single-signer Ed25519 to any verifier.
    """

    def challenge(self, group: Ed25519Group, r, y, message: bytes) -> int:
        return _challenge(r.to_bytes(), y.to_bytes(), message)

    def sign_threshold(
        self,
        public_key: kg20.Kg20PublicKey,
        key_shares: Sequence[kg20.Kg20KeyShare],
        message: bytes,
    ) -> FrostEd25519Signature:
        """Convenience: run both FROST rounds in-process over ``key_shares``."""
        nonces = {share.id: self.commit(share) for share in key_shares}
        commitments = [nonce[1] for nonce in nonces.values()]
        z_shares = [
            self.sign_round(share, message, nonces[share.id][0], commitments)
            for share in key_shares
        ]
        signature = self.combine(public_key, message, z_shares, commitments)
        return FrostEd25519Signature(
            signature.r.to_bytes() + (signature.z % L).to_bytes(32, "little")
        )


def frost_keygen(threshold: int, parties: int):
    """Key material whose public key doubles as an RFC 8032 Ed25519 key."""
    return kg20.keygen(threshold, parties, group_name="ed25519")
