"""Common interfaces for threshold schemes.

The paper groups non-interactive schemes into *cipher*, *signature*, and
*randomness* categories and gives each a three-algorithm interface: generate
a partial result, verify a partial result, combine partial results (§2.2).
The abstract classes here capture exactly that; the interactive KG20 extends
the signature interface with its commit round.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ConfigurationError, DuplicateShareError, ThresholdNotReachedError

if TYPE_CHECKING:  # pragma: no cover
    from .keygen import KeyMaterial


class SchemeKind(enum.Enum):
    """Top-level categories exposed by the high-level API (§3.5)."""

    CIPHER = "cipher"
    SIGNATURE = "signature"
    RANDOMNESS = "randomness"


@dataclass(frozen=True)
class SchemeInfo:
    """Static metadata about a scheme (the rows of Tables 1 and 3)."""

    name: str
    kind: SchemeKind
    hardness: str  # "DL" or "RSA"
    verification: str  # "ZKP" or "Pairings"
    reference: str
    rounds: int  # communication rounds of the threshold protocol
    default_group: str
    communication_complexity: str  # "O(n)" or "O(n^2)"


class ThresholdScheme(ABC):
    """Base class carrying scheme metadata."""

    info: SchemeInfo

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def kind(self) -> SchemeKind:
        return self.info.kind


class ThresholdCipher(ThresholdScheme):
    """Public-key encryption with distributed decryption (CCA secure)."""

    @abstractmethod
    def encrypt(self, public_key, plaintext: bytes, label: bytes) -> object:
        """Encrypt under the service-wide public key (anyone can call this)."""

    @abstractmethod
    def verify_ciphertext(self, public_key, ciphertext) -> None:
        """Check ciphertext validity (the CCA guard); raise if invalid."""

    @abstractmethod
    def create_decryption_share(self, key_share, ciphertext) -> object:
        """Party-local partial decryption."""

    @abstractmethod
    def verify_decryption_share(self, public_key, ciphertext, share) -> None:
        """Check a partial decryption against the verification keys."""

    @abstractmethod
    def combine(self, public_key, ciphertext, shares: Sequence) -> bytes:
        """Assemble ≥ t+1 valid shares into the plaintext."""


class ThresholdSignature(ThresholdScheme):
    """Digital signatures with a distributed signing algorithm."""

    @abstractmethod
    def partial_sign(self, key_share, message: bytes) -> object:
        """Party-local signature share."""

    @abstractmethod
    def verify_signature_share(self, public_key, message: bytes, share) -> None:
        """Check a signature share; raise InvalidShareError if bogus."""

    @abstractmethod
    def combine(self, public_key, message: bytes, shares: Sequence) -> object:
        """Assemble ≥ t+1 valid shares into a full signature."""

    @abstractmethod
    def verify(self, public_key, message: bytes, signature) -> None:
        """Verify the assembled signature (same output as centralized scheme)."""


class ThresholdCoin(ThresholdScheme):
    """Threshold-random function: coin name → pseudorandom bytes."""

    @abstractmethod
    def create_coin_share(self, key_share, name: bytes) -> object:
        """Party-local coin share with validity proof."""

    @abstractmethod
    def verify_coin_share(self, public_key, name: bytes, share) -> None:
        """Check a coin share's DLEQ proof."""

    @abstractmethod
    def combine(self, public_key, name: bytes, shares: Sequence) -> bytes:
        """Assemble ≥ t+1 valid shares into the coin value."""


def select_shares(shares: Iterable, threshold: int) -> list:
    """Pick t+1 distinct-id shares, raising the precise domain error."""
    unique: dict[int, object] = {}
    for share in shares:
        if share.id in unique:
            raise DuplicateShareError(f"duplicate share id {share.id}")
        unique[share.id] = share
    if len(unique) < threshold + 1:
        raise ThresholdNotReachedError(
            f"need {threshold + 1} shares, got {len(unique)}"
        )
    ordered = sorted(unique)[: threshold + 1]
    return [unique[i] for i in ordered]


# ---------------------------------------------------------------------------
# Registry (Table 1 of the paper).
# ---------------------------------------------------------------------------

SCHEME_TABLE: dict[str, SchemeInfo] = {
    "sg02": SchemeInfo(
        "sg02", SchemeKind.CIPHER, "DL", "ZKP", "Shoup–Gennaro 2002 (TDH2)",
        rounds=1, default_group="ed25519", communication_complexity="O(n)",
    ),
    "bz03": SchemeInfo(
        "bz03", SchemeKind.CIPHER, "DL", "Pairings", "Baek–Zheng 2003",
        rounds=1, default_group="bn254", communication_complexity="O(n)",
    ),
    "sh00": SchemeInfo(
        "sh00", SchemeKind.SIGNATURE, "RSA", "ZKP", "Shoup 2000",
        rounds=1, default_group="rsa", communication_complexity="O(n)",
    ),
    "bls04": SchemeInfo(
        "bls04", SchemeKind.SIGNATURE, "DL", "Pairings",
        "Boneh–Lynn–Shacham 2004",
        rounds=1, default_group="bn254", communication_complexity="O(n)",
    ),
    "kg20": SchemeInfo(
        "kg20", SchemeKind.SIGNATURE, "DL", "ZKP", "Komlo–Goldberg 2020 (FROST)",
        rounds=2, default_group="ed25519", communication_complexity="O(n^2)",
    ),
    "cks05": SchemeInfo(
        "cks05", SchemeKind.RANDOMNESS, "DL", "ZKP",
        "Cachin–Kursawe–Shoup 2005",
        rounds=1, default_group="ed25519", communication_complexity="O(n)",
    ),
}


def get_scheme(name: str) -> ThresholdScheme:
    """Instantiate the scheme registered under ``name``."""
    # Imported here to avoid import cycles between scheme modules and base.
    from . import bls04, bz03, cks05, kg20, sg02, sh00

    factories = {
        "sg02": sg02.Sg02Cipher,
        "bz03": bz03.Bz03Cipher,
        "sh00": sh00.Sh00SignatureScheme,
        "bls04": bls04.Bls04SignatureScheme,
        "kg20": kg20.Kg20SignatureScheme,
        "cks05": cks05.Cks05Coin,
    }
    if name not in factories:
        raise ConfigurationError(
            f"unknown scheme {name!r}; known: {sorted(factories)}"
        )
    return factories[name]()


def list_schemes(kind: SchemeKind | None = None) -> list[str]:
    """Names of registered schemes, optionally filtered by category."""
    return sorted(
        name
        for name, info in SCHEME_TABLE.items()
        if kind is None or info.kind == kind
    )
