"""SH00 — Shoup's practical threshold RSA signatures.

The first non-interactive *robust* threshold signature scheme [43].  The
signing key d is shared over the secret order m = p'q' of the squares
subgroup Q_n (safe-prime modulus), shares are combined with Δ-scaled integer
Lagrange coefficients (Δ = n!), and every signature share carries a
Chaum–Pedersen-style proof of correctness *in the integers* (the "ZKP"
verification strategy of Table 1).

The paper benchmarks moduli of 512/1024/2048/4096 bits; 2048 is the default
(Table 3).  The assembled signature is an ordinary RSA FDH signature: y with
y^e = H(m)² (we square the full-domain hash so it always lands in Q_n).
"""

from __future__ import annotations

import hashlib
import math
import secrets
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidShareError, InvalidSignatureError
from ..mathutils.lagrange import shoup_lagrange_coefficient
from ..mathutils.modular import inverse_mod, multiexp_mod
from ..rsa.keygen import RsaModulus, modulus_for_bits
from ..serialization import Reader, encode_bytes, encode_int
from ..sharing.integer_shamir import share_integer_secret
from .base import SCHEME_TABLE, ThresholdSignature, select_shares

#: Public RSA exponent; prime and > any realistic party count, so it is
#: coprime to Δ = n! as Shoup's combining step requires.
PUBLIC_EXPONENT = 65537

#: Bits of the Fiat–Shamir challenge (L1 in Shoup's notation).
_CHALLENGE_BITS = 256

_FDH_DOMAIN = b"repro-sh00-fdh"
_PROOF_DOMAIN = b"repro-sh00-proof"


@dataclass(frozen=True)
class Sh00PublicKey:
    """Modulus n, exponent e, and the share-verification material (v, v_i)."""

    threshold: int
    parties: int
    n: int
    e: int
    v: int
    verification_keys: tuple[int, ...]

    @property
    def delta(self) -> int:
        return math.factorial(self.parties)

    def verification_key(self, party_id: int) -> int:
        return self.verification_keys[party_id - 1]

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.threshold)
            + encode_int(self.parties)
            + encode_int(self.n)
            + encode_int(self.e)
            + encode_int(self.v)
            + b"".join(encode_int(v) for v in self.verification_keys)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Sh00PublicKey":
        reader = Reader(data)
        threshold = reader.read_int()
        parties = reader.read_int()
        n = reader.read_int()
        e = reader.read_int()
        v = reader.read_int()
        keys = tuple(reader.read_int() for _ in range(parties))
        reader.finish()
        return Sh00PublicKey(threshold, parties, n, e, v, keys)


@dataclass(frozen=True)
class Sh00KeyShare:
    """Party i's additive piece s_i of the signing exponent (over Z_m)."""

    id: int
    value: int
    public: Sh00PublicKey


@dataclass(frozen=True)
class Sh00SignatureShare:
    """x_i = x^{2Δ s_i} with an integer DLEQ proof (challenge, response)."""

    id: int
    value: int
    challenge: int
    response: int

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.id)
            + encode_int(self.value)
            + encode_int(self.challenge)
            + encode_int(self.response)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Sh00SignatureShare":
        reader = Reader(data)
        share = Sh00SignatureShare(
            reader.read_int(), reader.read_int(), reader.read_int(), reader.read_int()
        )
        reader.finish()
        return share


@dataclass(frozen=True)
class Sh00Signature:
    """A plain RSA signature y with y^e = H(m)² (mod n)."""

    value: int

    def to_bytes(self) -> bytes:
        return encode_int(self.value)

    @staticmethod
    def from_bytes(data: bytes) -> "Sh00Signature":
        reader = Reader(data)
        signature = Sh00Signature(reader.read_int())
        reader.finish()
        return signature


def keygen(
    threshold: int,
    parties: int,
    bits: int = 2048,
    modulus: RsaModulus | None = None,
    allow_generate: bool = False,
) -> tuple[Sh00PublicKey, list[Sh00KeyShare]]:
    """Trusted-dealer key generation for SH00.

    ``modulus`` may be supplied directly (tests); otherwise a fixture modulus
    for ``bits`` is used, or a fresh one generated when ``allow_generate``.
    """
    mod = modulus if modulus is not None else modulus_for_bits(bits, allow_generate)
    if parties >= PUBLIC_EXPONENT:
        raise InvalidSignatureError("party count must stay below the public exponent")
    d = inverse_mod(PUBLIC_EXPONENT, mod.m)
    shares = share_integer_secret(d, threshold, parties, mod.m)
    v = mod.random_square()
    verification_keys = tuple(pow(v, s.value, mod.n) for s in shares)
    public = Sh00PublicKey(
        threshold, parties, mod.n, PUBLIC_EXPONENT, v, verification_keys
    )
    return public, [Sh00KeyShare(s.id, s.value, public) for s in shares]


def _full_domain_hash(message: bytes, n: int) -> int:
    """Expand SHA-256 over a counter to an element of Z_n, then square."""
    target_bytes = (n.bit_length() + 7) // 8 + 16
    stream = b""
    counter = 0
    while len(stream) < target_bytes:
        stream += hashlib.sha256(
            _FDH_DOMAIN + counter.to_bytes(4, "big") + message
        ).digest()
        counter += 1
    x = int.from_bytes(stream[:target_bytes], "big") % n
    # Squaring forces the hash into Q_n regardless of its Jacobi symbol.
    return pow(x, 2, n)


class Sh00SignatureScheme(ThresholdSignature):
    """Shoup threshold RSA against the :class:`ThresholdSignature` interface."""

    info = SCHEME_TABLE["sh00"]

    def _proof_challenge(
        self,
        public_key: Sh00PublicKey,
        x_tilde: int,
        share_id: int,
        share_value: int,
        v_commit: int,
        x_commit: int,
    ) -> int:
        transcript = (
            _PROOF_DOMAIN
            + encode_int(public_key.v)
            + encode_int(x_tilde)
            + encode_int(public_key.verification_key(share_id))
            + encode_int(pow(share_value, 2, public_key.n))
            + encode_int(v_commit)
            + encode_int(x_commit)
        )
        digest = hashlib.sha256(transcript).digest()
        return int.from_bytes(digest, "big") % (1 << _CHALLENGE_BITS)

    def partial_sign(
        self, key_share: Sh00KeyShare, message: bytes
    ) -> Sh00SignatureShare:
        public_key = key_share.public
        n = public_key.n
        x = _full_domain_hash(message, n)
        two_delta = 2 * public_key.delta
        value = pow(x, two_delta * key_share.value, n)
        # Integer DLEQ: log_v(v_i) == log_{x^{4Δ}}(x_i²) == s_i.
        x_tilde = pow(x, 2 * two_delta, n)
        r_bound = 1 << (n.bit_length() + 2 * _CHALLENGE_BITS)
        r = secrets.randbelow(r_bound)
        v_commit = pow(public_key.v, r, n)
        x_commit = pow(x_tilde, r, n)
        challenge = self._proof_challenge(
            public_key, x_tilde, key_share.id, value, v_commit, x_commit
        )
        response = key_share.value * challenge + r
        return Sh00SignatureShare(key_share.id, value, challenge, response)

    def verify_signature_share(
        self, public_key: Sh00PublicKey, message: bytes, share: Sh00SignatureShare
    ) -> None:
        if not 1 <= share.id <= public_key.parties:
            raise InvalidShareError(f"share id {share.id} out of range")
        n = public_key.n
        if not 0 < share.value < n:
            raise InvalidShareError("share value out of range")
        x = _full_domain_hash(message, n)
        x_tilde = pow(x, 4 * public_key.delta, n)
        v_i = public_key.verification_key(share.id)
        v_commit = multiexp_mod(
            [(public_key.v, share.response), (v_i, -share.challenge)], n
        )
        x_commit = multiexp_mod(
            [(x_tilde, share.response), (share.value, -2 * share.challenge)], n
        )
        expected = self._proof_challenge(
            public_key, x_tilde, share.id, share.value, v_commit, x_commit
        )
        if expected != share.challenge:
            raise InvalidShareError(f"SH00 share {share.id} proof invalid")

    def combine(
        self,
        public_key: Sh00PublicKey,
        message: bytes,
        shares: Sequence[Sh00SignatureShare],
    ) -> Sh00Signature:
        n = public_key.n
        chosen = select_shares(shares, public_key.threshold)
        ids = [share.id for share in chosen]
        # One fused multi-exponentiation: all t+1 Δ-scaled Lagrange powers
        # share a single Straus squaring chain under the active backend.
        w = multiexp_mod(
            [
                (
                    share.value,
                    2 * shoup_lagrange_coefficient(public_key.parties, ids, share.id),
                )
                for share in chosen
            ],
            n,
        )
        # w^e = x^{4Δ²}; Bezout on (4Δ², e) turns w into a plain e-th root.
        x = _full_domain_hash(message, n)
        e_prime = 4 * public_key.delta * public_key.delta
        g, a, b = _extended_gcd(e_prime, public_key.e)
        if g != 1:
            raise InvalidSignatureError("gcd(4Δ², e) != 1; invalid parameters")
        y = (_pow_signed(w, a, n) * _pow_signed(x, b, n)) % n
        signature = Sh00Signature(y)
        self.verify(public_key, message, signature)
        return signature

    def verify(
        self, public_key: Sh00PublicKey, message: bytes, signature: Sh00Signature
    ) -> None:
        x = _full_domain_hash(message, public_key.n)
        if pow(signature.value, public_key.e, public_key.n) != x:
            raise InvalidSignatureError("SH00 signature verification failed")


def _extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return (g, x, y) with a·x + b·y = g = gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def _pow_signed(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation supporting negative exponents."""
    if exponent >= 0:
        return pow(base, exponent, modulus)
    return pow(inverse_mod(base, modulus), -exponent, modulus)
