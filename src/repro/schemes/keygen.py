"""Unified trusted-dealer key generation across all schemes.

The paper's methodology assumes "a setup phase during which a trusted dealer
distributes the key material for all schemes" (§4.4).  This module is that
dealer.  A distributed alternative (no dealer) is provided by
:mod:`repro.schemes.dkg`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from . import bls04, bz03, cks05, kg20, sg02, sh00


@dataclass(frozen=True)
class KeyMaterial:
    """Everything the dealer outputs for one scheme instance."""

    scheme: str
    public_key: object
    key_shares: tuple

    @property
    def threshold(self) -> int:
        return self.public_key.threshold

    @property
    def parties(self) -> int:
        return self.public_key.parties

    def share_for(self, party_id: int):
        """The private share belonging to ``party_id`` (1-based)."""
        return self.key_shares[party_id - 1]


def generate_keys(
    scheme: str,
    threshold: int,
    parties: int,
    group_name: str | None = None,
    rsa_bits: int = 2048,
    rsa_modulus=None,
    allow_generate: bool = False,
) -> KeyMaterial:
    """Deal key material for ``scheme`` with a (t, n) access structure.

    ``group_name`` selects the curve for the DL/ZKP schemes (default
    Ed25519, per Table 3); pairing schemes always use BN254; SH00 takes
    ``rsa_bits`` or an explicit ``rsa_modulus``.
    """
    if scheme == "sg02":
        public, shares = sg02.keygen(threshold, parties, group_name or "ed25519")
    elif scheme == "bz03":
        public, shares = bz03.keygen(threshold, parties)
    elif scheme == "sh00":
        public, shares = sh00.keygen(
            threshold,
            parties,
            bits=rsa_bits,
            modulus=rsa_modulus,
            allow_generate=allow_generate,
        )
    elif scheme == "bls04":
        public, shares = bls04.keygen(threshold, parties)
    elif scheme == "kg20":
        public, shares = kg20.keygen(threshold, parties, group_name or "ed25519")
    elif scheme == "cks05":
        public, shares = cks05.keygen(threshold, parties, group_name or "ed25519")
    else:
        raise ConfigurationError(f"unknown scheme {scheme!r}")
    return KeyMaterial(scheme, public, tuple(shares))


def deal_all_schemes(
    threshold: int,
    parties: int,
    schemes: Sequence[str] = ("sg02", "bz03", "sh00", "bls04", "kg20", "cks05"),
    rsa_bits: int = 2048,
) -> dict[str, KeyMaterial]:
    """Deal one key per scheme — the setup used before every benchmark run."""
    return {
        name: generate_keys(name, threshold, parties, rsa_bits=rsa_bits)
        for name in schemes
    }
