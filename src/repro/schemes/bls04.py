"""BLS04 — threshold Boneh–Lynn–Shacham short signatures.

The key homomorphism of BLS makes the scheme "directly threshold-friendly"
(§3.5): a signature share is σ_i = H(m)^{x_i} ∈ G1, verified with the same
pairing equation as a full signature against the per-party verification key,
and shares combine by Lagrange interpolation in the exponent.  Signatures
are a single G1 point — short compared to RSA/DSA at similar security.

Default group: BN254 (Table 3).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidShareError, InvalidSignatureError
from ..groups.bn254 import BilinearGroup, bn254_pairing
from ..groups.bn254.g1 import BN254G1Element
from ..groups.bn254.g2 import BN254G2Element
from ..groups.precompute import fixed_pow
from ..mathutils.lagrange import lagrange_coefficients_at_zero
from ..serialization import Reader, encode_bytes, encode_int
from ..sharing.shamir import share_secret
from .base import SCHEME_TABLE, ThresholdSignature, select_shares

_H_DOMAIN = b"repro-bls04-message"


@dataclass(frozen=True)
class Bls04PublicKey:
    """y = g₂^x plus verification keys y_i = g₂^{x_i}."""

    threshold: int
    parties: int
    y: BN254G2Element
    verification_keys: tuple[BN254G2Element, ...]

    @property
    def pairing(self) -> BilinearGroup:
        return bn254_pairing()

    def verification_key(self, party_id: int) -> BN254G2Element:
        return self.verification_keys[party_id - 1]

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.threshold)
            + encode_int(self.parties)
            + encode_bytes(self.y.to_bytes())
            + b"".join(encode_bytes(v.to_bytes()) for v in self.verification_keys)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Bls04PublicKey":
        reader = Reader(data)
        threshold = reader.read_int()
        parties = reader.read_int()
        g2 = bn254_pairing().g2
        y = g2.element_from_bytes(reader.read_bytes())
        keys = tuple(
            g2.element_from_bytes(reader.read_bytes()) for _ in range(parties)
        )
        reader.finish()
        return Bls04PublicKey(threshold, parties, y, keys)


@dataclass(frozen=True)
class Bls04KeyShare:
    """Party i's share x_i of the signing key."""

    id: int
    value: int
    public: Bls04PublicKey


@dataclass(frozen=True)
class Bls04SignatureShare:
    """σ_i = H(m)^{x_i}; validity is pairing-checked, no attached proof."""

    id: int
    sigma: BN254G1Element

    def to_bytes(self) -> bytes:
        return encode_int(self.id) + encode_bytes(self.sigma.to_bytes())

    @staticmethod
    def from_bytes(data: bytes) -> "Bls04SignatureShare":
        reader = Reader(data)
        share_id = reader.read_int()
        sigma = bn254_pairing().g1.element_from_bytes(reader.read_bytes())
        reader.finish()
        return Bls04SignatureShare(share_id, sigma)


@dataclass(frozen=True)
class Bls04Signature:
    """A standard BLS signature: one G1 point (64 bytes)."""

    sigma: BN254G1Element

    def to_bytes(self) -> bytes:
        return encode_bytes(self.sigma.to_bytes())

    @staticmethod
    def from_bytes(data: bytes) -> "Bls04Signature":
        reader = Reader(data)
        sigma = bn254_pairing().g1.element_from_bytes(reader.read_bytes())
        reader.finish()
        return Bls04Signature(sigma)


def keygen(threshold: int, parties: int) -> tuple[Bls04PublicKey, list[Bls04KeyShare]]:
    """Trusted-dealer key generation for threshold BLS on BN254."""
    pairing = bn254_pairing()
    x = pairing.g2.random_scalar()
    shares = share_secret(x, threshold, parties, pairing.order)
    g2 = pairing.g2.generator()
    public = Bls04PublicKey(
        threshold,
        parties,
        fixed_pow(g2, x),
        tuple(fixed_pow(g2, s.value) for s in shares),
    )
    return public, [Bls04KeyShare(s.id, s.value, public) for s in shares]


def _hash_message(message: bytes) -> BN254G1Element:
    return bn254_pairing().g1.hash_to_element(_H_DOMAIN + message)


class Bls04SignatureScheme(ThresholdSignature):
    """Threshold BLS against the :class:`ThresholdSignature` interface."""

    info = SCHEME_TABLE["bls04"]

    def partial_sign(
        self, key_share: Bls04KeyShare, message: bytes
    ) -> Bls04SignatureShare:
        h = _hash_message(message)
        return Bls04SignatureShare(key_share.id, h**key_share.value)

    def verify_signature_share(
        self, public_key: Bls04PublicKey, message: bytes, share: Bls04SignatureShare
    ) -> None:
        if not 1 <= share.id <= public_key.parties:
            raise InvalidShareError(f"share id {share.id} out of range")
        pairing = public_key.pairing
        h = _hash_message(message)
        # e(σ_i, g₂) == e(H(m), y_i).
        valid = pairing.pair_check(
            [
                (share.sigma, pairing.g2.generator()),
                (h.inverse(), public_key.verification_key(share.id)),
            ]
        )
        if not valid:
            raise InvalidShareError(f"BLS04 share {share.id} pairing check failed")

    def combine(
        self,
        public_key: Bls04PublicKey,
        message: bytes,
        shares: Sequence[Bls04SignatureShare],
    ) -> Bls04Signature:
        pairing = public_key.pairing
        chosen = select_shares(shares, public_key.threshold)
        ids = [share.id for share in chosen]
        coefficients = lagrange_coefficients_at_zero(ids, pairing.order)
        sigma = pairing.g1.multi_exp(
            [share.sigma for share in chosen],
            [coefficients[share.id] for share in chosen],
        )
        signature = Bls04Signature(sigma)
        self.verify(public_key, message, signature)
        return signature

    def verify(
        self, public_key: Bls04PublicKey, message: bytes, signature: Bls04Signature
    ) -> None:
        pairing = public_key.pairing
        h = _hash_message(message)
        valid = pairing.pair_check(
            [
                (signature.sigma, pairing.g2.generator()),
                (h.inverse(), public_key.y),
            ]
        )
        if not valid:
            raise InvalidSignatureError("BLS04 signature verification failed")

    def verify_share_batch(
        self,
        public_key: Bls04PublicKey,
        message: bytes,
        shares: Sequence[Bls04SignatureShare],
        identify: bool = False,
    ) -> None:
        """Verify many shares with one pairing product (random linear combination).

        Instead of 2 pairings per share, combine the shares with small
        random exponents r_i and check a single equation::

            e(Π σ_i^{r_i}, g₂) == e(H(m), Π y_i^{r_i})

        A forged share escapes only with probability 2⁻¹²⁸.  With
        ``identify=True`` a failing batch is re-checked share by share and
        the error names the culprit ids (k+1 extra pairing checks, only on
        the failure path); otherwise the caller falls back manually.
        """
        if not shares:
            return
        pairing = public_key.pairing
        for share in shares:
            if not 1 <= share.id <= public_key.parties:
                raise InvalidShareError(f"share id {share.id} out of range")
        exponents = [secrets.randbits(128) | 1 for _ in shares]
        sigma_combined = pairing.g1.multi_exp(
            [share.sigma for share in shares], exponents
        )
        key_combined = pairing.g2.multi_exp(
            [public_key.verification_key(share.id) for share in shares], exponents
        )
        h = _hash_message(message)
        valid = pairing.pair_check(
            [
                (sigma_combined, pairing.g2.generator()),
                (h.inverse(), key_combined),
            ]
        )
        if valid:
            return
        if identify:
            culprits = []
            for share in shares:
                try:
                    self.verify_signature_share(public_key, message, share)
                except InvalidShareError:
                    culprits.append(share.id)
            raise InvalidShareError(
                f"batch verification failed: invalid shares from ids {culprits}"
            )
        raise InvalidShareError(
            "batch verification failed: at least one share is invalid"
        )
