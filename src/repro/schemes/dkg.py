"""Distributed key generation (Joint-Feldman / Pedersen DKG).

The paper notes that setup "can either be done by a centralized, trusted
dealer or through a distributed key-generation protocol [37, 27], which is
run by the parties themselves" (§2.2).  The evaluation uses a dealer; this
module implements the distributed alternative as an extension, and
:mod:`repro.core.protocols.dkg_protocol` runs it as a multi-round TRI
protocol over the network layer.

This is the *cryptographic* side only: each party acts as a dealer of a
random secret with Feldman commitments; the group key aggregates the
qualified dealers' commitments and each party's key share is the sum of the
sub-shares it received.  Misbehaving dealers (invalid sub-shares) are
excluded from the qualified set; if fewer than t+1 dealers remain the run
aborts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import InvalidShareError, ProtocolAbortedError
from ..groups.base import Group, GroupElement
from ..groups.registry import get_group
from ..sharing.feldman import FeldmanCommitment, combine_commitments, feldman_share
from ..sharing.shamir import ShamirShare


@dataclass(frozen=True)
class DkgDeal:
    """What one party deals: commitments (public) + one sub-share per peer."""

    dealer_id: int
    commitment: FeldmanCommitment
    sub_shares: Mapping[int, ShamirShare]  # recipient id -> share


@dataclass(frozen=True)
class DkgResult:
    """One party's view after a completed DKG."""

    party_id: int
    key_share: int
    group_key: GroupElement
    verification_keys: tuple[GroupElement, ...]
    qualified: tuple[int, ...]


def deal(
    dealer_id: int, threshold: int, parties: int, group: Group
) -> DkgDeal:
    """Round-1 contribution: share a fresh random secret among all parties."""
    secret = group.random_scalar()
    shares, commitment = feldman_share(secret, threshold, parties, group)
    return DkgDeal(dealer_id, commitment, {s.id: s for s in shares})


def verify_deal_share(
    deal_: DkgDeal, recipient_id: int
) -> ShamirShare:
    """Check the sub-share addressed to ``recipient_id``; raise if invalid."""
    share = deal_.sub_shares[recipient_id]
    deal_.commitment.verify_share(share)
    return share


def finalize(
    party_id: int,
    threshold: int,
    parties: int,
    group: Group,
    deals: Mapping[int, DkgDeal],
) -> DkgResult:
    """Aggregate qualified deals into this party's DKG output.

    ``deals`` maps dealer id to the deal received from that dealer; deals
    whose sub-share for this party fails verification are disqualified.
    """
    qualified: list[int] = []
    share_sum = 0
    commitments: list[FeldmanCommitment] = []
    for dealer_id in sorted(deals):
        deal_ = deals[dealer_id]
        try:
            sub_share = verify_deal_share(deal_, party_id)
        except InvalidShareError:
            continue
        qualified.append(dealer_id)
        share_sum = (share_sum + sub_share.value) % group.order
        commitments.append(deal_.commitment)
    if len(qualified) < threshold + 1:
        raise ProtocolAbortedError(
            f"DKG aborted: only {len(qualified)} qualified dealers, "
            f"need {threshold + 1}"
        )
    combined = combine_commitments(commitments)
    verification_keys = tuple(
        combined.expected_share_commitment(i) for i in range(1, parties + 1)
    )
    return DkgResult(
        party_id,
        share_sum,
        combined.public_key(),
        verification_keys,
        tuple(qualified),
    )


def dkg_all_parties(
    threshold: int, parties: int, group_name: str = "ed25519"
) -> list[DkgResult]:
    """Run the whole DKG in-process (testing / examples convenience)."""
    group = get_group(group_name)
    deals = {i: deal(i, threshold, parties, group) for i in range(1, parties + 1)}
    return [
        finalize(i, threshold, parties, group, deals)
        for i in range(1, parties + 1)
    ]
