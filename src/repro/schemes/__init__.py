"""The schemes module: cryptographic core of the Thetacrypt reproduction.

Implements the six threshold schemes of the paper (Table 1):

=========  ===========  ==========  =====================
Scheme     Kind         Hardness    Verification strategy
=========  ===========  ==========  =====================
SH00       signature    RSA         ZKP
KG20       signature    DL          ZKP (interactive, 2 rounds)
BLS04      signature    DL          pairings
SG02       cipher       DL          ZKP
BZ03       cipher       DL          pairings
CKS05      randomness   DL          ZKP
=========  ===========  ==========  =====================

This module is self-contained ("might also be imported as a library directly
by other projects", §3.3): nothing here depends on the core, network, or
service layers.
"""

from .base import (
    SchemeKind,
    ThresholdCipher,
    ThresholdCoin,
    ThresholdScheme,
    ThresholdSignature,
    SCHEME_TABLE,
    get_scheme,
    list_schemes,
)
from .dleq import DleqProof, dleq_prove, dleq_verify
from . import bls04, bz03, cks05, kg20, sg02, sh00
from . import cks05_sig, dkg, keystore, resharing, rfc8032, roast
from .keygen import generate_keys

__all__ = [
    "SchemeKind",
    "ThresholdScheme",
    "ThresholdCipher",
    "ThresholdSignature",
    "ThresholdCoin",
    "SCHEME_TABLE",
    "get_scheme",
    "list_schemes",
    "DleqProof",
    "dleq_prove",
    "dleq_verify",
    "generate_keys",
    "sg02",
    "bz03",
    "sh00",
    "bls04",
    "kg20",
    "cks05",
    "cks05_sig",
    "dkg",
    "keystore",
    "resharing",
    "rfc8032",
    "roast",
]
