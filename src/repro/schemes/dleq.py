"""Chaum–Pedersen proofs of discrete-log equality, made non-interactive.

Used as the "ZKP" verification strategy of Table 1: SG02 decryption shares,
CKS05 coin shares, and (in the integers, with its own variant in
:mod:`sh00`) Shoup signature shares all carry a proof that the share was
computed with the committed key share.  The proof shows
``log_{g1}(h1) = log_{g2}(h2)`` via the Fiat–Shamir transform.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import InvalidProofError
from ..groups.base import Group, GroupElement
from ..groups.precompute import fixed_pow
from ..serialization import Reader, encode_bytes, encode_int

_DOMAIN = b"repro-dleq-chaum-pedersen-v1"


@dataclass(frozen=True)
class DleqProof:
    """Fiat–Shamir transcript (challenge c, response z)."""

    challenge: int
    response: int

    def to_bytes(self) -> bytes:
        return encode_int(self.challenge) + encode_int(self.response)

    @staticmethod
    def from_bytes(data: bytes) -> "DleqProof":
        reader = Reader(data)
        proof = DleqProof(reader.read_int(), reader.read_int())
        reader.finish()
        return proof

    @staticmethod
    def read_from(reader: Reader) -> "DleqProof":
        return DleqProof(reader.read_int(), reader.read_int())


def _challenge(
    group: Group,
    g1: GroupElement,
    h1: GroupElement,
    g2: GroupElement,
    h2: GroupElement,
    a1: GroupElement,
    a2: GroupElement,
    context: bytes,
) -> int:
    transcript = _DOMAIN + encode_bytes(context)
    for element in (g1, h1, g2, h2, a1, a2):
        transcript += encode_bytes(element.to_bytes())
    return group.scalar_from_bytes(hashlib.sha256(transcript).digest())


def dleq_prove(
    group: Group,
    g1: GroupElement,
    g2: GroupElement,
    secret: int,
    context: bytes = b"",
    h1: GroupElement | None = None,
    h2: GroupElement | None = None,
) -> DleqProof:
    """Prove knowledge of ``secret`` with h1 = g1^secret, h2 = g2^secret.

    Callers that already hold ``h1``/``h2`` (every scheme does: they are the
    verification key and the share being proven) pass them in to skip the
    two recomputation exponentiations.
    """
    if h1 is None:
        h1 = fixed_pow(g1, secret)
    if h2 is None:
        h2 = fixed_pow(g2, secret)
    r = group.random_scalar()
    a1 = fixed_pow(g1, r)
    a2 = fixed_pow(g2, r)
    c = _challenge(group, g1, h1, g2, h2, a1, a2, context)
    z = (r + c * secret) % group.order
    return DleqProof(c, z)


def dleq_verify(
    group: Group,
    g1: GroupElement,
    h1: GroupElement,
    g2: GroupElement,
    h2: GroupElement,
    proof: DleqProof,
    context: bytes = b"",
) -> None:
    """Verify a DLEQ proof; raise :class:`InvalidProofError` on failure."""
    if not 0 <= proof.challenge < group.order or not 0 <= proof.response < group.order:
        raise InvalidProofError("DLEQ proof values out of range")
    a1 = fixed_pow(g1, proof.response) * fixed_pow(h1, -proof.challenge)
    a2 = fixed_pow(g2, proof.response) * h2 ** (-proof.challenge)
    expected = _challenge(group, g1, h1, g2, h2, a1, a2, context)
    if expected != proof.challenge:
        raise InvalidProofError("DLEQ proof verification failed")


@dataclass(frozen=True)
class DleqStatement:
    """One (bases, images, proof) instance for batch verification."""

    g1: GroupElement
    h1: GroupElement
    g2: GroupElement
    h2: GroupElement
    proof: DleqProof
    context: bytes = field(default=b"")


def dleq_verify_batch(group: Group, statements: Sequence[DleqStatement]) -> None:
    """Verify many DLEQ proofs sharing bases, amortizing the fixed-base work.

    A Fiat–Shamir proof in (c, z) form pins the commitments: the verifier
    *must* reconstruct each ``a1_i = g1^{z_i}·h1_i^{-c_i}`` to recompute the
    challenge hash, so the k checks cannot be folded into one random-linear
    combination the way transcript-carrying proofs can (that trick lives in
    :meth:`repro.schemes.bls04.Bls04SignatureScheme.verify_share_batch`,
    where pairings make the combined equation checkable).  What *can* be
    shared is the expensive base work: share verification uses the same
    ``g1`` (the generator) and ``g2`` (the per-request hash point) for every
    statement, so fixed-base tables are force-built once and every statement
    reuses them.  Raises :class:`InvalidProofError` naming every failing
    statement index, so callers can drop exactly the faulty parties.
    """
    if not statements:
        return
    from ..groups.precompute import fixed_base_table

    # Promote bases shared by two or more statements: a table breaks even
    # after ~3 uses, and each statement exponentiates its bases twice.
    if len(statements) >= 2:
        counts: dict[bytes, tuple[GroupElement, int]] = {}
        for statement in statements:
            for base in (statement.g1, statement.g2):
                key = base.to_bytes()
                previous = counts.get(key)
                counts[key] = (base, 1 if previous is None else previous[1] + 1)
        for base, seen in counts.values():
            if seen >= 2:
                fixed_base_table(base)
    bad: list[int] = []
    for index, statement in enumerate(statements):
        try:
            dleq_verify(
                group,
                statement.g1,
                statement.h1,
                statement.g2,
                statement.h2,
                statement.proof,
                context=statement.context,
            )
        except InvalidProofError:
            bad.append(index)
    if bad:
        raise InvalidProofError(
            f"DLEQ batch verification failed for statements {bad}"
        )
