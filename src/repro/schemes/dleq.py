"""Chaum–Pedersen proofs of discrete-log equality, made non-interactive.

Used as the "ZKP" verification strategy of Table 1: SG02 decryption shares,
CKS05 coin shares, and (in the integers, with its own variant in
:mod:`sh00`) Shoup signature shares all carry a proof that the share was
computed with the committed key share.  The proof shows
``log_{g1}(h1) = log_{g2}(h2)`` via the Fiat–Shamir transform.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import InvalidProofError
from ..groups.base import Group, GroupElement
from ..serialization import Reader, encode_bytes, encode_int

_DOMAIN = b"repro-dleq-chaum-pedersen-v1"


@dataclass(frozen=True)
class DleqProof:
    """Fiat–Shamir transcript (challenge c, response z)."""

    challenge: int
    response: int

    def to_bytes(self) -> bytes:
        return encode_int(self.challenge) + encode_int(self.response)

    @staticmethod
    def from_bytes(data: bytes) -> "DleqProof":
        reader = Reader(data)
        proof = DleqProof(reader.read_int(), reader.read_int())
        reader.finish()
        return proof

    @staticmethod
    def read_from(reader: Reader) -> "DleqProof":
        return DleqProof(reader.read_int(), reader.read_int())


def _challenge(
    group: Group,
    g1: GroupElement,
    h1: GroupElement,
    g2: GroupElement,
    h2: GroupElement,
    a1: GroupElement,
    a2: GroupElement,
    context: bytes,
) -> int:
    transcript = _DOMAIN + encode_bytes(context)
    for element in (g1, h1, g2, h2, a1, a2):
        transcript += encode_bytes(element.to_bytes())
    return group.scalar_from_bytes(hashlib.sha256(transcript).digest())


def dleq_prove(
    group: Group,
    g1: GroupElement,
    g2: GroupElement,
    secret: int,
    context: bytes = b"",
) -> DleqProof:
    """Prove knowledge of ``secret`` with h1 = g1^secret, h2 = g2^secret."""
    h1 = g1**secret
    h2 = g2**secret
    r = group.random_scalar()
    a1 = g1**r
    a2 = g2**r
    c = _challenge(group, g1, h1, g2, h2, a1, a2, context)
    z = (r + c * secret) % group.order
    return DleqProof(c, z)


def dleq_verify(
    group: Group,
    g1: GroupElement,
    h1: GroupElement,
    g2: GroupElement,
    h2: GroupElement,
    proof: DleqProof,
    context: bytes = b"",
) -> None:
    """Verify a DLEQ proof; raise :class:`InvalidProofError` on failure."""
    if not 0 <= proof.challenge < group.order or not 0 <= proof.response < group.order:
        raise InvalidProofError("DLEQ proof values out of range")
    a1 = g1**proof.response * h1 ** (-proof.challenge)
    a2 = g2**proof.response * h2 ** (-proof.challenge)
    expected = _challenge(group, g1, h1, g2, h2, a1, a2, context)
    if expected != proof.challenge:
        raise InvalidProofError("DLEQ proof verification failed")
