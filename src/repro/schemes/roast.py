"""ROAST — a robust wrapper around FROST (Ruffing et al., CCS 2022).

The paper points out that "FROST is not robust, i.e., actively deviating
parties may cause the signature protocol to abort" (§3.5) and cites ROAST
[40] as the robust alternative.  This module implements the ROAST
coordinator logic as an extension:

* the coordinator keeps a *responsive set* of signers that have an unused
  nonce commitment on file;
* whenever t+1 responsive signers are available it opens a fresh FROST
  session with exactly that quorum;
* a signer's reply carries both its signature share for the session and a
  *new* nonce commitment (so responding keeps it responsive);
* an invalid share exposes its sender, which is excluded forever — its
  sessions die, but every other session proceeds independently.

With at most ``n − (t+1)`` malicious signers some session eventually
consists solely of honest responsive signers and completes; the number of
sessions opened is bounded by ``n − t`` (each failed session burns at least
one newly exposed malicious signer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvalidShareError, ProtocolAbortedError
from . import kg20


@dataclass
class _Session:
    session_id: int
    signer_ids: tuple[int, ...]
    commitments: list[kg20.NonceCommitment]
    shares: dict[int, kg20.Kg20SignatureShare] = field(default_factory=dict)
    dead: bool = False


class RoastSigner:
    """An honest signer endpoint: holds the key share and its nonce queue."""

    def __init__(self, key_share: kg20.Kg20KeyShare):
        self._scheme = kg20.Kg20SignatureScheme()
        self._key_share = key_share
        self._nonces: dict[int, kg20.NoncePair] = {}  # by commitment counter
        self._counter = 0
        self._used: set[int] = set()

    @property
    def id(self) -> int:
        return self._key_share.id

    def fresh_commitment(self) -> kg20.NonceCommitment:
        """Produce a new single-use nonce commitment (round-1 material)."""
        nonce, commitment = self._scheme.commit(self._key_share)
        self._counter += 1
        self._nonces[self._counter] = nonce
        # Tag-free lookup: the coordinator returns the commitment verbatim,
        # so we key nonces by the commitment encoding.
        self._by_commitment = getattr(self, "_by_commitment", {})
        self._by_commitment[commitment.to_bytes()] = nonce
        return commitment

    def sign(
        self,
        message: bytes,
        commitments: list[kg20.NonceCommitment],
    ) -> tuple[kg20.Kg20SignatureShare, kg20.NonceCommitment]:
        """Round-2 response: the signature share plus a fresh commitment."""
        own = next(c for c in commitments if c.id == self.id)
        nonce = self._by_commitment.pop(own.to_bytes(), None)
        if nonce is None:
            raise ProtocolAbortedError(
                f"signer {self.id}: unknown or reused nonce commitment"
            )
        share = self._scheme.sign_round(self._key_share, message, nonce, commitments)
        return share, self.fresh_commitment()


class RoastCoordinator:
    """Drives FROST sessions until one completes, excluding misbehavers."""

    def __init__(self, public_key: kg20.Kg20PublicKey, message: bytes):
        self._scheme = kg20.Kg20SignatureScheme()
        self.public_key = public_key
        self.message = message
        self.quorum = public_key.threshold + 1
        self._pending: dict[int, kg20.NonceCommitment] = {}  # responsive set
        self._sessions: dict[int, _Session] = {}
        self._session_of: dict[int, int] = {}  # signer -> open session
        self._next_session = 0
        self.excluded: set[int] = set()
        self.signature: kg20.Kg20Signature | None = None
        self.sessions_opened = 0

    # -- inputs from signers ------------------------------------------------

    def register(self, signer_id: int, commitment: kg20.NonceCommitment) -> list:
        """A signer joins (or re-joins) the responsive set."""
        if self.signature is not None or signer_id in self.excluded:
            return []
        if commitment.id != signer_id:
            self._exclude(signer_id)
            return []
        self._pending[signer_id] = commitment
        return self._maybe_open_session()

    def receive_share(
        self,
        session_id: int,
        signer_id: int,
        share: kg20.Kg20SignatureShare,
        next_commitment: kg20.NonceCommitment,
    ) -> list:
        """A signer's round-2 response for one session."""
        if self.signature is not None or signer_id in self.excluded:
            return []
        session = self._sessions.get(session_id)
        if session is None or session.dead or signer_id not in session.signer_ids:
            # The session is gone (a peer was exposed), but the signer DID
            # respond: keep it responsive by registering its new commitment,
            # or an honest signer would silently drop out of the pool.
            if self._session_of.get(signer_id) == session_id:
                self._session_of.pop(signer_id, None)
            if next_commitment is not None:
                return self.register(signer_id, next_commitment)
            return []
        try:
            self._scheme.verify_signature_share(
                self.public_key, self.message, share, session.commitments
            )
        except InvalidShareError:
            # The defining ROAST move: a bad share exposes its sender.
            self._exclude(signer_id)
            session.dead = True
            return self._maybe_open_session()
        session.shares[signer_id] = share
        self._session_of.pop(signer_id, None)
        requests = self.register(signer_id, next_commitment)
        if len(session.shares) == len(session.signer_ids) and not session.dead:
            signature = self._scheme.combine(
                self.public_key,
                self.message,
                list(session.shares.values()),
                session.commitments,
            )
            self.signature = signature
            return []
        return requests

    def mark_unresponsive(self, signer_id: int) -> list:
        """Give up on a signer that never answers (crash-style fault)."""
        self._exclude(signer_id)
        return self._maybe_open_session()

    # -- internals ---------------------------------------------------------------

    def _exclude(self, signer_id: int) -> None:
        self.excluded.add(signer_id)
        self._pending.pop(signer_id, None)
        open_session = self._session_of.pop(signer_id, None)
        if open_session is not None:
            self._sessions[open_session].dead = True

    def _maybe_open_session(self) -> list:
        """Open a session when a quorum of responsive signers is available.

        Returns sign requests: (session_id, signer_id, commitments) tuples
        the caller must deliver to the signers.
        """
        requests = []
        while len(self._pending) >= self.quorum and self.signature is None:
            chosen = sorted(self._pending)[: self.quorum]
            commitments = [self._pending.pop(i) for i in chosen]
            self._next_session += 1
            self.sessions_opened += 1
            session = _Session(self._next_session, tuple(chosen), commitments)
            self._sessions[session.session_id] = session
            for signer_id in chosen:
                self._session_of[signer_id] = session.session_id
                requests.append((session.session_id, signer_id, list(commitments)))
        return requests


def roast_sign(
    public_key: kg20.Kg20PublicKey,
    signers: dict[int, RoastSigner],
    message: bytes,
    byzantine: dict[int, "object"] | None = None,
) -> tuple[kg20.Kg20Signature, RoastCoordinator]:
    """Run a full ROAST signing ceremony in-process.

    ``signers`` holds the honest signers; ``byzantine`` maps signer id to a
    behaviour object with the same ``fresh_commitment``/``sign`` interface
    (e.g. :class:`tests` fakes returning garbage).  Returns the signature
    and the coordinator (whose ``excluded``/``sessions_opened`` fields the
    robustness tests inspect).
    """
    coordinator = RoastCoordinator(public_key, message)
    everyone: dict[int, object] = dict(signers)
    everyone.update(byzantine or {})
    queue = []
    for signer_id in sorted(everyone):
        queue.extend(
            coordinator.register(signer_id, everyone[signer_id].fresh_commitment())
        )
    while queue and coordinator.signature is None:
        session_id, signer_id, commitments = queue.pop(0)
        signer = everyone[signer_id]
        try:
            share, next_commitment = signer.sign(message, commitments)
        except ProtocolAbortedError:
            queue.extend(coordinator.mark_unresponsive(signer_id))
            continue
        if share is None:  # an unresponsive byzantine signer
            queue.extend(coordinator.mark_unresponsive(signer_id))
            continue
        queue.extend(
            coordinator.receive_share(session_id, signer_id, share, next_commitment)
        )
    if coordinator.signature is None:
        raise ProtocolAbortedError(
            "ROAST could not assemble a signature "
            f"(excluded={sorted(coordinator.excluded)})"
        )
    return coordinator.signature, coordinator
