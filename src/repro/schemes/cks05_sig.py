"""CKS05, construction 1: a threshold coin from unique threshold signatures.

The Cachin–Kursawe–Shoup paper gives two coin constructions; Thetacrypt
implements only the Diffie-Hellman one (:mod:`cks05`).  This module adds the
first as an extension: any threshold signature scheme with *unique*
signatures yields a coin — the coin named C is the hash of the (unique)
signature on C.  SH00 qualifies (RSA-FDH signatures are deterministic in the
message), so the construction composes directly with our SH00
implementation; BLS04 qualifies too.

Share validity comes for free from the signature scheme's share
verification, and uniqueness guarantees every quorum derives the same coin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..serialization import encode_bytes
from .base import SCHEME_TABLE, SchemeInfo, SchemeKind, ThresholdCoin
from .bls04 import Bls04SignatureScheme
from .sh00 import Sh00SignatureScheme

_VALUE_DOMAIN = b"repro-cks05-sig-coin"


def _coin_value(name: bytes, signature_bytes: bytes) -> bytes:
    return hashlib.sha256(
        _VALUE_DOMAIN + encode_bytes(name) + encode_bytes(signature_bytes)
    ).digest()


@dataclass(frozen=True)
class _SigCoinInfo(SchemeInfo):
    """Metadata for the signature-based coin (not in the paper's Table 1)."""


def _info(base_scheme: str) -> SchemeInfo:
    base = SCHEME_TABLE[base_scheme]
    return SchemeInfo(
        name=f"cks05-sig[{base_scheme}]",
        kind=SchemeKind.RANDOMNESS,
        hardness=base.hardness,
        verification=base.verification,
        reference="Cachin–Kursawe–Shoup 2005, construction 1",
        rounds=1,
        default_group=base.default_group,
        communication_complexity="O(n)",
    )


class SignatureCoin(ThresholdCoin):
    """Coin = H(unique threshold signature on the coin name).

    Wraps an SH00 or BLS04 key: ``key_share``/``public_key`` are the
    signature scheme's objects, reused verbatim.
    """

    def __init__(self, base_scheme: str = "sh00"):
        if base_scheme == "sh00":
            self._signatures = Sh00SignatureScheme()
        elif base_scheme == "bls04":
            self._signatures = Bls04SignatureScheme()
        else:
            raise ValueError(
                f"{base_scheme!r} does not provide unique signatures"
            )
        self.info = _info(base_scheme)

    def create_coin_share(self, key_share, name: bytes):
        return self._signatures.partial_sign(key_share, name)

    def verify_coin_share(self, public_key, name: bytes, share) -> None:
        self._signatures.verify_signature_share(public_key, name, share)

    def combine(self, public_key, name: bytes, shares: Sequence) -> bytes:
        signature = self._signatures.combine(public_key, name, shares)
        # combine() verified the signature; uniqueness of RSA-FDH/BLS makes
        # the hash below quorum-independent.
        return _coin_value(name, signature.to_bytes())

    @staticmethod
    def coin_bit(coin_value: bytes) -> int:
        return coin_value[0] & 1
