"""KG20 — FROST: flexible round-optimized Schnorr threshold signatures.

The only *interactive* scheme in the suite (Table 3: two communication
rounds, O(n²) communication): parties first exchange nonce commitments
(D_i = g^{d_i}, E_i = g^{e_i}), then produce signature shares bound to the
full commitment list through per-party binding factors ρ_i.  The assembled
signature (R, z) is a plain Schnorr signature verifying against the group
key Y.

Like the original, this implementation supports a *precomputation* phase
producing a batch of nonce pairs so that online signing needs a single round
(§3.5).  FROST is **not robust**: a misbehaving participant makes the run
abort (we detect the culprit via share verification and raise
:class:`~repro.errors.ProtocolAbortedError` at the protocol layer).

Signing-group semantics follow the paper's evaluation: the signing group is
fixed a priori and the protocol waits for *all* of its members (§4.5 —
"the protocol will wait for the contributions of all nodes in the apriori
defined group").
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import InvalidShareError, InvalidSignatureError
from ..groups.base import Group, GroupElement
from ..groups.precompute import fixed_pow
from ..groups.registry import get_group
from ..mathutils.lagrange import lagrange_coefficients_at_zero
from ..serialization import Reader, encode_bytes, encode_int, encode_str
from ..sharing.shamir import share_secret
from .base import SCHEME_TABLE, ThresholdSignature

_RHO_DOMAIN = b"repro-kg20-binding"
_CHALLENGE_DOMAIN = b"repro-kg20-challenge"


@dataclass(frozen=True)
class Kg20PublicKey:
    """Group key Y = g^x plus verification keys Y_i = g^{x_i}."""

    group_name: str
    threshold: int
    parties: int
    y: GroupElement
    verification_keys: tuple[GroupElement, ...]

    @property
    def group(self) -> Group:
        return get_group(self.group_name)

    def verification_key(self, party_id: int) -> GroupElement:
        return self.verification_keys[party_id - 1]

    def to_bytes(self) -> bytes:
        return (
            encode_str(self.group_name)
            + encode_int(self.threshold)
            + encode_int(self.parties)
            + encode_bytes(self.y.to_bytes())
            + b"".join(encode_bytes(v.to_bytes()) for v in self.verification_keys)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Kg20PublicKey":
        reader = Reader(data)
        group_name = reader.read_str()
        threshold = reader.read_int()
        parties = reader.read_int()
        group = get_group(group_name)
        y = group.element_from_bytes(reader.read_bytes())
        keys = tuple(
            group.element_from_bytes(reader.read_bytes()) for _ in range(parties)
        )
        reader.finish()
        return Kg20PublicKey(group_name, threshold, parties, y, keys)


@dataclass(frozen=True)
class Kg20KeyShare:
    """Party i's long-lived signing share x_i."""

    id: int
    value: int
    public: Kg20PublicKey


@dataclass(frozen=True)
class NoncePair:
    """Secret nonces (d, e); single use, consumed by one signing run."""

    d: int
    e: int


@dataclass(frozen=True)
class NonceCommitment:
    """Round-1 message: (D_i, E_i) = (g^{d_i}, g^{e_i})."""

    id: int
    big_d: GroupElement
    big_e: GroupElement

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.id)
            + encode_bytes(self.big_d.to_bytes())
            + encode_bytes(self.big_e.to_bytes())
        )

    @staticmethod
    def from_bytes(data: bytes, group: Group) -> "NonceCommitment":
        reader = Reader(data)
        commitment = NonceCommitment(
            reader.read_int(),
            group.element_from_bytes(reader.read_bytes()),
            group.element_from_bytes(reader.read_bytes()),
        )
        reader.finish()
        return commitment


@dataclass(frozen=True)
class Kg20SignatureShare:
    """Round-2 message: z_i = d_i + e_i·ρ_i + λ_i·x_i·c."""

    id: int
    z: int

    def to_bytes(self) -> bytes:
        return encode_int(self.id) + encode_int(self.z)

    @staticmethod
    def from_bytes(data: bytes) -> "Kg20SignatureShare":
        reader = Reader(data)
        share = Kg20SignatureShare(reader.read_int(), reader.read_int())
        reader.finish()
        return share


@dataclass(frozen=True)
class Kg20Signature:
    """An ordinary Schnorr signature (R, z) under the group key."""

    r: GroupElement
    z: int

    def to_bytes(self) -> bytes:
        return encode_bytes(self.r.to_bytes()) + encode_int(self.z)

    @staticmethod
    def from_bytes(data: bytes, group: Group) -> "Kg20Signature":
        reader = Reader(data)
        signature = Kg20Signature(
            group.element_from_bytes(reader.read_bytes()), reader.read_int()
        )
        reader.finish()
        return signature


def keygen(
    threshold: int, parties: int, group_name: str = "ed25519"
) -> tuple[Kg20PublicKey, list[Kg20KeyShare]]:
    """Trusted-dealer key generation for FROST."""
    group = get_group(group_name)
    x = group.random_scalar()
    shares = share_secret(x, threshold, parties, group.order)
    public = Kg20PublicKey(
        group_name,
        threshold,
        parties,
        fixed_pow(group.generator(), x),
        tuple(fixed_pow(group.generator(), s.value) for s in shares),
    )
    return public, [Kg20KeyShare(s.id, s.value, public) for s in shares]


def _sorted_commitments(
    commitments: Sequence[NonceCommitment],
) -> list[NonceCommitment]:
    ordered = sorted(commitments, key=lambda c: c.id)
    ids = [c.id for c in ordered]
    if len(set(ids)) != len(ids):
        raise InvalidShareError("duplicate ids in commitment list")
    return ordered


def _commitment_transcript(
    message: bytes, commitments: Sequence[NonceCommitment]
) -> bytes:
    transcript = encode_bytes(message)
    for commitment in _sorted_commitments(commitments):
        transcript += commitment.to_bytes()
    return transcript


class Kg20SignatureScheme(ThresholdSignature):
    """FROST against the :class:`ThresholdSignature` interface.

    The generic ``partial_sign`` entry point cannot be used directly — FROST
    signing needs the round-1 commitment list — so it raises and callers use
    the explicit two-round API (:meth:`commit`, :meth:`sign_round`).
    """

    info = SCHEME_TABLE["kg20"]

    # -- round 1 -----------------------------------------------------------

    def commit(self, key_share: Kg20KeyShare) -> tuple[NoncePair, NonceCommitment]:
        """Generate one single-use nonce pair and its public commitment."""
        group = key_share.public.group
        d = group.random_scalar()
        e = group.random_scalar()
        return NoncePair(d, e), NonceCommitment(
            key_share.id,
            fixed_pow(group.generator(), d),
            fixed_pow(group.generator(), e),
        )

    def precompute(
        self, key_share: Kg20KeyShare, count: int
    ) -> list[tuple[NoncePair, NonceCommitment]]:
        """Batch round-1 precomputation: ``count`` nonce pairs up front.

        With a shared batch in place the online signing protocol needs only
        one round of interaction (the paper measures the worst case, both
        rounds; the ablation benchmark measures this mode too).
        """
        return [self.commit(key_share) for _ in range(count)]

    # -- binding factors and challenge --------------------------------------

    def binding_factor(
        self,
        group: Group,
        party_id: int,
        message: bytes,
        commitments: Sequence[NonceCommitment],
    ) -> int:
        transcript = (
            _RHO_DOMAIN
            + encode_int(party_id)
            + _commitment_transcript(message, commitments)
        )
        return group.scalar_from_bytes(hashlib.sha512(transcript).digest())

    def group_commitment(
        self,
        group: Group,
        message: bytes,
        commitments: Sequence[NonceCommitment],
    ) -> GroupElement:
        """R = Π D_j · E_j^{ρ_j} over the signing group."""
        ordered = _sorted_commitments(commitments)
        r = group.multi_exp(
            [c.big_e for c in ordered],
            [self.binding_factor(group, c.id, message, commitments) for c in ordered],
        )
        for commitment in ordered:
            r = r * commitment.big_d
        return r

    def challenge(
        self, group: Group, r: GroupElement, y: GroupElement, message: bytes
    ) -> int:
        transcript = (
            _CHALLENGE_DOMAIN
            + encode_bytes(r.to_bytes())
            + encode_bytes(y.to_bytes())
            + encode_bytes(message)
        )
        return group.scalar_from_bytes(hashlib.sha512(transcript).digest())

    def _lambda(
        self, group: Group, commitments: Sequence[NonceCommitment]
    ) -> Mapping[int, int]:
        ids = [c.id for c in commitments]
        return lagrange_coefficients_at_zero(ids, group.order)

    # -- round 2 -----------------------------------------------------------

    def sign_round(
        self,
        key_share: Kg20KeyShare,
        message: bytes,
        nonce: NoncePair,
        commitments: Sequence[NonceCommitment],
    ) -> Kg20SignatureShare:
        """Produce z_i from the agreed commitment list (round 2)."""
        group = key_share.public.group
        ids = [c.id for c in commitments]
        if key_share.id not in ids:
            raise InvalidShareError("own commitment missing from signing group")
        rho = self.binding_factor(group, key_share.id, message, commitments)
        r = self.group_commitment(group, message, commitments)
        c = self.challenge(group, r, key_share.public.y, message)
        lam = self._lambda(group, commitments)[key_share.id]
        z = (nonce.d + nonce.e * rho + lam * key_share.value * c) % group.order
        return Kg20SignatureShare(key_share.id, z)

    def partial_sign(self, key_share: Kg20KeyShare, message: bytes):
        raise InvalidSignatureError(
            "KG20 is interactive: use commit()/sign_round() (two rounds) "
            "or precompute() plus sign_round() (one round)"
        )

    def verify_signature_share(
        self,
        public_key: Kg20PublicKey,
        message: bytes,
        share: Kg20SignatureShare,
        commitments: Sequence[NonceCommitment] | None = None,
    ) -> None:
        if commitments is None:
            raise InvalidShareError("KG20 share verification needs the commitments")
        if not 1 <= share.id <= public_key.parties:
            raise InvalidShareError(f"share id {share.id} out of range")
        group = public_key.group
        by_id = {c.id: c for c in commitments}
        if share.id not in by_id:
            raise InvalidShareError(f"no commitment for share id {share.id}")
        rho = self.binding_factor(group, share.id, message, commitments)
        r = self.group_commitment(group, message, commitments)
        c = self.challenge(group, r, public_key.y, message)
        lam = self._lambda(group, commitments)[share.id]
        commitment = by_id[share.id]
        expected = (
            commitment.big_d
            * commitment.big_e**rho
            * public_key.verification_key(share.id) ** ((lam * c) % group.order)
        )
        if fixed_pow(group.generator(), share.z) != expected:
            raise InvalidShareError(f"KG20 share {share.id} verification failed")

    def combine(
        self,
        public_key: Kg20PublicKey,
        message: bytes,
        shares: Sequence[Kg20SignatureShare],
        commitments: Sequence[NonceCommitment] | None = None,
    ) -> Kg20Signature:
        if commitments is None:
            raise InvalidSignatureError("KG20 combine needs the commitment list")
        group = public_key.group
        commitment_ids = {c.id for c in commitments}
        share_ids = {s.id for s in shares}
        if share_ids != commitment_ids:
            # The signing group is fixed a priori; every member must respond.
            missing = sorted(commitment_ids - share_ids)
            raise InvalidSignatureError(
                f"missing signature shares from signing-group members {missing}"
            )
        r = self.group_commitment(group, message, commitments)
        z = sum(s.z for s in shares) % group.order
        signature = Kg20Signature(r, z)
        self.verify(public_key, message, signature)
        return signature

    def verify(
        self, public_key: Kg20PublicKey, message: bytes, signature: Kg20Signature
    ) -> None:
        group = public_key.group
        c = self.challenge(group, signature.r, public_key.y, message)
        if fixed_pow(group.generator(), signature.z) != signature.r * fixed_pow(
            public_key.y, c
        ):
            raise InvalidSignatureError("KG20 Schnorr verification failed")
