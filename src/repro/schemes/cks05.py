"""CKS05 — the Cachin–Kursawe–Shoup threshold coin-tossing scheme.

The Diffie-Hellman construction from "Random Oracles in Constantinople" [8]:
the coin with name C is the pseudorandom value derived from ĝ^x, where
ĝ = H(C) is a random-oracle hash of the name into the group and x is the
shared secret.  Every coin share ĝ^{x_i} carries a DLEQ proof of equality of
discrete logarithms against the party's verification key (§3.5), so invalid
shares are detected immediately.

Default group: Ed25519 (Table 3).  The combined output is a 32-byte
pseudorandom string; :meth:`Cks05Coin.coin_bit` reduces it to one bit for
binary Byzantine-agreement usage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidShareError
from ..groups.base import Group, GroupElement
from ..groups.precompute import fixed_pow
from ..groups.registry import get_group
from ..mathutils.lagrange import lagrange_coefficients_at_zero
from ..serialization import Reader, encode_bytes, encode_int, encode_str
from ..sharing.shamir import share_secret
from .base import SCHEME_TABLE, ThresholdCoin, select_shares
from .dleq import DleqProof, dleq_prove, dleq_verify

_NAME_DOMAIN = b"repro-cks05-name"
_VALUE_DOMAIN = b"repro-cks05-value"


@dataclass(frozen=True)
class Cks05PublicKey:
    """h = g^x plus verification keys h_i = g^{x_i}."""

    group_name: str
    threshold: int
    parties: int
    h: GroupElement
    verification_keys: tuple[GroupElement, ...]

    @property
    def group(self) -> Group:
        return get_group(self.group_name)

    def verification_key(self, party_id: int) -> GroupElement:
        return self.verification_keys[party_id - 1]

    def to_bytes(self) -> bytes:
        return (
            encode_str(self.group_name)
            + encode_int(self.threshold)
            + encode_int(self.parties)
            + encode_bytes(self.h.to_bytes())
            + b"".join(encode_bytes(v.to_bytes()) for v in self.verification_keys)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Cks05PublicKey":
        reader = Reader(data)
        group_name = reader.read_str()
        threshold = reader.read_int()
        parties = reader.read_int()
        group = get_group(group_name)
        h = group.element_from_bytes(reader.read_bytes())
        keys = tuple(
            group.element_from_bytes(reader.read_bytes()) for _ in range(parties)
        )
        reader.finish()
        return Cks05PublicKey(group_name, threshold, parties, h, keys)


@dataclass(frozen=True)
class Cks05KeyShare:
    """Party i's share x_i of the coin secret."""

    id: int
    value: int
    public: Cks05PublicKey


@dataclass(frozen=True)
class Cks05CoinShare:
    """σ_i = ĝ^{x_i} with a DLEQ proof against h_i."""

    id: int
    sigma: GroupElement
    proof: DleqProof

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.id)
            + encode_bytes(self.sigma.to_bytes())
            + self.proof.to_bytes()
        )

    @staticmethod
    def from_bytes(data: bytes, group: Group) -> "Cks05CoinShare":
        reader = Reader(data)
        share_id = reader.read_int()
        sigma = group.element_from_bytes(reader.read_bytes())
        proof = DleqProof.read_from(reader)
        reader.finish()
        return Cks05CoinShare(share_id, sigma, proof)


def keygen(
    threshold: int, parties: int, group_name: str = "ed25519"
) -> tuple[Cks05PublicKey, list[Cks05KeyShare]]:
    """Trusted-dealer key generation for CKS05."""
    group = get_group(group_name)
    x = group.random_scalar()
    shares = share_secret(x, threshold, parties, group.order)
    public = Cks05PublicKey(
        group_name,
        threshold,
        parties,
        fixed_pow(group.generator(), x),
        tuple(fixed_pow(group.generator(), s.value) for s in shares),
    )
    return public, [Cks05KeyShare(s.id, s.value, public) for s in shares]


def _hash_name(group: Group, name: bytes) -> GroupElement:
    return group.hash_to_element(_NAME_DOMAIN + name)


class Cks05Coin(ThresholdCoin):
    """The DH-based coin against the :class:`ThresholdCoin` interface."""

    info = SCHEME_TABLE["cks05"]

    def create_coin_share(
        self, key_share: Cks05KeyShare, name: bytes
    ) -> Cks05CoinShare:
        group = key_share.public.group
        g_hat = _hash_name(group, name)
        sigma = fixed_pow(g_hat, key_share.value)
        proof = dleq_prove(
            group,
            group.generator(),
            g_hat,
            key_share.value,
            context=name,
            h1=key_share.public.verification_key(key_share.id),
            h2=sigma,
        )
        return Cks05CoinShare(key_share.id, sigma, proof)

    def verify_coin_share(
        self, public_key: Cks05PublicKey, name: bytes, share: Cks05CoinShare
    ) -> None:
        if not 1 <= share.id <= public_key.parties:
            raise InvalidShareError(f"share id {share.id} out of range")
        group = public_key.group
        g_hat = _hash_name(group, name)
        dleq_verify(
            group,
            group.generator(),
            public_key.verification_key(share.id),
            g_hat,
            share.sigma,
            share.proof,
            context=name,
        )

    def verify_coin_shares(
        self, public_key: Cks05PublicKey, name: bytes, shares: Sequence[Cks05CoinShare]
    ) -> None:
        """Verify many shares of one coin in a single batched call."""
        from .dleq import DleqStatement, dleq_verify_batch

        for share in shares:
            if not 1 <= share.id <= public_key.parties:
                raise InvalidShareError(f"share id {share.id} out of range")
        group = public_key.group
        g_hat = _hash_name(group, name)
        generator = group.generator()
        statements = [
            DleqStatement(
                generator,
                public_key.verification_key(share.id),
                g_hat,
                share.sigma,
                share.proof,
                context=name,
            )
            for share in shares
        ]
        dleq_verify_batch(group, statements)

    def combine(
        self,
        public_key: Cks05PublicKey,
        name: bytes,
        shares: Sequence[Cks05CoinShare],
    ) -> bytes:
        group = public_key.group
        chosen = select_shares(shares, public_key.threshold)
        ids = [share.id for share in chosen]
        coefficients = lagrange_coefficients_at_zero(ids, group.order)
        value = group.multi_exp(
            [share.sigma for share in chosen],
            [coefficients[share.id] for share in chosen],
        )
        return hashlib.sha256(
            _VALUE_DOMAIN + encode_bytes(name) + encode_bytes(value.to_bytes())
        ).digest()

    @staticmethod
    def coin_bit(coin_value: bytes) -> int:
        """Reduce a combined coin to a single unbiased bit."""
        return coin_value[0] & 1
