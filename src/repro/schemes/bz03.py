"""BZ03 — the Baek–Zheng threshold cryptosystem from gap Diffie-Hellman.

Shares the CCA security of SG02 but replaces zero-knowledge proofs with
pairings (§3.5): both the ciphertext validity check and the decryption-share
check are single pairing-product equations, so shares carry no proof at all.
The same hybrid ChaCha20-Poly1305 approach is used for the payload.

Layout on BN254: the key pair lives in G2 (y = g₂^x), decryption shares in
G1 (δ_i = ĥ^{x_i} for ĥ = H1(label, u) ∈ G1), and the KEM mask in GT.
Ciphertext validity binds (u, v) through w = H3(u, v)^r with the check
e(w, g₂) = e(H3(u, v), u); nodes refuse to release shares for invalid
ciphertexts, which is the CCA guard.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Sequence

from ..errors import InvalidCiphertextError, InvalidShareError
from ..groups.bn254 import BilinearGroup, bn254_pairing
from ..groups.bn254.g1 import BN254G1Element
from ..groups.bn254.g2 import BN254G2Element
from ..groups.precompute import fixed_pow
from ..mathutils.lagrange import lagrange_coefficients_at_zero
from ..serialization import Reader, encode_bytes, encode_int
from ..sharing.shamir import share_secret
from ..symmetric import AeadError, ChaCha20Poly1305
from .base import SCHEME_TABLE, ThresholdCipher, select_shares

_KDF_DOMAIN = b"repro-bz03-kdf"
_H1_DOMAIN = b"repro-bz03-h1"
_H3_DOMAIN = b"repro-bz03-h3"


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class Bz03PublicKey:
    """y = g₂^x with per-party verification keys y_i = g₂^{x_i}."""

    threshold: int
    parties: int
    y: BN254G2Element
    verification_keys: tuple[BN254G2Element, ...]

    @property
    def pairing(self) -> BilinearGroup:
        return bn254_pairing()

    def verification_key(self, party_id: int) -> BN254G2Element:
        return self.verification_keys[party_id - 1]

    def to_bytes(self) -> bytes:
        return (
            encode_int(self.threshold)
            + encode_int(self.parties)
            + encode_bytes(self.y.to_bytes())
            + b"".join(encode_bytes(v.to_bytes()) for v in self.verification_keys)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Bz03PublicKey":
        reader = Reader(data)
        threshold = reader.read_int()
        parties = reader.read_int()
        g2 = bn254_pairing().g2
        y = g2.element_from_bytes(reader.read_bytes())
        keys = tuple(
            g2.element_from_bytes(reader.read_bytes()) for _ in range(parties)
        )
        reader.finish()
        return Bz03PublicKey(threshold, parties, y, keys)


@dataclass(frozen=True)
class Bz03KeyShare:
    """Party i's share x_i."""

    id: int
    value: int
    public: Bz03PublicKey


@dataclass(frozen=True)
class Bz03Ciphertext:
    """(u, v, w) plus the hybrid payload; u ∈ G2, w ∈ G1."""

    label: bytes
    u: BN254G2Element
    masked_key: bytes  # v
    w: BN254G1Element
    nonce: bytes
    payload: bytes

    def to_bytes(self) -> bytes:
        return (
            encode_bytes(self.label)
            + encode_bytes(self.u.to_bytes())
            + encode_bytes(self.masked_key)
            + encode_bytes(self.w.to_bytes())
            + encode_bytes(self.nonce)
            + encode_bytes(self.payload)
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Bz03Ciphertext":
        pairing = bn254_pairing()
        reader = Reader(data)
        label = reader.read_bytes()
        u = pairing.g2.element_from_bytes(reader.read_bytes())
        masked_key = reader.read_bytes()
        w = pairing.g1.element_from_bytes(reader.read_bytes())
        nonce = reader.read_bytes()
        payload = reader.read_bytes()
        reader.finish()
        return Bz03Ciphertext(label, u, masked_key, w, nonce, payload)


@dataclass(frozen=True)
class Bz03DecryptionShare:
    """δ_i = ĥ^{x_i} ∈ G1; validity is pairing-checked, no proof needed."""

    id: int
    delta: BN254G1Element

    def to_bytes(self) -> bytes:
        return encode_int(self.id) + encode_bytes(self.delta.to_bytes())

    @staticmethod
    def from_bytes(data: bytes) -> "Bz03DecryptionShare":
        reader = Reader(data)
        share_id = reader.read_int()
        delta = bn254_pairing().g1.element_from_bytes(reader.read_bytes())
        reader.finish()
        return Bz03DecryptionShare(share_id, delta)


def keygen(threshold: int, parties: int) -> tuple[Bz03PublicKey, list[Bz03KeyShare]]:
    """Trusted-dealer key generation for BZ03 on BN254."""
    pairing = bn254_pairing()
    x = pairing.g2.random_scalar()
    shares = share_secret(x, threshold, parties, pairing.order)
    g2 = pairing.g2.generator()
    public = Bz03PublicKey(
        threshold,
        parties,
        fixed_pow(g2, x),
        tuple(fixed_pow(g2, s.value) for s in shares),
    )
    return public, [Bz03KeyShare(s.id, s.value, public) for s in shares]


def _h1(label: bytes, u: BN254G2Element) -> BN254G1Element:
    """ĥ = H1(label, u) ∈ G1 — the ciphertext-bound KEM base."""
    return bn254_pairing().g1.hash_to_element(
        _H1_DOMAIN + encode_bytes(label) + encode_bytes(u.to_bytes())
    )


def _h3(u: BN254G2Element, masked_key: bytes) -> BN254G1Element:
    """H3(u, v) ∈ G1 — the base of the integrity tag w."""
    return bn254_pairing().g1.hash_to_element(
        _H3_DOMAIN + encode_bytes(u.to_bytes()) + encode_bytes(masked_key)
    )


def _kdf(gt_element) -> bytes:
    return hashlib.sha256(_KDF_DOMAIN + gt_element.to_bytes()).digest()


class Bz03Cipher(ThresholdCipher):
    """Baek–Zheng against the :class:`ThresholdCipher` interface."""

    info = SCHEME_TABLE["bz03"]

    def encrypt(
        self, public_key: Bz03PublicKey, plaintext: bytes, label: bytes = b""
    ) -> Bz03Ciphertext:
        pairing = public_key.pairing
        sym_key = ChaCha20Poly1305.generate_key()
        nonce = secrets.token_bytes(ChaCha20Poly1305.NONCE_SIZE)
        payload = ChaCha20Poly1305(sym_key).encrypt(nonce, plaintext, aad=label)
        r = pairing.g2.random_scalar()
        u = fixed_pow(pairing.g2.generator(), r)
        h_hat = _h1(label, u)
        mask = _kdf(pairing.pair(h_hat, public_key.y) ** r)
        masked_key = _xor(sym_key, mask)
        w = _h3(u, masked_key) ** r
        return Bz03Ciphertext(label, u, masked_key, w, nonce, payload)

    def verify_ciphertext(
        self, public_key: Bz03PublicKey, ciphertext: Bz03Ciphertext
    ) -> None:
        pairing = public_key.pairing
        h3 = _h3(ciphertext.u, ciphertext.masked_key)
        # e(w, g₂) == e(H3(u, v), u)  ⟺  w = H3(u, v)^r for u = g₂^r.
        valid = pairing.pair_check(
            [
                (ciphertext.w, pairing.g2.generator()),
                (h3.inverse(), ciphertext.u),
            ]
        )
        if not valid:
            raise InvalidCiphertextError("BZ03 ciphertext integrity check failed")

    def create_decryption_share(
        self, key_share: Bz03KeyShare, ciphertext: Bz03Ciphertext
    ) -> Bz03DecryptionShare:
        # CCA guard: only well-formed ciphertexts get decryption shares.
        self.verify_ciphertext(key_share.public, ciphertext)
        h_hat = _h1(ciphertext.label, ciphertext.u)
        return Bz03DecryptionShare(key_share.id, h_hat**key_share.value)

    def verify_decryption_share(
        self,
        public_key: Bz03PublicKey,
        ciphertext: Bz03Ciphertext,
        share: Bz03DecryptionShare,
    ) -> None:
        if not 1 <= share.id <= public_key.parties:
            raise InvalidShareError(f"share id {share.id} out of range")
        pairing = public_key.pairing
        h_hat = _h1(ciphertext.label, ciphertext.u)
        # e(δ_i, g₂) == e(ĥ, y_i).
        valid = pairing.pair_check(
            [
                (share.delta, pairing.g2.generator()),
                (h_hat.inverse(), public_key.verification_key(share.id)),
            ]
        )
        if not valid:
            raise InvalidShareError(f"BZ03 share {share.id} pairing check failed")

    def combine(
        self,
        public_key: Bz03PublicKey,
        ciphertext: Bz03Ciphertext,
        shares: Sequence[Bz03DecryptionShare],
    ) -> bytes:
        self.verify_ciphertext(public_key, ciphertext)
        pairing = public_key.pairing
        chosen = select_shares(shares, public_key.threshold)
        ids = [share.id for share in chosen]
        coefficients = lagrange_coefficients_at_zero(ids, pairing.order)
        delta = pairing.g1.multi_exp(
            [share.delta for share in chosen],
            [coefficients[share.id] for share in chosen],
        )
        mask = _kdf(pairing.pair(delta, ciphertext.u))
        sym_key = _xor(ciphertext.masked_key, mask)
        try:
            return ChaCha20Poly1305(sym_key).decrypt(
                ciphertext.nonce, ciphertext.payload, aad=ciphertext.label
            )
        except AeadError as exc:
            raise InvalidShareError(
                "combined key failed AEAD authentication "
                "(an unverified share was probably included)"
            ) from exc
