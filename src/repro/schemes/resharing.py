"""Share resharing and proactive refresh (CHURP-style, simplified).

The paper's related work points at CHURP [32] for "secure reconfiguration
and resharing strategies"; this module implements the classical resharing
protocol for the discrete-log schemes:

* a quorum Q (|Q| = t+1) of current share holders each re-shares its
  Lagrange-weighted share λ_i·x_i toward the *new* access structure
  (t', n') with Feldman commitments;
* each new party verifies every sub-share and sums them into its new share;
* the combined commitments reproduce g^x in the constant term, so the
  **group public key is preserved** while every share (and the sharing
  polynomial) changes.

With (t', n') = (t, n) this is a *proactive refresh*: old shares become
useless to an attacker who compromised fewer than t+1 nodes per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ConfigurationError, InvalidShareError
from ..groups.base import Group, GroupElement
from ..mathutils.lagrange import lagrange_coefficients_at_zero
from ..sharing.feldman import FeldmanCommitment, combine_commitments, feldman_share
from ..sharing.shamir import ShamirShare, check_threshold


@dataclass(frozen=True)
class ReshareDeal:
    """Dealer i's contribution: commitments + one sub-share per new party."""

    dealer_id: int
    commitment: FeldmanCommitment
    sub_shares: Mapping[int, ShamirShare]


@dataclass(frozen=True)
class ReshareResult:
    """One new party's output of a completed resharing."""

    party_id: int
    share_value: int
    group_key: GroupElement
    verification_keys: tuple[GroupElement, ...]


def reshare_deal(
    old_share_id: int,
    old_share_value: int,
    quorum_ids: Sequence[int],
    new_threshold: int,
    new_parties: int,
    group: Group,
) -> ReshareDeal:
    """Old party ``old_share_id`` re-shares λ_i·x_i to the new structure."""
    check_threshold(new_threshold, new_parties)
    if old_share_id not in quorum_ids:
        raise ConfigurationError("dealer must be part of the resharing quorum")
    lam = lagrange_coefficients_at_zero(list(quorum_ids), group.order)
    weighted = (lam[old_share_id] * old_share_value) % group.order
    shares, commitment = feldman_share(weighted, new_threshold, new_parties, group)
    return ReshareDeal(old_share_id, commitment, {s.id: s for s in shares})


def reshare_finalize(
    new_party_id: int,
    deals: Mapping[int, ReshareDeal],
    quorum_ids: Sequence[int],
    new_parties: int,
    group: Group,
) -> ReshareResult:
    """Verify and sum the sub-shares addressed to ``new_party_id``.

    Requires a deal from *every* quorum member (the weighted shares only sum
    to x over the full quorum); any invalid sub-share aborts with the
    culprit identified.
    """
    missing = sorted(set(quorum_ids) - set(deals))
    if missing:
        raise ConfigurationError(f"missing reshare deals from {missing}")
    total = 0
    commitments = []
    for dealer_id in sorted(quorum_ids):
        deal = deals[dealer_id]
        sub_share = deal.sub_shares[new_party_id]
        try:
            deal.commitment.verify_share(sub_share)
        except InvalidShareError as exc:
            raise InvalidShareError(
                f"dealer {dealer_id} sent an invalid reshare sub-share"
            ) from exc
        total = (total + sub_share.value) % group.order
        commitments.append(deal.commitment)
    combined = combine_commitments(commitments)
    verification_keys = tuple(
        combined.expected_share_commitment(i) for i in range(1, new_parties + 1)
    )
    return ReshareResult(
        new_party_id, total, combined.public_key(), verification_keys
    )


def reshare_all(
    old_shares: Mapping[int, int],
    quorum_ids: Sequence[int],
    new_threshold: int,
    new_parties: int,
    group: Group,
) -> list[ReshareResult]:
    """Run a whole resharing in-process (testing / examples convenience).

    ``old_shares`` maps old party id → share value; the quorum must be a
    subset of its keys.
    """
    deals = {
        dealer_id: reshare_deal(
            dealer_id,
            old_shares[dealer_id],
            quorum_ids,
            new_threshold,
            new_parties,
            group,
        )
        for dealer_id in quorum_ids
    }
    return [
        reshare_finalize(party_id, deals, quorum_ids, new_parties, group)
        for party_id in range(1, new_parties + 1)
    ]
