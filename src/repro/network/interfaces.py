"""Abstract communication primitives assumed by Thetacrypt (§3.2).

The model requires reliable point-to-point channels between every pair of
nodes and, optionally, a total-order broadcast primitive.  Nothing above
this module knows which concrete transport is in use — that is the property
that lets Thetacrypt be embedded into a host platform via proxies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Awaitable, Callable

#: Callback invoked with (sender_id, data) for every received message.
MessageHandler = Callable[[int, bytes], Awaitable[None]]


class P2PNetwork(ABC):
    """Reliable pairwise channels among the n nodes."""

    node_id: int

    @abstractmethod
    def set_handler(self, handler: MessageHandler) -> None:
        """Install the upcall for received messages (one handler per node)."""

    @abstractmethod
    async def send(self, recipient: int, data: bytes) -> None:
        """Deliver ``data`` to one peer (reliable, FIFO per sender)."""

    @abstractmethod
    async def broadcast(self, data: bytes) -> None:
        """Best-effort send to every peer (no self-delivery)."""

    @abstractmethod
    def peer_ids(self) -> list[int]:
        """Ids of all other nodes."""

    async def start(self) -> None:
        """Bring the transport up (bind sockets, dial peers)."""

    async def stop(self) -> None:
        """Tear the transport down."""


class TotalOrderBroadcast(ABC):
    """Atomic broadcast: every node delivers the same message sequence.

    "The latter can be implemented by distributed ledgers, for instance"
    (abstract) — the sequencer implementation in :mod:`repro.network.tob`
    and the proxy in :mod:`repro.network.proxy` are two such realizations.
    """

    @abstractmethod
    def set_handler(self, handler: MessageHandler) -> None:
        """Install the in-order delivery upcall."""

    @abstractmethod
    async def submit(self, data: bytes) -> None:
        """Submit a message for total ordering."""

    async def start(self) -> None:
        """Bring the broadcast component up."""

    async def stop(self) -> None:
        """Tear the broadcast component down."""
