"""Network layer: P2P and total-order broadcast behind swappable interfaces.

Mirrors §3.6 of the paper: a :class:`~repro.network.manager.NetworkManager`
"sets up the needed components based on the configuration provided at
start-up".  Concrete components:

* :mod:`local` — in-process transport with configurable latency injection
  (the workhorse of integration tests and single-machine demos);
* :mod:`tcp` — asyncio TCP full-mesh transport for real multi-process
  deployments;
* :mod:`gossip` — a flooding gossip overlay (the role libp2p plays in the
  original);
* :mod:`tob` — a sequencer-based total-order broadcast;
* :mod:`proxy` — P2P/TOB proxy modules that delegate communication to a
  host platform (e.g. a blockchain node).
"""

from .faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    FaultyNetwork,
    LinkFaults,
    Partition,
)
from .interfaces import P2PNetwork, TotalOrderBroadcast
from .local import LocalHub, LocalP2P
from .manager import NetworkManager

__all__ = [
    "Crash",
    "FaultInjector",
    "FaultPlan",
    "FaultyNetwork",
    "LinkFaults",
    "P2PNetwork",
    "Partition",
    "TotalOrderBroadcast",
    "LocalHub",
    "LocalP2P",
    "NetworkManager",
]
